//! Workspace umbrella crate.
//!
//! This crate exists so that the repository-level `examples/` and `tests/`
//! directories have a Cargo package to attach to. It re-exports the main
//! entry point crate for convenience.

pub use perfplay;
