//! # perfplay-replay
//!
//! The replay engine of the PerfPlay framework: re-executes recorded traces
//! under controlled schedules and re-executes the ULCP-free transformed trace
//! so the two can be compared.
//!
//! * [`Replayer`] replays the *original* trace under one of four schemes
//!   ([`ScheduleKind`]): the paper's **ELSC-S** (enforced locking
//!   serialization constraint, Section 5.2), the free-running **ORIG-S**, the
//!   Kendo-style **SYNC-S**, and the PinPlay/CoreDet-style **MEM-S**.
//! * [`UlcpFreeReplayer`] replays the [`TransformedTrace`]
//!   produced by `perfplay-transform`, honouring the RULE 2 ordering, the
//!   RULE 3/4 lockset semantics, and optionally the dynamic locking strategy.
//! * [`measure_fidelity`] quantifies performance stability and precision
//!   across repeated replays (Figure 13).
//!
//! Both replayers run on one shared event-driven scheduler core
//! ([`engine`]): a clock-keyed ready heap plus targeted per-lock /
//! per-condvar / per-barrier wake lists make each step `O(log T)` in the
//! thread count, where the historical loops paid `O(T)` per step and woke
//! every blocked thread on any progress. Those loops are retained as
//! executable specifications — [`reference_replay_original`] and
//! [`reference_replay_free`] — and the optimized engine is proven
//! bit-identical to them by the property suite and the `replay_scaling`
//! benchmark.
//!
//! [`TransformedTrace`]: perfplay_transform::TransformedTrace

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod common;
mod engine;
mod fidelity;
mod free;
mod original;
mod reference;
mod result;
mod schedule;

pub use common::ReplayConfig;
pub use fidelity::{measure_fidelity, FidelityReport};
pub use free::UlcpFreeReplayer;
pub use original::Replayer;
pub use reference::{reference_replay_free, reference_replay_original};
pub use result::{ReplayError, ReplayResult, ThreadCursor, ThreadReplayTiming};
pub use schedule::{ReplaySchedule, ScheduleKind};
