//! # perfplay-replay
//!
//! The replay engine of the PerfPlay framework: re-executes recorded traces
//! under controlled schedules and re-executes the ULCP-free transformed trace
//! so the two can be compared.
//!
//! * [`Replayer`] replays the *original* trace under one of four schemes
//!   ([`ScheduleKind`]): the paper's **ELSC-S** (enforced locking
//!   serialization constraint, Section 5.2), the free-running **ORIG-S**, the
//!   Kendo-style **SYNC-S**, and the PinPlay/CoreDet-style **MEM-S**.
//! * [`UlcpFreeReplayer`] replays the [`TransformedTrace`]
//!   produced by `perfplay-transform`, honouring the RULE 2 ordering, the
//!   RULE 3/4 lockset semantics, and optionally the dynamic locking strategy.
//! * [`measure_fidelity`] quantifies performance stability and precision
//!   across repeated replays (Figure 13).
//!
//! [`TransformedTrace`]: perfplay_transform::TransformedTrace

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod common;
mod fidelity;
mod free;
mod original;
mod result;
mod schedule;

pub use common::ReplayConfig;
pub use fidelity::{measure_fidelity, FidelityReport};
pub use free::UlcpFreeReplayer;
pub use original::Replayer;
pub use result::{ReplayError, ReplayResult, ThreadReplayTiming};
pub use schedule::{ReplaySchedule, ScheduleKind};
