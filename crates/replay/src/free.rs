//! Replay of the ULCP-free (transformed) trace.
//!
//! The ULCP-free replayer executes the same per-thread event streams as the
//! original replay, but the original lock acquire/release events are
//! reinterpreted through the transformation plan:
//!
//! * sections whose locks were stripped (null-locks and standalone topology
//!   nodes) synchronize with nobody and cost nothing;
//! * every other section atomically acquires its RULE 3 *lockset*, giving the
//!   RULE 4 mutual-exclusion semantics, and obeys the RULE 2 ordering
//!   constraints so replays are stable;
//! * with the dynamic locking strategy (DLS) enabled, auxiliary locks of
//!   already-finished source sections are skipped, which is what keeps the
//!   lockset maintenance overhead at the level Table 3 reports.
//!
//! The loop itself lives in the shared [`engine`](crate::engine); this module
//! supplies the [`UlcpFree`] policy. Its wake channels: a section exit
//! notifies the waiters of every auxiliary lock it releases
//! ([`WaitChannel::AuxLock`]) and the waiters of its own completion
//! ([`WaitChannel::SectionDone`] — RULE 2 successors, and DLS waiters whose
//! lockset may have just shrunk).

use std::collections::{BTreeMap, BTreeSet};

use perfplay_trace::{AuxLockId, LockId, SectionId, Time};
use perfplay_transform::{dynamic_lockset, TransformedTrace};

use crate::common::{build_section_index, ReplayConfig, SectionIndex};
use crate::engine::{Engine, EngineCore, ReplayPolicy, Step, WaitChannel};
use crate::result::{ReplayError, ReplayResult};

/// Replays transformed (ULCP-free) traces.
#[derive(Debug, Clone)]
pub struct UlcpFreeReplayer {
    config: ReplayConfig,
    use_dls: bool,
}

impl Default for UlcpFreeReplayer {
    fn default() -> Self {
        UlcpFreeReplayer {
            config: ReplayConfig::default(),
            use_dls: true,
        }
    }
}

impl UlcpFreeReplayer {
    /// Creates a replayer with the given cost model and DLS enabled.
    pub fn new(config: ReplayConfig) -> Self {
        UlcpFreeReplayer {
            config,
            use_dls: true,
        }
    }

    /// Enables or disables the dynamic locking strategy (Figure 9). The
    /// Table 3 ablation compares both settings.
    pub fn with_dls(mut self, use_dls: bool) -> Self {
        self.use_dls = use_dls;
        self
    }

    /// Replays the ULCP-free trace once.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError`] if the transformed synchronization cannot make
    /// progress (which would indicate a transformation bug) or the step limit
    /// is exceeded.
    pub fn replay(&self, transformed: &TransformedTrace) -> Result<ReplayResult, ReplayError> {
        let policy = UlcpFree::new(self.use_dls, transformed);
        Engine::new(&self.config, &transformed.original, policy).run()
    }
}

/// RULE 2/3/4 lockset admission over the transformation plan.
pub(crate) struct UlcpFree<'a> {
    tt: &'a TransformedTrace,
    use_dls: bool,
    sections: SectionIndex,
    constraints: BTreeMap<SectionId, Vec<SectionId>>,
    aux_holder: BTreeMap<AuxLockId, SectionId>,
    aux_free_since: BTreeMap<AuxLockId, Time>,
    section_locks: BTreeMap<SectionId, BTreeSet<AuxLockId>>,
    finished: BTreeSet<SectionId>,
    finish_times: BTreeMap<SectionId, Time>,
    lockset_ops: u64,
    lockset_overhead: Time,
}

impl<'a> UlcpFree<'a> {
    pub(crate) fn new(use_dls: bool, tt: &'a TransformedTrace) -> Self {
        let sections = build_section_index(&tt.sections);
        let mut constraints: BTreeMap<SectionId, Vec<SectionId>> = BTreeMap::new();
        for c in &tt.order_constraints {
            constraints.entry(c.after).or_default().push(c.before);
        }
        UlcpFree {
            tt,
            use_dls,
            sections,
            constraints,
            aux_holder: BTreeMap::new(),
            aux_free_since: BTreeMap::new(),
            section_locks: BTreeMap::new(),
            finished: BTreeSet::new(),
            finish_times: BTreeMap::new(),
            lockset_ops: 0,
            lockset_overhead: Time::ZERO,
        }
    }
}

impl ReplayPolicy for UlcpFree<'_> {
    fn on_acquire(&mut self, core: &mut EngineCore, ti: usize, idx: usize, _lock: LockId) -> Step {
        let clock = core.threads[ti].clock;
        // The recorded partial order of condition-variable wake-ups still
        // applies in the ULCP-free replay.
        let Ok(dep_time) = core.wake_dep_time(ti, idx) else {
            core.block_on(ti, []);
            return Step::Blocked;
        };

        let Some(&sid) = self.sections.by_acquire.get(&(ti, idx)) else {
            core.complete(ti, idx, clock.max(dep_time));
            return Step::Completed;
        };
        let node = self.tt.node(sid);

        if node.strip_lock {
            core.complete(ti, idx, clock.max(dep_time));
            return Step::Completed;
        }

        if core.threads[ti].request_time.is_none() {
            core.threads[ti].request_time = Some(clock);
        }

        // RULE 2: ordered predecessors must have finished. Blocking on the
        // first unfinished one is enough — its completion wakes us, and any
        // remaining predecessor blocks the retry the same way.
        let mut order_time = Time::ZERO;
        if let Some(befores) = self.constraints.get(&sid) {
            for before in befores {
                match self.finish_times.get(before) {
                    Some(t) => order_time = order_time.max(*t),
                    None => {
                        core.block_on(ti, [WaitChannel::SectionDone(*before)]);
                        return Step::Blocked;
                    }
                }
            }
        }

        // RULE 3/4: take the (possibly DLS-pruned) lockset atomically.
        let lockset = if self.use_dls {
            dynamic_lockset(node, &self.tt.plan, &self.finished)
        } else {
            node.lockset.clone()
        };
        let mut lockset_free_time = Time::ZERO;
        let mut any_held = false;
        for lock in &lockset {
            if self.aux_holder.contains_key(lock) {
                any_held = true;
            } else {
                lockset_free_time = lockset_free_time
                    .max(self.aux_free_since.get(lock).copied().unwrap_or(Time::ZERO));
            }
        }
        if any_held {
            // Wake on any held lock's release — or, under DLS, on a source
            // section finishing (which may prune the held lock from the
            // lockset entirely).
            let held = lockset
                .iter()
                .filter(|l| self.aux_holder.contains_key(l))
                .map(|l| WaitChannel::AuxLock(*l));
            let prunes = node
                .sources
                .iter()
                .filter(|s| self.use_dls && !self.finished.contains(s))
                .map(|s| WaitChannel::SectionDone(*s));
            core.block_on(ti, held.chain(prunes));
            return Step::Blocked;
        }

        let dls_cost = if self.use_dls {
            core.config.dls_check_cost * node.sources.len() as u64
        } else {
            Time::ZERO
        };
        let op_cost = core.config.lockset_op_cost * lockset.len() as u64;
        let start = clock.max(dep_time).max(order_time).max(lockset_free_time);
        let completion = start + core.config.lock_acquire_cost + op_cost + dls_cost;

        let requested = core.threads[ti].request_time.unwrap_or(clock);
        core.threads[ti].timing.lock_wait += start.saturating_sub(requested);
        core.threads[ti].timing.busy += core.config.lock_acquire_cost + op_cost + dls_cost;
        self.lockset_ops += lockset.len() as u64;
        self.lockset_overhead += op_cost + dls_cost;

        for lock in &lockset {
            self.aux_holder.insert(*lock, sid);
        }
        self.section_locks.insert(sid, lockset);
        core.complete(ti, idx, completion);
        Step::Completed
    }

    fn on_release(&mut self, core: &mut EngineCore, ti: usize, idx: usize, _lock: LockId) -> Step {
        let clock = core.threads[ti].clock;
        let Some(&sid) = self.sections.by_release.get(&(ti, idx)) else {
            core.complete(ti, idx, clock);
            return Step::Completed;
        };
        let node = self.tt.node(sid);
        if node.strip_lock {
            self.finished.insert(sid);
            self.finish_times.insert(sid, clock);
            core.complete(ti, idx, clock);
            core.notify(WaitChannel::SectionDone(sid));
            return Step::Completed;
        }
        let held = self.section_locks.remove(&sid).unwrap_or_default();
        let op_cost = core.config.lockset_op_cost * held.len() as u64;
        let completion = clock + core.config.lock_release_cost + op_cost;
        core.threads[ti].timing.busy += core.config.lock_release_cost + op_cost;
        self.lockset_ops += held.len() as u64;
        self.lockset_overhead += op_cost;
        for lock in &held {
            self.aux_holder.remove(lock);
            self.aux_free_since.insert(*lock, completion);
        }
        self.finished.insert(sid);
        self.finish_times.insert(sid, completion);
        core.complete(ti, idx, completion);
        for lock in &held {
            core.notify(WaitChannel::AuxLock(*lock));
        }
        core.notify(WaitChannel::SectionDone(sid));
        Step::Completed
    }

    fn lockset_totals(&self) -> (u64, Time) {
        (self.lockset_ops, self.lockset_overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::original::Replayer;
    use crate::schedule::ReplaySchedule;
    use perfplay_detect::Detector;
    use perfplay_program::ProgramBuilder;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;
    use perfplay_transform::Transformer;

    fn pipeline(
        build: impl FnOnce(&mut ProgramBuilder),
    ) -> (perfplay_trace::Trace, TransformedTrace) {
        let mut b = ProgramBuilder::new("free-replay-test");
        build(&mut b);
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        let analysis = Detector::default().analyze(&trace);
        let tt = Transformer::default().transform(&trace, &analysis);
        (trace, tt)
    }

    fn read_heavy(threads: usize, iters: u32) -> impl FnOnce(&mut ProgramBuilder) {
        move |b: &mut ProgramBuilder| {
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("rh.c", "reader", 1);
            for i in 0..threads {
                b.thread(format!("t{i}"), |t| {
                    t.loop_n(iters, |l| {
                        l.locked(lock, site, |cs| {
                            cs.read(x);
                            cs.compute_ns(500);
                        });
                        l.compute_ns(100);
                    });
                });
            }
        }
    }

    #[test]
    fn ulcp_free_replay_is_faster_for_read_heavy_contention() {
        let (trace, tt) = pipeline(read_heavy(4, 10));
        let original = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        let free = UlcpFreeReplayer::default().replay(&tt).unwrap();
        assert!(
            free.total_time < original.total_time,
            "ULCP-free {:?} should beat original {:?}",
            free.total_time,
            original.total_time
        );
        // All sections were standalone, so no lockset overhead at all.
        assert_eq!(free.lockset_ops, 0);
    }

    #[test]
    fn true_contention_is_preserved_by_the_transformation() {
        let (trace, tt) = pipeline(|b| {
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("tc.c", "writer", 1);
            for i in 0..2 {
                b.thread(format!("t{i}"), |t| {
                    t.loop_n(5, |l| {
                        l.locked(lock, site, |cs| {
                            let v = cs.read_into(x);
                            cs.write_add(x, 1);
                            cs.compute_ns(600);
                            let _ = v;
                        });
                    });
                });
            }
        });
        let original = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        let free = UlcpFreeReplayer::default().replay(&tt).unwrap();
        // Truly conflicting sections stay serialized: the bodies (600ns * 10)
        // can never overlap, so the free replay cannot drop below that bound.
        assert!(free.total_time >= Time::from_nanos(6_000));
        // And it cannot be dramatically faster than the original replay.
        assert!(free.total_time.as_nanos() as f64 >= 0.7 * original.total_time.as_nanos() as f64);
        assert!(free.lockset_ops > 0);
    }

    #[test]
    fn order_constraints_keep_causal_sections_in_original_order() {
        let (_, tt) = pipeline(|b| {
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("oc.c", "writer", 1);
            for i in 0..3 {
                b.thread(format!("t{i}"), |t| {
                    t.compute_ns(100 * (i as u64 + 1));
                    t.locked(lock, site, |cs| {
                        let v = cs.read_into(x);
                        cs.write_set(x, i as i64);
                        cs.compute_ns(400);
                        let _ = v;
                    });
                });
            }
        });
        let free = UlcpFreeReplayer::default().replay(&tt).unwrap();
        for c in &tt.order_constraints {
            let before = &tt.sections[c.before.index()];
            let after = &tt.sections[c.after.index()];
            let before_release = free.event_times[before.thread.index()][before.release_index];
            let after_acquire = free.event_times[after.thread.index()][after.acquire_index];
            assert!(
                after_acquire >= before_release,
                "constraint {:?} -> {:?} violated",
                c.before,
                c.after
            );
        }
    }

    #[test]
    fn dls_reduces_lockset_operations_and_overhead() {
        let (_, tt) = pipeline(|b| {
            // Writers with gaps between them: by the time a later section
            // starts, its causal sources have usually finished, so DLS can
            // skip their auxiliary locks.
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("dls.c", "writer", 1);
            for i in 0..4 {
                b.thread(format!("t{i}"), |t| {
                    t.compute_us(5 * (i as u64 + 1));
                    t.locked(lock, site, |cs| {
                        let v = cs.read_into(x);
                        cs.write_set(x, i as i64 + 1);
                        cs.compute_ns(300);
                        let _ = v;
                    });
                });
            }
        });
        let with_dls = UlcpFreeReplayer::default().replay(&tt).unwrap();
        let without_dls = UlcpFreeReplayer::default()
            .with_dls(false)
            .replay(&tt)
            .unwrap();
        assert!(with_dls.lockset_ops <= without_dls.lockset_ops);
        assert!(with_dls.lockset_overhead <= without_dls.lockset_overhead);
        assert!(without_dls.lockset_ops > 0);
    }

    #[test]
    fn free_replay_is_deterministic() {
        let (_, tt) = pipeline(read_heavy(3, 6));
        let r1 = UlcpFreeReplayer::default().replay(&tt).unwrap();
        let r2 = UlcpFreeReplayer::default().replay(&tt).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn null_lock_sections_cost_nothing_in_the_free_replay() {
        let (trace, tt) = pipeline(|b| {
            let lock = b.lock("m");
            let _x = b.shared("x", 0);
            let site = b.site("nl.c", "empty", 1);
            for i in 0..2 {
                b.thread(format!("t{i}"), |t| {
                    t.loop_n(10, |l| {
                        l.locked(lock, site, |_| {});
                        l.compute_ns(50);
                    });
                });
            }
        });
        let original = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        let free = UlcpFreeReplayer::default().replay(&tt).unwrap();
        assert!(free.total_time < original.total_time);
        assert_eq!(free.lockset_ops, 0);
        assert_eq!(free.lockset_overhead, Time::ZERO);
    }

    #[test]
    fn condvar_traces_replay_without_sticking() {
        let (_, tt) = pipeline(|b| {
            let lock = b.lock("m");
            let cv = b.condvar("cv");
            let flag = b.shared("flag", 0);
            let site_w = b.site("cvf.c", "waiter", 1);
            let site_s = b.site("cvf.c", "signaller", 2);
            b.thread("waiter", |t| {
                t.locked(lock, site_w, |cs| {
                    cs.cond_wait(cv, lock);
                    cs.read(flag);
                });
            });
            b.thread("signaller", |t| {
                t.compute_us(4);
                t.locked(lock, site_s, |cs| {
                    cs.write_set(flag, 1);
                    cs.cond_signal(cv);
                });
            });
        });
        let free = UlcpFreeReplayer::default().replay(&tt).unwrap();
        assert!(free.per_thread[0].finish_time >= Time::from_micros(4));
    }
}
