//! Replay of the ULCP-free (transformed) trace.
//!
//! The ULCP-free replayer executes the same per-thread event streams as the
//! original replay, but the original lock acquire/release events are
//! reinterpreted through the transformation plan:
//!
//! * sections whose locks were stripped (null-locks and standalone topology
//!   nodes) synchronize with nobody and cost nothing;
//! * every other section atomically acquires its RULE 3 *lockset*, giving the
//!   RULE 4 mutual-exclusion semantics, and obeys the RULE 2 ordering
//!   constraints so replays are stable;
//! * with the dynamic locking strategy (DLS) enabled, auxiliary locks of
//!   already-finished source sections are skipped, which is what keeps the
//!   lockset maintenance overhead at the level Table 3 reports.

use std::collections::{BTreeMap, BTreeSet};

use perfplay_trace::{AuxLockId, Event, SectionId, ThreadId, Time};
use perfplay_transform::{dynamic_lockset, TransformedTrace};

use crate::common::{build_section_index, build_sync_deps, ReplayConfig, SectionIndex, SyncDeps};
use crate::result::{ReplayError, ReplayResult, ThreadReplayTiming};

/// Replays transformed (ULCP-free) traces.
#[derive(Debug, Clone)]
pub struct UlcpFreeReplayer {
    config: ReplayConfig,
    use_dls: bool,
}

impl Default for UlcpFreeReplayer {
    fn default() -> Self {
        UlcpFreeReplayer {
            config: ReplayConfig::default(),
            use_dls: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Blocked,
    Finished,
}

enum Outcome {
    Completed,
    Blocked,
    Finished,
}

struct ThreadState {
    idx: usize,
    clock: Time,
    status: Status,
    timing: ThreadReplayTiming,
    request_time: Option<Time>,
}

struct Engine<'a> {
    config: ReplayConfig,
    use_dls: bool,
    tt: &'a TransformedTrace,
    deps: SyncDeps,
    sections: SectionIndex,
    constraints: BTreeMap<SectionId, Vec<SectionId>>,
    threads: Vec<ThreadState>,
    event_times: Vec<Vec<Time>>,
    aux_holder: BTreeMap<AuxLockId, SectionId>,
    aux_free_since: BTreeMap<AuxLockId, Time>,
    section_locks: BTreeMap<SectionId, BTreeSet<AuxLockId>>,
    finished: BTreeSet<SectionId>,
    finish_times: BTreeMap<SectionId, Time>,
    barrier_arrivals: BTreeMap<(usize, usize), Time>,
    lockset_ops: u64,
    lockset_overhead: Time,
}

impl UlcpFreeReplayer {
    /// Creates a replayer with the given cost model and DLS enabled.
    pub fn new(config: ReplayConfig) -> Self {
        UlcpFreeReplayer {
            config,
            use_dls: true,
        }
    }

    /// Enables or disables the dynamic locking strategy (Figure 9). The
    /// Table 3 ablation compares both settings.
    pub fn with_dls(mut self, use_dls: bool) -> Self {
        self.use_dls = use_dls;
        self
    }

    /// Replays the ULCP-free trace once.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError`] if the transformed synchronization cannot make
    /// progress (which would indicate a transformation bug) or the step limit
    /// is exceeded.
    pub fn replay(&self, transformed: &TransformedTrace) -> Result<ReplayResult, ReplayError> {
        Engine::new(&self.config, self.use_dls, transformed).run()
    }
}

impl<'a> Engine<'a> {
    fn new(config: &ReplayConfig, use_dls: bool, tt: &'a TransformedTrace) -> Self {
        let deps = build_sync_deps(&tt.original);
        let sections = build_section_index(&tt.sections);
        let mut constraints: BTreeMap<SectionId, Vec<SectionId>> = BTreeMap::new();
        for c in &tt.order_constraints {
            constraints.entry(c.after).or_default().push(c.before);
        }
        Engine {
            config: *config,
            use_dls,
            tt,
            deps,
            sections,
            constraints,
            threads: tt
                .original
                .threads
                .iter()
                .map(|_| ThreadState {
                    idx: 0,
                    clock: Time::ZERO,
                    status: Status::Ready,
                    timing: ThreadReplayTiming::default(),
                    request_time: None,
                })
                .collect(),
            event_times: tt
                .original
                .threads
                .iter()
                .map(|t| vec![Time::ZERO; t.events.len()])
                .collect(),
            aux_holder: BTreeMap::new(),
            aux_free_since: BTreeMap::new(),
            section_locks: BTreeMap::new(),
            finished: BTreeSet::new(),
            finish_times: BTreeMap::new(),
            barrier_arrivals: BTreeMap::new(),
            lockset_ops: 0,
            lockset_overhead: Time::ZERO,
        }
    }

    fn run(mut self) -> Result<ReplayResult, ReplayError> {
        let mut steps: u64 = 0;
        loop {
            steps += 1;
            if steps > self.config.max_steps {
                return Err(ReplayError::StepLimitExceeded {
                    limit: self.config.max_steps,
                });
            }
            let next = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Ready)
                .min_by_key(|(i, t)| (t.clock, *i))
                .map(|(i, _)| i);
            let Some(ti) = next else {
                let blocked: Vec<ThreadId> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status != Status::Finished)
                    .map(|(i, _)| ThreadId::new(i as u32))
                    .collect();
                if blocked.is_empty() {
                    break;
                }
                return Err(ReplayError::Stuck { blocked });
            };
            match self.try_event(ti) {
                Outcome::Completed => self.wake_all(),
                Outcome::Blocked => self.threads[ti].status = Status::Blocked,
                Outcome::Finished => {
                    self.threads[ti].status = Status::Finished;
                    self.threads[ti].timing.finish_time = self.threads[ti].clock;
                    self.wake_all();
                }
            }
        }
        let total_time = self
            .threads
            .iter()
            .map(|t| t.timing.finish_time)
            .max()
            .unwrap_or(Time::ZERO);
        Ok(ReplayResult {
            total_time,
            per_thread: self.threads.iter().map(|t| t.timing).collect(),
            event_times: self.event_times,
            lockset_ops: self.lockset_ops,
            lockset_overhead: self.lockset_overhead,
        })
    }

    fn wake_all(&mut self) {
        for t in &mut self.threads {
            if t.status == Status::Blocked {
                t.status = Status::Ready;
            }
        }
    }

    fn complete(&mut self, ti: usize, idx: usize, completion: Time) {
        self.event_times[ti][idx] = completion;
        self.threads[ti].clock = completion;
        self.threads[ti].idx = idx + 1;
        self.threads[ti].request_time = None;
    }

    fn try_event(&mut self, ti: usize) -> Outcome {
        let idx = self.threads[ti].idx;
        let events = &self.tt.original.threads[ti].events;
        if idx >= events.len() {
            return Outcome::Finished;
        }
        let clock = self.threads[ti].clock;
        let event = events[idx].event.clone();
        match event {
            Event::Compute { cost }
            | Event::SkipRegion {
                saved_cost: cost, ..
            } => {
                self.threads[ti].timing.busy += cost;
                self.complete(ti, idx, clock + cost);
                Outcome::Completed
            }
            Event::Read { .. } | Event::Write { .. } => {
                let cost = self.config.mem_access_cost;
                self.threads[ti].timing.busy += cost;
                self.complete(ti, idx, clock + cost);
                Outcome::Completed
            }
            Event::LockAcquire { .. } => self.try_enter_section(ti, idx),
            Event::LockRelease { .. } => self.exit_section(ti, idx),
            Event::CondWait { .. } | Event::Checkpoint { .. } | Event::ThreadExit => {
                self.complete(ti, idx, clock);
                Outcome::Completed
            }
            Event::CondSignal { .. } => {
                let cost = self.config.cond_signal_cost;
                self.threads[ti].timing.busy += cost;
                self.complete(ti, idx, clock + cost);
                Outcome::Completed
            }
            Event::BarrierWait { .. } => {
                self.barrier_arrivals.entry((ti, idx)).or_insert(clock);
                let Some(group) = self.deps.barrier_groups.get(&(ti, idx)) else {
                    self.complete(ti, idx, clock + self.config.barrier_release_cost);
                    return Outcome::Completed;
                };
                let arrivals: Vec<Time> = group
                    .iter()
                    .filter_map(|r| self.barrier_arrivals.get(r).copied())
                    .collect();
                if arrivals.len() < group.len() {
                    return Outcome::Blocked;
                }
                let release = arrivals.iter().copied().max().unwrap_or(clock)
                    + self.config.barrier_release_cost;
                self.threads[ti].timing.sync_wait += release - clock;
                self.complete(ti, idx, release);
                Outcome::Completed
            }
        }
    }

    fn try_enter_section(&mut self, ti: usize, idx: usize) -> Outcome {
        let clock = self.threads[ti].clock;
        // The recorded partial order of condition-variable wake-ups still
        // applies in the ULCP-free replay.
        let mut dep_time = Time::ZERO;
        if let Some(dep) = self.deps.wake_deps.get(&(ti, idx)) {
            let (dti, dei) = *dep;
            if self.threads[dti].idx <= dei {
                return Outcome::Blocked;
            }
            dep_time = self.event_times[dti][dei];
        }

        let Some(&sid) = self.sections.by_acquire.get(&(ti, idx)) else {
            self.complete(ti, idx, clock.max(dep_time));
            return Outcome::Completed;
        };
        let node = self.tt.node(sid);

        if node.strip_lock {
            self.complete(ti, idx, clock.max(dep_time));
            return Outcome::Completed;
        }

        if self.threads[ti].request_time.is_none() {
            self.threads[ti].request_time = Some(clock);
        }

        // RULE 2: ordered predecessors must have finished.
        let mut order_time = Time::ZERO;
        if let Some(befores) = self.constraints.get(&sid) {
            for before in befores {
                match self.finish_times.get(before) {
                    Some(t) => order_time = order_time.max(*t),
                    None => return Outcome::Blocked,
                }
            }
        }

        // RULE 3/4: take the (possibly DLS-pruned) lockset atomically.
        let lockset = if self.use_dls {
            dynamic_lockset(node, &self.tt.plan, &self.finished)
        } else {
            node.lockset.clone()
        };
        let mut lockset_free_time = Time::ZERO;
        for lock in &lockset {
            if self.aux_holder.contains_key(lock) {
                return Outcome::Blocked;
            }
            lockset_free_time =
                lockset_free_time.max(self.aux_free_since.get(lock).copied().unwrap_or(Time::ZERO));
        }

        let dls_cost = if self.use_dls {
            self.config.dls_check_cost * node.sources.len() as u64
        } else {
            Time::ZERO
        };
        let op_cost = self.config.lockset_op_cost * lockset.len() as u64;
        let start = clock.max(dep_time).max(order_time).max(lockset_free_time);
        let completion = start + self.config.lock_acquire_cost + op_cost + dls_cost;

        let requested = self.threads[ti].request_time.unwrap_or(clock);
        self.threads[ti].timing.lock_wait += start.saturating_sub(requested);
        self.threads[ti].timing.busy += self.config.lock_acquire_cost + op_cost + dls_cost;
        self.lockset_ops += lockset.len() as u64;
        self.lockset_overhead += op_cost + dls_cost;

        for lock in &lockset {
            self.aux_holder.insert(*lock, sid);
        }
        self.section_locks.insert(sid, lockset);
        self.complete(ti, idx, completion);
        Outcome::Completed
    }

    fn exit_section(&mut self, ti: usize, idx: usize) -> Outcome {
        let clock = self.threads[ti].clock;
        let Some(&sid) = self.sections.by_release.get(&(ti, idx)) else {
            self.complete(ti, idx, clock);
            return Outcome::Completed;
        };
        let node = self.tt.node(sid);
        if node.strip_lock {
            self.finished.insert(sid);
            self.finish_times.insert(sid, clock);
            self.complete(ti, idx, clock);
            return Outcome::Completed;
        }
        let held = self.section_locks.remove(&sid).unwrap_or_default();
        let op_cost = self.config.lockset_op_cost * held.len() as u64;
        let completion = clock + self.config.lock_release_cost + op_cost;
        self.threads[ti].timing.busy += self.config.lock_release_cost + op_cost;
        self.lockset_ops += held.len() as u64;
        self.lockset_overhead += op_cost;
        for lock in held {
            self.aux_holder.remove(&lock);
            self.aux_free_since.insert(lock, completion);
        }
        self.finished.insert(sid);
        self.finish_times.insert(sid, completion);
        self.complete(ti, idx, completion);
        Outcome::Completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::original::Replayer;
    use crate::schedule::ReplaySchedule;
    use perfplay_detect::Detector;
    use perfplay_program::ProgramBuilder;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;
    use perfplay_transform::Transformer;

    fn pipeline(
        build: impl FnOnce(&mut ProgramBuilder),
    ) -> (perfplay_trace::Trace, TransformedTrace) {
        let mut b = ProgramBuilder::new("free-replay-test");
        build(&mut b);
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        let analysis = Detector::default().analyze(&trace);
        let tt = Transformer::default().transform(&trace, &analysis);
        (trace, tt)
    }

    fn read_heavy(threads: usize, iters: u32) -> impl FnOnce(&mut ProgramBuilder) {
        move |b: &mut ProgramBuilder| {
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("rh.c", "reader", 1);
            for i in 0..threads {
                b.thread(format!("t{i}"), |t| {
                    t.loop_n(iters, |l| {
                        l.locked(lock, site, |cs| {
                            cs.read(x);
                            cs.compute_ns(500);
                        });
                        l.compute_ns(100);
                    });
                });
            }
        }
    }

    #[test]
    fn ulcp_free_replay_is_faster_for_read_heavy_contention() {
        let (trace, tt) = pipeline(read_heavy(4, 10));
        let original = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        let free = UlcpFreeReplayer::default().replay(&tt).unwrap();
        assert!(
            free.total_time < original.total_time,
            "ULCP-free {:?} should beat original {:?}",
            free.total_time,
            original.total_time
        );
        // All sections were standalone, so no lockset overhead at all.
        assert_eq!(free.lockset_ops, 0);
    }

    #[test]
    fn true_contention_is_preserved_by_the_transformation() {
        let (trace, tt) = pipeline(|b| {
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("tc.c", "writer", 1);
            for i in 0..2 {
                b.thread(format!("t{i}"), |t| {
                    t.loop_n(5, |l| {
                        l.locked(lock, site, |cs| {
                            let v = cs.read_into(x);
                            cs.write_add(x, 1);
                            cs.compute_ns(600);
                            let _ = v;
                        });
                    });
                });
            }
        });
        let original = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        let free = UlcpFreeReplayer::default().replay(&tt).unwrap();
        // Truly conflicting sections stay serialized: the bodies (600ns * 10)
        // can never overlap, so the free replay cannot drop below that bound.
        assert!(free.total_time >= Time::from_nanos(6_000));
        // And it cannot be dramatically faster than the original replay.
        assert!(free.total_time.as_nanos() as f64 >= 0.7 * original.total_time.as_nanos() as f64);
        assert!(free.lockset_ops > 0);
    }

    #[test]
    fn order_constraints_keep_causal_sections_in_original_order() {
        let (_, tt) = pipeline(|b| {
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("oc.c", "writer", 1);
            for i in 0..3 {
                b.thread(format!("t{i}"), |t| {
                    t.compute_ns(100 * (i as u64 + 1));
                    t.locked(lock, site, |cs| {
                        let v = cs.read_into(x);
                        cs.write_set(x, i as i64);
                        cs.compute_ns(400);
                        let _ = v;
                    });
                });
            }
        });
        let free = UlcpFreeReplayer::default().replay(&tt).unwrap();
        for c in &tt.order_constraints {
            let before = &tt.sections[c.before.index()];
            let after = &tt.sections[c.after.index()];
            let before_release = free.event_times[before.thread.index()][before.release_index];
            let after_acquire = free.event_times[after.thread.index()][after.acquire_index];
            assert!(
                after_acquire >= before_release,
                "constraint {:?} -> {:?} violated",
                c.before,
                c.after
            );
        }
    }

    #[test]
    fn dls_reduces_lockset_operations_and_overhead() {
        let (_, tt) = pipeline(|b| {
            // Writers with gaps between them: by the time a later section
            // starts, its causal sources have usually finished, so DLS can
            // skip their auxiliary locks.
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("dls.c", "writer", 1);
            for i in 0..4 {
                b.thread(format!("t{i}"), |t| {
                    t.compute_us(5 * (i as u64 + 1));
                    t.locked(lock, site, |cs| {
                        let v = cs.read_into(x);
                        cs.write_set(x, i as i64 + 1);
                        cs.compute_ns(300);
                        let _ = v;
                    });
                });
            }
        });
        let with_dls = UlcpFreeReplayer::default().replay(&tt).unwrap();
        let without_dls = UlcpFreeReplayer::default()
            .with_dls(false)
            .replay(&tt)
            .unwrap();
        assert!(with_dls.lockset_ops <= without_dls.lockset_ops);
        assert!(with_dls.lockset_overhead <= without_dls.lockset_overhead);
        assert!(without_dls.lockset_ops > 0);
    }

    #[test]
    fn free_replay_is_deterministic() {
        let (_, tt) = pipeline(read_heavy(3, 6));
        let r1 = UlcpFreeReplayer::default().replay(&tt).unwrap();
        let r2 = UlcpFreeReplayer::default().replay(&tt).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn null_lock_sections_cost_nothing_in_the_free_replay() {
        let (trace, tt) = pipeline(|b| {
            let lock = b.lock("m");
            let _x = b.shared("x", 0);
            let site = b.site("nl.c", "empty", 1);
            for i in 0..2 {
                b.thread(format!("t{i}"), |t| {
                    t.loop_n(10, |l| {
                        l.locked(lock, site, |_| {});
                        l.compute_ns(50);
                    });
                });
            }
        });
        let original = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        let free = UlcpFreeReplayer::default().replay(&tt).unwrap();
        assert!(free.total_time < original.total_time);
        assert_eq!(free.lockset_ops, 0);
        assert_eq!(free.lockset_overhead, Time::ZERO);
    }

    #[test]
    fn condvar_traces_replay_without_sticking() {
        let (_, tt) = pipeline(|b| {
            let lock = b.lock("m");
            let cv = b.condvar("cv");
            let flag = b.shared("flag", 0);
            let site_w = b.site("cvf.c", "waiter", 1);
            let site_s = b.site("cvf.c", "signaller", 2);
            b.thread("waiter", |t| {
                t.locked(lock, site_w, |cs| {
                    cs.cond_wait(cv, lock);
                    cs.read(flag);
                });
            });
            b.thread("signaller", |t| {
                t.compute_us(4);
                t.locked(lock, site_s, |cs| {
                    cs.write_set(flag, 1);
                    cs.cond_signal(cv);
                });
            });
        });
        let free = UlcpFreeReplayer::default().replay(&tt).unwrap();
        assert!(free.per_thread[0].finish_time >= Time::from_micros(4));
    }
}
