//! Performance-fidelity measurement across repeated replays (Section 6.2,
//! Figure 13).
//!
//! Fidelity has two components in the paper: *stability* (do repeated replays
//! of the same trace report the same time?) and *precision* (does the replay
//! time match the original execution?). [`measure_fidelity`] replays a trace
//! several times under one schedule and summarizes both.

use perfplay_trace::{Time, Trace};

use crate::original::Replayer;
use crate::result::ReplayError;
use crate::schedule::{ReplaySchedule, ScheduleKind};

/// Summary of repeated replays of one trace under one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityReport {
    /// The schedule measured.
    pub kind: ScheduleKind,
    /// Replayed total times, one per replay.
    pub times: Vec<Time>,
    /// Total time of the original (recorded) execution.
    pub recorded: Time,
}

impl FidelityReport {
    /// Mean replayed time.
    pub fn mean(&self) -> Time {
        if self.times.is_empty() {
            return Time::ZERO;
        }
        let sum: u128 = self.times.iter().map(|t| t.as_nanos() as u128).sum();
        Time::from_nanos((sum / self.times.len() as u128) as u64)
    }

    /// Smallest replayed time.
    pub fn min(&self) -> Time {
        self.times.iter().copied().min().unwrap_or(Time::ZERO)
    }

    /// Largest replayed time.
    pub fn max(&self) -> Time {
        self.times.iter().copied().max().unwrap_or(Time::ZERO)
    }

    /// Stability: relative spread `(max - min) / mean`. Zero means perfectly
    /// stable (deterministic) replays.
    pub fn spread(&self) -> f64 {
        let mean = self.mean();
        (self.max() - self.min()).ratio(mean)
    }

    /// Precision: relative distance of the mean replay time from the
    /// recorded execution time.
    pub fn precision_error(&self) -> f64 {
        let mean = self.mean().as_nanos() as f64;
        let recorded = self.recorded.as_nanos() as f64;
        if recorded == 0.0 {
            0.0
        } else {
            (mean - recorded).abs() / recorded
        }
    }
}

/// Replays `trace` `replays` times under `kind` and reports fidelity.
/// Non-deterministic schedules (ORIG-S) vary the noise seed per replay.
///
/// # Errors
///
/// Propagates the first replay failure.
pub fn measure_fidelity(
    replayer: &Replayer,
    trace: &Trace,
    kind: ScheduleKind,
    replays: usize,
) -> Result<FidelityReport, ReplayError> {
    let mut times = Vec::with_capacity(replays);
    for i in 0..replays {
        let schedule = match kind {
            ScheduleKind::OrigS => ReplaySchedule::orig(i as u64 + 1),
            ScheduleKind::ElscS => ReplaySchedule::elsc(),
            ScheduleKind::SyncS => ReplaySchedule::sync(),
            ScheduleKind::MemS => ReplaySchedule::mem(),
        };
        times.push(replayer.replay(trace, schedule)?.total_time);
    }
    Ok(FidelityReport {
        kind,
        times,
        recorded: trace.total_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_program::ProgramBuilder;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;

    fn contended_trace() -> Trace {
        let mut b = ProgramBuilder::new("fidelity-test");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("f.c", "work", 1);
        for i in 0..4 {
            b.thread(format!("t{i}"), |t| {
                t.loop_n(12, |l| {
                    l.locked(lock, site, |cs| {
                        cs.read(x);
                        cs.compute_ns(350);
                    });
                    l.compute_ns(250);
                });
            });
        }
        Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace
    }

    #[test]
    fn deterministic_schedules_have_zero_spread() {
        let trace = contended_trace();
        let replayer = Replayer::default();
        for kind in [ScheduleKind::ElscS, ScheduleKind::SyncS, ScheduleKind::MemS] {
            let report = measure_fidelity(&replayer, &trace, kind, 5).unwrap();
            assert_eq!(report.spread(), 0.0, "{kind} should be stable");
            assert_eq!(report.times.len(), 5);
        }
    }

    #[test]
    fn orig_schedule_is_unstable_but_elsc_is_precise() {
        let trace = contended_trace();
        let replayer = Replayer::default();
        let orig = measure_fidelity(&replayer, &trace, ScheduleKind::OrigS, 8).unwrap();
        let elsc = measure_fidelity(&replayer, &trace, ScheduleKind::ElscS, 8).unwrap();
        assert!(orig.spread() > 0.0, "ORIG-S should vary across replays");
        assert!(
            elsc.precision_error() < 0.02,
            "ELSC-S should match the recording"
        );
        assert!(elsc.precision_error() <= orig.precision_error() + 0.02);
    }

    #[test]
    fn sync_and_mem_add_overhead_relative_to_elsc() {
        let trace = contended_trace();
        let replayer = Replayer::default();
        let elsc = measure_fidelity(&replayer, &trace, ScheduleKind::ElscS, 3).unwrap();
        let sync = measure_fidelity(&replayer, &trace, ScheduleKind::SyncS, 3).unwrap();
        let mem = measure_fidelity(&replayer, &trace, ScheduleKind::MemS, 3).unwrap();
        assert!(sync.mean() >= elsc.mean());
        assert!(mem.mean() >= elsc.mean());
    }

    #[test]
    fn report_statistics_are_consistent() {
        let report = FidelityReport {
            kind: ScheduleKind::ElscS,
            times: vec![Time::from_nanos(90), Time::from_nanos(110)],
            recorded: Time::from_nanos(100),
        };
        assert_eq!(report.mean(), Time::from_nanos(100));
        assert_eq!(report.min(), Time::from_nanos(90));
        assert_eq!(report.max(), Time::from_nanos(110));
        assert!((report.spread() - 0.2).abs() < 1e-12);
        assert_eq!(report.precision_error(), 0.0);
    }
}
