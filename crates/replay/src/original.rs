//! Replay of the *original* recorded trace under the four scheduling schemes
//! (ORIG-S, ELSC-S, SYNC-S, MEM-S).
//!
//! The replayer is a discrete-event loop over the recorded per-thread event
//! streams: computation and memory accesses are charged their model cost,
//! lock acquisitions are granted subject to the active schedule's admission
//! rule, and condition-variable / barrier waits follow the recorded partial
//! order. The result carries per-event completion times so that the report
//! layer can evaluate the paper's Equation 1.

use std::collections::BTreeMap;

use perfplay_trace::{Event, LockId, ThreadId, Time, Trace};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::common::{build_sync_deps, EventRef, ReplayConfig, SyncDeps};
use crate::result::{ReplayError, ReplayResult, ThreadReplayTiming};
use crate::schedule::{ReplaySchedule, ScheduleKind};

/// Replays original (untransformed) traces.
#[derive(Debug, Clone, Default)]
pub struct Replayer {
    config: ReplayConfig,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Blocked,
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    idx: usize,
    clock: Time,
    status: Status,
    timing: ThreadReplayTiming,
    request_time: Option<Time>,
    acquires_done: usize,
}

enum Outcome {
    Completed,
    Blocked,
    Finished,
}

struct Engine<'a> {
    config: ReplayConfig,
    schedule: ReplaySchedule,
    trace: &'a Trace,
    deps: SyncDeps,
    threads: Vec<ThreadState>,
    event_times: Vec<Vec<Time>>,
    // Lock state.
    holder: BTreeMap<LockId, Option<usize>>,
    last_holder: BTreeMap<LockId, usize>,
    free_since: BTreeMap<LockId, Time>,
    // ELSC: per-lock recorded grant order and progress.
    elsc_order: BTreeMap<LockId, Vec<EventRef>>,
    elsc_next: BTreeMap<LockId, usize>,
    // SYNC-S: round-robin admission over (ordinal, thread) tickets.
    sync_order: BTreeMap<(usize, usize), usize>,
    sync_next: usize,
    sync_completed: std::collections::BTreeSet<usize>,
    sync_last_completion: Time,
    /// Thread allowed to bypass SYNC-S admission once, used to break the
    /// circular waits nested locks can create under a rigid ticket order.
    sync_bypass: Option<usize>,
    // MEM-S: global memory-access order.
    mem_order: BTreeMap<EventRef, usize>,
    mem_next: usize,
    mem_last_completion: Time,
    // Barrier arrivals.
    barrier_arrivals: BTreeMap<EventRef, Time>,
    rng: ChaCha8Rng,
}

impl Replayer {
    /// Creates a replayer with the default cost model.
    pub fn new(config: ReplayConfig) -> Self {
        Replayer { config }
    }

    /// Replays the trace once under the given schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::Stuck`] if the trace and schedule are mutually
    /// inconsistent, or [`ReplayError::StepLimitExceeded`] for runaway
    /// replays.
    pub fn replay(
        &self,
        trace: &Trace,
        schedule: ReplaySchedule,
    ) -> Result<ReplayResult, ReplayError> {
        Engine::new(&self.config, schedule, trace).run()
    }
}

impl<'a> Engine<'a> {
    fn new(config: &ReplayConfig, schedule: ReplaySchedule, trace: &'a Trace) -> Self {
        let deps = build_sync_deps(trace);

        // ELSC: project the recorded total grant order onto each lock.
        let mut elsc_order: BTreeMap<LockId, Vec<EventRef>> = BTreeMap::new();
        let mut schedule_entries = trace.lock_schedule.clone();
        schedule_entries.sort_by_key(|g| g.seq);
        for g in &schedule_entries {
            elsc_order
                .entry(g.lock)
                .or_default()
                .push((g.thread.index(), g.event_index));
        }

        // SYNC-S: deterministic round-robin ticket order over per-thread
        // acquisition ordinals, derived from the input alone.
        let mut sync_order = BTreeMap::new();
        {
            let acq_counts: Vec<usize> = trace
                .threads
                .iter()
                .map(|t| t.acquisition_count())
                .collect();
            let max = acq_counts.iter().copied().max().unwrap_or(0);
            let mut position = 0usize;
            for ordinal in 0..max {
                for (ti, count) in acq_counts.iter().enumerate() {
                    if ordinal < *count {
                        sync_order.insert((ordinal, ti), position);
                        position += 1;
                    }
                }
            }
        }

        // MEM-S: global order of all shared-memory accesses by recorded time.
        let mut mem_events: Vec<(Time, EventRef)> = Vec::new();
        for (ti, tt) in trace.threads.iter().enumerate() {
            for (ei, te) in tt.events.iter().enumerate() {
                if te.event.is_memory_access() {
                    mem_events.push((te.at, (ti, ei)));
                }
            }
        }
        mem_events.sort_by_key(|(at, (ti, ei))| (*at, *ti, *ei));
        let mem_order = mem_events
            .into_iter()
            .enumerate()
            .map(|(pos, (_, r))| (r, pos))
            .collect();

        Engine {
            config: *config,
            schedule,
            trace,
            deps,
            threads: trace
                .threads
                .iter()
                .map(|_| ThreadState {
                    idx: 0,
                    clock: Time::ZERO,
                    status: Status::Ready,
                    timing: ThreadReplayTiming::default(),
                    request_time: None,
                    acquires_done: 0,
                })
                .collect(),
            event_times: trace
                .threads
                .iter()
                .map(|t| vec![Time::ZERO; t.events.len()])
                .collect(),
            holder: BTreeMap::new(),
            last_holder: BTreeMap::new(),
            free_since: BTreeMap::new(),
            elsc_order,
            elsc_next: BTreeMap::new(),
            sync_order,
            sync_next: 0,
            sync_completed: std::collections::BTreeSet::new(),
            sync_last_completion: Time::ZERO,
            sync_bypass: None,
            mem_order,
            mem_next: 0,
            mem_last_completion: Time::ZERO,
            barrier_arrivals: BTreeMap::new(),
            rng: ChaCha8Rng::seed_from_u64(schedule.seed),
        }
    }

    fn run(mut self) -> Result<ReplayResult, ReplayError> {
        let mut steps: u64 = 0;
        loop {
            steps += 1;
            if steps > self.config.max_steps {
                return Err(ReplayError::StepLimitExceeded {
                    limit: self.config.max_steps,
                });
            }
            let next = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Ready)
                .min_by_key(|(i, t)| (t.clock, *i))
                .map(|(i, _)| i);
            let Some(ti) = next else {
                let blocked: Vec<ThreadId> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status != Status::Finished)
                    .map(|(i, _)| ThreadId::new(i as u32))
                    .collect();
                if blocked.is_empty() {
                    break;
                }
                // Under SYNC-S, nested locks can deadlock a rigid ticket
                // order (the next-ticket thread waits for a lock whose holder
                // waits for its own ticket). Let the blocked thread whose
                // next acquire targets a *free* lock bypass admission once.
                if self.schedule.kind == ScheduleKind::SyncS && self.sync_bypass.is_none() {
                    if let Some(candidate) = self.find_sync_bypass_candidate() {
                        self.sync_bypass = Some(candidate);
                        self.threads[candidate].status = Status::Ready;
                        continue;
                    }
                }
                return Err(ReplayError::Stuck { blocked });
            };
            match self.try_event(ti) {
                Outcome::Completed => self.wake_all(),
                Outcome::Blocked => {
                    self.threads[ti].status = Status::Blocked;
                }
                Outcome::Finished => {
                    self.threads[ti].status = Status::Finished;
                    self.threads[ti].timing.finish_time = self.threads[ti].clock;
                    self.wake_all();
                }
            }
        }
        let total_time = self
            .threads
            .iter()
            .map(|t| t.timing.finish_time)
            .max()
            .unwrap_or(Time::ZERO);
        Ok(ReplayResult {
            total_time,
            per_thread: self.threads.iter().map(|t| t.timing).collect(),
            event_times: self.event_times,
            lockset_ops: 0,
            lockset_overhead: Time::ZERO,
        })
    }

    fn wake_all(&mut self) {
        for t in &mut self.threads {
            if t.status == Status::Blocked {
                t.status = Status::Ready;
            }
        }
    }

    /// Among blocked threads, finds one whose next event is a lock
    /// acquisition of a currently-free lock (so only admission stops it).
    fn find_sync_bypass_candidate(&self) -> Option<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Blocked)
            .filter(|(ti, t)| {
                let events = &self.trace.threads[*ti].events;
                match events.get(t.idx).map(|te| &te.event) {
                    Some(Event::LockAcquire { lock, .. }) => {
                        !matches!(self.holder.get(lock), Some(Some(h)) if h != ti)
                    }
                    _ => false,
                }
            })
            .min_by_key(|(ti, t)| {
                self.sync_order
                    .get(&(t.acquires_done, *ti))
                    .copied()
                    .unwrap_or(usize::MAX)
            })
            .map(|(ti, _)| ti)
    }

    fn complete(&mut self, ti: usize, idx: usize, completion: Time) {
        self.event_times[ti][idx] = completion;
        self.threads[ti].clock = completion;
        self.threads[ti].idx = idx + 1;
        self.threads[ti].request_time = None;
    }

    fn try_event(&mut self, ti: usize) -> Outcome {
        let idx = self.threads[ti].idx;
        let events = &self.trace.threads[ti].events;
        if idx >= events.len() {
            return Outcome::Finished;
        }
        let clock = self.threads[ti].clock;
        let event = events[idx].event.clone();
        match event {
            Event::Compute { cost }
            | Event::SkipRegion {
                saved_cost: cost, ..
            } => {
                self.threads[ti].timing.busy += cost;
                self.complete(ti, idx, clock + cost);
                Outcome::Completed
            }
            Event::Read { .. } | Event::Write { .. } => {
                let cost = self.config.mem_access_cost;
                if self.schedule.kind == ScheduleKind::MemS {
                    match self.mem_order.get(&(ti, idx)) {
                        Some(&pos) if pos != self.mem_next => return Outcome::Blocked,
                        _ => {}
                    }
                    let cost = cost + self.config.mem_order_overhead;
                    let start = clock.max(self.mem_last_completion);
                    self.threads[ti].timing.sync_wait += start - clock;
                    self.threads[ti].timing.busy += cost;
                    let completion = start + cost;
                    self.mem_last_completion = completion;
                    self.mem_next += 1;
                    self.complete(ti, idx, completion);
                } else {
                    self.threads[ti].timing.busy += cost;
                    self.complete(ti, idx, clock + cost);
                }
                Outcome::Completed
            }
            Event::LockAcquire { lock, .. } => self.try_acquire(ti, idx, lock),
            Event::LockRelease { lock } => {
                let cost = self.config.lock_release_cost;
                let completion = clock + cost;
                self.threads[ti].timing.busy += cost;
                self.holder.insert(lock, None);
                self.last_holder.insert(lock, ti);
                self.free_since.insert(lock, completion);
                self.complete(ti, idx, completion);
                Outcome::Completed
            }
            Event::CondWait { .. } | Event::Checkpoint { .. } | Event::ThreadExit => {
                self.complete(ti, idx, clock);
                Outcome::Completed
            }
            Event::CondSignal { .. } => {
                let cost = self.config.cond_signal_cost;
                self.threads[ti].timing.busy += cost;
                self.complete(ti, idx, clock + cost);
                Outcome::Completed
            }
            Event::BarrierWait { .. } => {
                self.barrier_arrivals.entry((ti, idx)).or_insert(clock);
                let Some(group) = self.deps.barrier_groups.get(&(ti, idx)) else {
                    self.complete(ti, idx, clock + self.config.barrier_release_cost);
                    return Outcome::Completed;
                };
                let arrivals: Vec<Time> = group
                    .iter()
                    .filter_map(|r| self.barrier_arrivals.get(r).copied())
                    .collect();
                if arrivals.len() < group.len() {
                    return Outcome::Blocked;
                }
                let release = arrivals.iter().copied().max().unwrap_or(clock)
                    + self.config.barrier_release_cost;
                self.threads[ti].timing.sync_wait += release - clock;
                self.complete(ti, idx, release);
                Outcome::Completed
            }
        }
    }

    fn try_acquire(&mut self, ti: usize, idx: usize, lock: LockId) -> Outcome {
        let clock = self.threads[ti].clock;
        if self.threads[ti].request_time.is_none() {
            self.threads[ti].request_time = Some(clock);
        }

        // Recorded partial order for condition-variable wake-ups.
        let mut dep_time = Time::ZERO;
        if let Some(dep) = self.deps.wake_deps.get(&(ti, idx)) {
            let (dti, dei) = *dep;
            if self.threads[dti].idx <= dei {
                return Outcome::Blocked;
            }
            dep_time = self.event_times[dti][dei];
        }

        // Schedule admission. MEM-S enforces the recorded order of *all*
        // shared accesses, which subsumes the lock acquisitions themselves,
        // so it reuses the per-lock recorded grant order like ELSC-S does.
        let mut admission_time = Time::ZERO;
        let mut sync_pos = None;
        match self.schedule.kind {
            ScheduleKind::ElscS | ScheduleKind::MemS => {
                if let Some(order) = self.elsc_order.get(&lock) {
                    let next = self.elsc_next.get(&lock).copied().unwrap_or(0);
                    if let Some(&expected) = order.get(next) {
                        if expected != (ti, idx) {
                            return Outcome::Blocked;
                        }
                    }
                }
            }
            ScheduleKind::SyncS => {
                let ticket = (self.threads[ti].acquires_done, ti);
                if let Some(&pos) = self.sync_order.get(&ticket) {
                    if pos != self.sync_next && self.sync_bypass != Some(ti) {
                        return Outcome::Blocked;
                    }
                    admission_time = self.sync_last_completion + self.config.sync_turn_overhead;
                    sync_pos = Some(pos);
                }
            }
            ScheduleKind::OrigS => {}
        }

        // Lock availability.
        if matches!(self.holder.get(&lock), Some(Some(h)) if *h != ti) {
            if self.schedule.kind == ScheduleKind::OrigS && !self.schedule.jitter.is_zero() {
                // OS scheduling noise: a blocked thread wakes up a little
                // late, which perturbs who wins the next grant.
                let jitter = self.rng.gen_range(0..=self.schedule.jitter.as_nanos());
                self.threads[ti].clock = clock + Time::from_nanos(jitter);
            }
            return Outcome::Blocked;
        }

        let free_since = self.free_since.get(&lock).copied().unwrap_or(Time::ZERO);
        let start = clock.max(free_since).max(dep_time).max(admission_time);
        let handoff = match self.last_holder.get(&lock) {
            Some(last) if *last != ti => self.config.lock_handoff_cost,
            None => Time::ZERO,
            _ => Time::ZERO,
        };
        let noise = if self.schedule.kind == ScheduleKind::OrigS && !self.schedule.jitter.is_zero()
        {
            Time::from_nanos(self.rng.gen_range(0..=self.schedule.jitter.as_nanos() / 16))
        } else {
            Time::ZERO
        };
        let completion = start + self.config.lock_acquire_cost + handoff + noise;

        let requested = self.threads[ti].request_time.unwrap_or(clock);
        self.threads[ti].timing.lock_wait += start.saturating_sub(requested);
        self.threads[ti].timing.busy += self.config.lock_acquire_cost;

        self.holder.insert(lock, Some(ti));
        self.last_holder.insert(lock, ti);
        match self.schedule.kind {
            ScheduleKind::ElscS | ScheduleKind::MemS => {
                *self.elsc_next.entry(lock).or_insert(0) += 1;
            }
            ScheduleKind::SyncS => {
                if let Some(pos) = sync_pos {
                    self.sync_completed.insert(pos);
                    while self.sync_completed.contains(&self.sync_next) {
                        self.sync_next += 1;
                    }
                }
                self.sync_bypass = None;
                self.sync_last_completion = completion;
            }
            _ => {}
        }
        self.threads[ti].acquires_done += 1;
        self.complete(ti, idx, completion);
        Outcome::Completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_program::ProgramBuilder;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;

    fn contended_trace(threads: usize, iters: u32) -> Trace {
        let mut b = ProgramBuilder::new("replay-test");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("r.c", "work", 1);
        for i in 0..threads {
            b.thread(format!("t{i}"), |t| {
                t.loop_n(iters, |l| {
                    l.locked(lock, site, |cs| {
                        cs.read(x);
                        cs.compute_ns(400);
                    });
                    l.compute_ns(300);
                });
            });
        }
        Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace
    }

    #[test]
    fn elsc_replay_matches_recorded_total_time() {
        let trace = contended_trace(3, 8);
        let result = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        let recorded = trace.total_time.as_nanos() as f64;
        let replayed = result.total_time.as_nanos() as f64;
        let relative_error = (replayed - recorded).abs() / recorded;
        assert!(
            relative_error < 0.02,
            "ELSC replay {replayed}ns differs from recorded {recorded}ns by {relative_error}"
        );
    }

    #[test]
    fn elsc_replay_is_deterministic() {
        let trace = contended_trace(4, 6);
        let r1 = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        let r2 = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn orig_replay_varies_with_seed_but_stays_close_to_recorded() {
        let trace = contended_trace(4, 10);
        let times: Vec<Time> = (0..6)
            .map(|seed| {
                Replayer::default()
                    .replay(&trace, ReplaySchedule::orig(seed))
                    .unwrap()
                    .total_time
            })
            .collect();
        let min = times.iter().min().unwrap().as_nanos();
        let max = times.iter().max().unwrap().as_nanos();
        assert!(max > min, "ORIG-S should show run-to-run variation");
        // But the mean stays within 20% of the recorded execution.
        let mean: f64 = times.iter().map(|t| t.as_nanos() as f64).sum::<f64>() / times.len() as f64;
        let recorded = trace.total_time.as_nanos() as f64;
        assert!((mean - recorded).abs() / recorded < 0.2);
    }

    #[test]
    fn sync_replay_is_deterministic_and_not_faster_than_elsc() {
        let trace = contended_trace(4, 8);
        let sync1 = Replayer::default()
            .replay(&trace, ReplaySchedule::sync())
            .unwrap();
        let sync2 = Replayer::default()
            .replay(&trace, ReplaySchedule::sync())
            .unwrap();
        assert_eq!(sync1, sync2);
        let elsc = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        assert!(sync1.total_time >= elsc.total_time);
    }

    #[test]
    fn mem_replay_is_much_slower_than_elsc() {
        let mut b = ProgramBuilder::new("mem-heavy");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("m.c", "work", 1);
        for i in 0..4 {
            b.thread(format!("t{i}"), |t| {
                // One lock acquisition, then memory-access-dominated work
                // that would otherwise run fully in parallel.
                t.locked(lock, site, |cs| {
                    cs.read(x);
                });
                t.loop_n(60, |l| {
                    l.read(x);
                    l.read(x);
                    l.read(x);
                    l.read(x);
                });
            });
        }
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        let elsc = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        let mem = Replayer::default()
            .replay(&trace, ReplaySchedule::mem())
            .unwrap();
        assert!(
            mem.total_time.as_nanos() as f64 > 1.5 * elsc.total_time.as_nanos() as f64,
            "MEM-S {:?} should be much slower than ELSC-S {:?}",
            mem.total_time,
            elsc.total_time
        );
        assert!(mem.per_thread.iter().any(|t| t.sync_wait > Time::ZERO));
    }

    #[test]
    fn event_times_are_monotone_per_thread() {
        let trace = contended_trace(2, 5);
        let result = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        for times in &result.event_times {
            for pair in times.windows(2) {
                assert!(pair[0] <= pair[1]);
            }
        }
        assert_eq!(result.event_times.len(), trace.num_threads());
    }

    #[test]
    fn condvar_trace_replays_without_getting_stuck() {
        let mut b = ProgramBuilder::new("cv-replay");
        let lock = b.lock("m");
        let cv = b.condvar("cv");
        let flag = b.shared("flag", 0);
        let site_w = b.site("cv.c", "waiter", 1);
        let site_s = b.site("cv.c", "signaller", 2);
        b.thread("waiter", |t| {
            t.locked(lock, site_w, |cs| {
                cs.cond_wait(cv, lock);
                cs.read(flag);
            });
        });
        b.thread("signaller", |t| {
            t.compute_us(5);
            t.locked(lock, site_s, |cs| {
                cs.write_set(flag, 1);
                cs.cond_signal(cv);
            });
        });
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        for schedule in [
            ReplaySchedule::elsc(),
            ReplaySchedule::orig(3),
            ReplaySchedule::sync(),
            ReplaySchedule::mem(),
        ] {
            let result = Replayer::default().replay(&trace, schedule).unwrap();
            // The waiter cannot finish before the signaller signalled (~5us in).
            assert!(result.per_thread[0].finish_time >= Time::from_micros(5));
        }
    }

    #[test]
    fn barrier_trace_replays_with_synchronized_release() {
        let mut b = ProgramBuilder::new("barrier-replay");
        let bar = b.barrier("sync", 3);
        for i in 0..3u32 {
            let pre = u64::from(i + 1) * 10;
            b.thread(format!("t{i}"), move |t| {
                t.compute_us(pre);
                t.barrier(bar);
                t.compute_us(1);
            });
        }
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        let result = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        for t in &result.per_thread {
            assert!(t.finish_time >= Time::from_micros(31));
        }
        assert!(result.per_thread[0].sync_wait >= Time::from_micros(19));
    }

    #[test]
    fn lock_wait_appears_under_contention() {
        let trace = contended_trace(2, 4);
        let result = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        assert!(result.total_lock_wait() > Time::ZERO);
        assert_eq!(result.lockset_ops, 0);
    }
}
