//! Replay of the *original* recorded trace under the four scheduling schemes
//! (ORIG-S, ELSC-S, SYNC-S, MEM-S).
//!
//! The replayer is a discrete-event loop over the recorded per-thread event
//! streams: computation and memory accesses are charged their model cost,
//! lock acquisitions are granted subject to the active schedule's admission
//! rule, and condition-variable / barrier waits follow the recorded partial
//! order. The result carries per-event completion times so that the report
//! layer can evaluate the paper's Equation 1.
//!
//! The loop itself lives in the shared [`engine`](crate::engine); this module
//! supplies the [`OriginalOrder`] policy — the admission rules of the four
//! schemes — and targeted wake-ups replacing the reference loop's wake-all:
//!
//! * **ELSC-S / MEM-S**: the recorded grant order names exactly one eligible
//!   next acquirer per lock, so a release wakes only that thread;
//! * **SYNC-S**: the ticket order names the one thread whose turn arrived;
//! * **ORIG-S**: all waiters of the released lock race; the ready heap's
//!   `(clock, thread-id)` order picks the same winner the reference scan
//!   would;
//! * **MEM-S** memory ordering: completing access `k` wakes only the owner
//!   of access `k + 1`.

use std::collections::{BTreeMap, BTreeSet};

use perfplay_trace::{Event, LockId, Time, Trace};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::common::{EventRef, ReplayConfig};
use crate::engine::{Engine, EngineCore, ReplayPolicy, Status, Step, WaitChannel};
use crate::reference::{elsc_order_of, mem_order_of, sync_order_of};
use crate::result::{ReplayError, ReplayResult};
use crate::schedule::{ReplaySchedule, ScheduleKind};

/// Replays original (untransformed) traces.
#[derive(Debug, Clone, Default)]
pub struct Replayer {
    config: ReplayConfig,
}

impl Replayer {
    /// Creates a replayer with the default cost model.
    pub fn new(config: ReplayConfig) -> Self {
        Replayer { config }
    }

    /// Replays the trace once under the given schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::Stuck`] if the trace and schedule are mutually
    /// inconsistent, or [`ReplayError::StepLimitExceeded`] for runaway
    /// replays.
    pub fn replay(
        &self,
        trace: &Trace,
        schedule: ReplaySchedule,
    ) -> Result<ReplayResult, ReplayError> {
        let policy = OriginalOrder::new(schedule, trace);
        Engine::new(&self.config, trace, policy).run()
    }
}

/// Admission rules of the four original-trace schedules.
pub(crate) struct OriginalOrder {
    schedule: ReplaySchedule,
    // Lock state.
    holder: BTreeMap<LockId, usize>,
    last_holder: BTreeMap<LockId, usize>,
    free_since: BTreeMap<LockId, Time>,
    // ELSC: per-lock recorded grant order and progress.
    elsc_order: BTreeMap<LockId, Vec<EventRef>>,
    elsc_next: BTreeMap<LockId, usize>,
    // SYNC-S: round-robin admission over (ordinal, thread) tickets.
    sync_order: BTreeMap<(usize, usize), usize>,
    /// Ticket position -> thread holding it, for targeted turn wake-ups.
    sync_owner: BTreeMap<usize, usize>,
    sync_next: usize,
    sync_completed: BTreeSet<usize>,
    sync_last_completion: Time,
    /// Thread allowed to bypass SYNC-S admission once, used to break the
    /// circular waits nested locks can create under a rigid ticket order.
    sync_bypass: Option<usize>,
    // MEM-S: global memory-access order, position per event and owner
    // thread per position.
    mem_order: BTreeMap<EventRef, usize>,
    mem_owner: Vec<usize>,
    mem_next: usize,
    mem_last_completion: Time,
    /// Per-thread count of completed acquisitions (SYNC-S ticket ordinal).
    acquires_done: Vec<usize>,
    rng: ChaCha8Rng,
}

impl OriginalOrder {
    pub(crate) fn new(schedule: ReplaySchedule, trace: &Trace) -> Self {
        let sync_order = sync_order_of(trace);
        let sync_owner = sync_order
            .iter()
            .map(|(&(_, ti), &pos)| (pos, ti))
            .collect();
        let mem_refs = mem_order_of(trace);
        let mem_owner: Vec<usize> = mem_refs.iter().map(|r| r.0).collect();
        let mem_order = mem_refs
            .into_iter()
            .enumerate()
            .map(|(pos, r)| (r, pos))
            .collect();
        OriginalOrder {
            schedule,
            holder: BTreeMap::new(),
            last_holder: BTreeMap::new(),
            free_since: BTreeMap::new(),
            elsc_order: elsc_order_of(trace),
            elsc_next: BTreeMap::new(),
            sync_order,
            sync_owner,
            sync_next: 0,
            sync_completed: BTreeSet::new(),
            sync_last_completion: Time::ZERO,
            sync_bypass: None,
            mem_order,
            mem_owner,
            mem_next: 0,
            mem_last_completion: Time::ZERO,
            acquires_done: vec![0; trace.num_threads()],
            rng: ChaCha8Rng::seed_from_u64(schedule.seed),
        }
    }

    /// The thread the ELSC/MEM-S grant order expects next on this lock, if
    /// the recorded order still has entries.
    fn expected_acquirer(&self, lock: LockId) -> Option<usize> {
        let order = self.elsc_order.get(&lock)?;
        let next = self.elsc_next.get(&lock).copied().unwrap_or(0);
        order.get(next).map(|&(ti, _)| ti)
    }
}

impl ReplayPolicy for OriginalOrder {
    fn on_memory(&mut self, core: &mut EngineCore, ti: usize, idx: usize) -> Step {
        let clock = core.threads[ti].clock;
        let cost = core.config.mem_access_cost;
        if self.schedule.kind != ScheduleKind::MemS {
            core.threads[ti].timing.busy += cost;
            core.complete(ti, idx, clock + cost);
            return Step::Completed;
        }
        match self.mem_order.get(&(ti, idx)) {
            Some(&pos) if pos != self.mem_next => {
                // Woken when the order reaches this position: each completed
                // access wakes the owner of the next one.
                core.block_on(ti, []);
                return Step::Blocked;
            }
            _ => {}
        }
        let cost = cost + core.config.mem_order_overhead;
        let start = clock.max(self.mem_last_completion);
        core.threads[ti].timing.sync_wait += start - clock;
        core.threads[ti].timing.busy += cost;
        let completion = start + cost;
        self.mem_last_completion = completion;
        self.mem_next += 1;
        core.complete(ti, idx, completion);
        if let Some(&owner) = self.mem_owner.get(self.mem_next) {
            core.wake(owner);
        }
        Step::Completed
    }

    fn on_acquire(&mut self, core: &mut EngineCore, ti: usize, idx: usize, lock: LockId) -> Step {
        let clock = core.threads[ti].clock;
        let first_attempt = core.threads[ti].request_time.is_none();
        if first_attempt {
            core.threads[ti].request_time = Some(clock);
        }

        // Recorded partial order for condition-variable wake-ups. When the
        // dependency is unmet the dep watcher delivers the wake.
        let Ok(dep_time) = core.wake_dep_time(ti, idx) else {
            core.block_on(ti, []);
            return Step::Blocked;
        };

        // Schedule admission. MEM-S enforces the recorded order of *all*
        // shared accesses, which subsumes the lock acquisitions themselves,
        // so it reuses the per-lock recorded grant order like ELSC-S does.
        let mut admission_time = Time::ZERO;
        let mut sync_pos = None;
        match self.schedule.kind {
            ScheduleKind::ElscS | ScheduleKind::MemS => {
                if let Some(order) = self.elsc_order.get(&lock) {
                    let next = self.elsc_next.get(&lock).copied().unwrap_or(0);
                    if let Some(&expected) = order.get(next) {
                        if expected != (ti, idx) {
                            // Woken when our grant comes up: each release of
                            // this lock wakes the then-expected acquirer
                            // directly. The channel registration covers the
                            // tail case where the recorded order runs out
                            // before reaching us (hand-built or truncated
                            // traces): the release that exhausts the order
                            // notifies the channel instead.
                            core.block_on(ti, [WaitChannel::Lock(lock)]);
                            return Step::Blocked;
                        }
                    }
                }
            }
            ScheduleKind::SyncS => {
                let ticket = (self.acquires_done[ti], ti);
                if let Some(&pos) = self.sync_order.get(&ticket) {
                    if pos != self.sync_next && self.sync_bypass != Some(ti) {
                        // Woken when the turn order reaches this ticket.
                        core.block_on(ti, []);
                        return Step::Blocked;
                    }
                    admission_time = self.sync_last_completion + core.config.sync_turn_overhead;
                    sync_pos = Some(pos);
                }
            }
            ScheduleKind::OrigS => {}
        }

        // Lock availability.
        if matches!(self.holder.get(&lock), Some(h) if *h != ti) {
            if self.schedule.kind == ScheduleKind::OrigS
                && !self.schedule.jitter.is_zero()
                && first_attempt
            {
                // OS scheduling noise: a blocked thread wakes up a little
                // late, which perturbs who wins the next grant. Drawn once
                // per blocking episode so retries stay pure.
                let jitter = self.rng.gen_range(0..=self.schedule.jitter.as_nanos());
                core.threads[ti].clock = clock + Time::from_nanos(jitter);
            }
            core.block_on(ti, [WaitChannel::Lock(lock)]);
            return Step::Blocked;
        }

        let free_since = self.free_since.get(&lock).copied().unwrap_or(Time::ZERO);
        let start = clock.max(free_since).max(dep_time).max(admission_time);
        let handoff = match self.last_holder.get(&lock) {
            Some(last) if *last != ti => core.config.lock_handoff_cost,
            _ => Time::ZERO,
        };
        let noise = if self.schedule.kind == ScheduleKind::OrigS && !self.schedule.jitter.is_zero()
        {
            Time::from_nanos(self.rng.gen_range(0..=self.schedule.jitter.as_nanos() / 16))
        } else {
            Time::ZERO
        };
        let completion = start + core.config.lock_acquire_cost + handoff + noise;

        let requested = core.threads[ti].request_time.unwrap_or(clock);
        core.threads[ti].timing.lock_wait += start.saturating_sub(requested);
        core.threads[ti].timing.busy += core.config.lock_acquire_cost;

        self.holder.insert(lock, ti);
        self.last_holder.insert(lock, ti);
        match self.schedule.kind {
            ScheduleKind::ElscS | ScheduleKind::MemS => {
                *self.elsc_next.entry(lock).or_insert(0) += 1;
            }
            ScheduleKind::SyncS => {
                if let Some(pos) = sync_pos {
                    self.sync_completed.insert(pos);
                    while self.sync_completed.contains(&self.sync_next) {
                        self.sync_next += 1;
                    }
                }
                self.sync_bypass = None;
                self.sync_last_completion = completion;
                // The turn advanced: wake the thread holding the new ticket.
                if let Some(&owner) = self.sync_owner.get(&self.sync_next) {
                    core.wake(owner);
                }
            }
            ScheduleKind::OrigS => {}
        }
        self.acquires_done[ti] += 1;
        core.complete(ti, idx, completion);
        Step::Completed
    }

    fn on_release(&mut self, core: &mut EngineCore, ti: usize, idx: usize, lock: LockId) -> Step {
        let clock = core.threads[ti].clock;
        let cost = core.config.lock_release_cost;
        let completion = clock + cost;
        core.threads[ti].timing.busy += cost;
        self.holder.remove(&lock);
        self.last_holder.insert(lock, ti);
        self.free_since.insert(lock, completion);
        core.complete(ti, idx, completion);
        // The lock is free: under the ordered schedules only the recorded /
        // ticketed next acquirer can take it, so wake exactly that thread;
        // under ORIG-S every waiter races and the ready heap arbitrates.
        match self.schedule.kind {
            ScheduleKind::ElscS | ScheduleKind::MemS => {
                // While the recorded order has entries, only its expected
                // next acquirer can pass admission — wake exactly that
                // thread. Once the order is exhausted (or the lock never
                // appeared in it), admission no longer constrains anyone, so
                // fall back to waking every channel waiter.
                match self.expected_acquirer(lock) {
                    Some(owner) => core.wake(owner),
                    None => core.notify(WaitChannel::Lock(lock)),
                }
            }
            ScheduleKind::SyncS => {
                if let Some(&owner) = self.sync_owner.get(&self.sync_next) {
                    core.wake(owner);
                }
                core.notify(WaitChannel::Lock(lock));
            }
            ScheduleKind::OrigS => core.notify(WaitChannel::Lock(lock)),
        }
        Step::Completed
    }

    fn rescue(&mut self, core: &EngineCore) -> Option<usize> {
        // Under SYNC-S, nested locks can deadlock a rigid ticket order (the
        // next-ticket thread waits for a lock whose holder waits for its own
        // ticket). Let the blocked thread whose next acquire targets a
        // *free* lock bypass admission once.
        if self.schedule.kind != ScheduleKind::SyncS || self.sync_bypass.is_some() {
            return None;
        }
        let candidate = core
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Blocked)
            .filter(|(ti, t)| {
                let events = &core.trace.threads[*ti].events;
                match events.get(t.idx).map(|te| &te.event) {
                    Some(Event::LockAcquire { lock, .. }) => {
                        !matches!(self.holder.get(lock), Some(h) if h != ti)
                    }
                    _ => false,
                }
            })
            .min_by_key(|(ti, _)| {
                self.sync_order
                    .get(&(self.acquires_done[*ti], *ti))
                    .copied()
                    .unwrap_or(usize::MAX)
            })
            .map(|(ti, _)| ti)?;
        self.sync_bypass = Some(candidate);
        Some(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_program::ProgramBuilder;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;

    fn contended_trace(threads: usize, iters: u32) -> Trace {
        let mut b = ProgramBuilder::new("replay-test");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("r.c", "work", 1);
        for i in 0..threads {
            b.thread(format!("t{i}"), |t| {
                t.loop_n(iters, |l| {
                    l.locked(lock, site, |cs| {
                        cs.read(x);
                        cs.compute_ns(400);
                    });
                    l.compute_ns(300);
                });
            });
        }
        Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace
    }

    #[test]
    fn elsc_replay_matches_recorded_total_time() {
        let trace = contended_trace(3, 8);
        let result = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        let recorded = trace.total_time.as_nanos() as f64;
        let replayed = result.total_time.as_nanos() as f64;
        let relative_error = (replayed - recorded).abs() / recorded;
        assert!(
            relative_error < 0.02,
            "ELSC replay {replayed}ns differs from recorded {recorded}ns by {relative_error}"
        );
    }

    #[test]
    fn elsc_replay_is_deterministic() {
        let trace = contended_trace(4, 6);
        let r1 = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        let r2 = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn orig_replay_varies_with_seed_but_stays_close_to_recorded() {
        let trace = contended_trace(4, 10);
        let times: Vec<Time> = (0..6)
            .map(|seed| {
                Replayer::default()
                    .replay(&trace, ReplaySchedule::orig(seed))
                    .unwrap()
                    .total_time
            })
            .collect();
        let min = times.iter().min().unwrap().as_nanos();
        let max = times.iter().max().unwrap().as_nanos();
        assert!(max > min, "ORIG-S should show run-to-run variation");
        // But the mean stays within 20% of the recorded execution.
        let mean: f64 = times.iter().map(|t| t.as_nanos() as f64).sum::<f64>() / times.len() as f64;
        let recorded = trace.total_time.as_nanos() as f64;
        assert!((mean - recorded).abs() / recorded < 0.2);
    }

    #[test]
    fn sync_replay_is_deterministic_and_not_faster_than_elsc() {
        let trace = contended_trace(4, 8);
        let sync1 = Replayer::default()
            .replay(&trace, ReplaySchedule::sync())
            .unwrap();
        let sync2 = Replayer::default()
            .replay(&trace, ReplaySchedule::sync())
            .unwrap();
        assert_eq!(sync1, sync2);
        let elsc = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        assert!(sync1.total_time >= elsc.total_time);
    }

    #[test]
    fn mem_replay_is_much_slower_than_elsc() {
        let mut b = ProgramBuilder::new("mem-heavy");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("m.c", "work", 1);
        for i in 0..4 {
            b.thread(format!("t{i}"), |t| {
                // One lock acquisition, then memory-access-dominated work
                // that would otherwise run fully in parallel.
                t.locked(lock, site, |cs| {
                    cs.read(x);
                });
                t.loop_n(60, |l| {
                    l.read(x);
                    l.read(x);
                    l.read(x);
                    l.read(x);
                });
            });
        }
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        let elsc = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        let mem = Replayer::default()
            .replay(&trace, ReplaySchedule::mem())
            .unwrap();
        assert!(
            mem.total_time.as_nanos() as f64 > 1.5 * elsc.total_time.as_nanos() as f64,
            "MEM-S {:?} should be much slower than ELSC-S {:?}",
            mem.total_time,
            elsc.total_time
        );
        assert!(mem.per_thread.iter().any(|t| t.sync_wait > Time::ZERO));
    }

    #[test]
    fn event_times_are_monotone_per_thread() {
        let trace = contended_trace(2, 5);
        let result = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        for times in &result.event_times {
            for pair in times.windows(2) {
                assert!(pair[0] <= pair[1]);
            }
        }
        assert_eq!(result.event_times.len(), trace.num_threads());
    }

    #[test]
    fn condvar_trace_replays_without_getting_stuck() {
        let mut b = ProgramBuilder::new("cv-replay");
        let lock = b.lock("m");
        let cv = b.condvar("cv");
        let flag = b.shared("flag", 0);
        let site_w = b.site("cv.c", "waiter", 1);
        let site_s = b.site("cv.c", "signaller", 2);
        b.thread("waiter", |t| {
            t.locked(lock, site_w, |cs| {
                cs.cond_wait(cv, lock);
                cs.read(flag);
            });
        });
        b.thread("signaller", |t| {
            t.compute_us(5);
            t.locked(lock, site_s, |cs| {
                cs.write_set(flag, 1);
                cs.cond_signal(cv);
            });
        });
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        for schedule in [
            ReplaySchedule::elsc(),
            ReplaySchedule::orig(3),
            ReplaySchedule::sync(),
            ReplaySchedule::mem(),
        ] {
            let result = Replayer::default().replay(&trace, schedule).unwrap();
            // The waiter cannot finish before the signaller signalled (~5us in).
            assert!(result.per_thread[0].finish_time >= Time::from_micros(5));
        }
    }

    #[test]
    fn barrier_trace_replays_with_synchronized_release() {
        let mut b = ProgramBuilder::new("barrier-replay");
        let bar = b.barrier("sync", 3);
        for i in 0..3u32 {
            let pre = u64::from(i + 1) * 10;
            b.thread(format!("t{i}"), move |t| {
                t.compute_us(pre);
                t.barrier(bar);
                t.compute_us(1);
            });
        }
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        let result = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        for t in &result.per_thread {
            assert!(t.finish_time >= Time::from_micros(31));
        }
        assert!(result.per_thread[0].sync_wait >= Time::from_micros(19));
    }

    #[test]
    fn lock_wait_appears_under_contention() {
        let trace = contended_trace(2, 4);
        let result = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        assert!(result.total_lock_wait() > Time::ZERO);
        assert_eq!(result.lockset_ops, 0);
    }
}
