//! Machinery shared by the original-trace and ULCP-free replayers: the cost
//! model, cross-thread event dependencies (condition variables, barriers) and
//! section lookup tables.

use std::collections::BTreeMap;

use perfplay_trace::{CriticalSection, Event, SectionId, Time, Trace};

/// Cost model used by the replayers. The lock/memory costs mirror the
/// simulator's recording-time model so that an ELSC replay of an unmodified
/// trace lands on the recorded execution time; the lockset costs price the
/// auxiliary synchronization the ULCP transformation introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Cost of acquiring a free lock.
    pub lock_acquire_cost: Time,
    /// Cost of releasing a lock.
    pub lock_release_cost: Time,
    /// Extra latency when a lock moves between threads.
    pub lock_handoff_cost: Time,
    /// Cost of one shared-memory access.
    pub mem_access_cost: Time,
    /// Cost of a condition-variable signal.
    pub cond_signal_cost: Time,
    /// Cost charged when a barrier releases.
    pub barrier_release_cost: Time,
    /// Cost of maintaining one lockset entry (acquire or release of one
    /// auxiliary lock, RULE 3/4).
    pub lockset_op_cost: Time,
    /// Cost of one dynamic-locking-strategy END-flag check (Figure 9).
    pub dls_check_cost: Time,
    /// Extra per-access instrumentation cost charged under MEM-S, modelling
    /// the shadow bookkeeping PinPlay/CoreDet-style tools pay to order every
    /// shared access (the 2×–20× slowdowns the paper cites).
    pub mem_order_overhead: Time,
    /// Per-acquisition wait charged under SYNC-S for its deterministic turn,
    /// modelling Kendo's logical-clock catch-up delay (Figure 12).
    pub sync_turn_overhead: Time,
    /// Hard cap on replay steps.
    pub max_steps: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            lock_acquire_cost: Time::from_nanos(25),
            lock_release_cost: Time::from_nanos(15),
            lock_handoff_cost: Time::from_nanos(60),
            mem_access_cost: Time::from_nanos(8),
            cond_signal_cost: Time::from_nanos(30),
            barrier_release_cost: Time::from_nanos(40),
            lockset_op_cost: Time::from_nanos(18),
            dls_check_cost: Time::from_nanos(3),
            mem_order_overhead: Time::from_nanos(150),
            sync_turn_overhead: Time::from_nanos(150),
            max_steps: 100_000_000,
        }
    }
}

/// An event position within a trace.
pub(crate) type EventRef = (usize, usize); // (thread index, event index)

/// Cross-thread dependencies derived from the recorded partial order of
/// non-mutex synchronization (Section 5.1: "for non-mutual exclusive
/// semaphores, PerfPlay only ensures the correctness of the partial order").
#[derive(Debug, Default, Clone)]
pub(crate) struct SyncDeps {
    /// For the first lock re-acquisition after a `CondWait`: the signal event
    /// it must wait for.
    pub wake_deps: BTreeMap<EventRef, EventRef>,
    /// Barrier groups: every `BarrierWait` event maps to the group of events
    /// (including itself) that must all arrive before any of them completes.
    pub barrier_groups: BTreeMap<EventRef, Vec<EventRef>>,
}

/// Builds the cross-thread dependency table for a trace.
pub(crate) fn build_sync_deps(trace: &Trace) -> SyncDeps {
    let mut deps = SyncDeps::default();

    // Collect signals per condition variable, sorted by original time.
    let mut signals: BTreeMap<u32, Vec<(Time, EventRef)>> = BTreeMap::new();
    for (ti, tt) in trace.threads.iter().enumerate() {
        for (ei, te) in tt.events.iter().enumerate() {
            if let Event::CondSignal { cond, .. } = te.event {
                signals
                    .entry(cond.index() as u32)
                    .or_default()
                    .push((te.at, (ti, ei)));
            }
        }
    }
    for list in signals.values_mut() {
        list.sort();
    }

    // For every CondWait, the dependency attaches to the *re-acquisition*
    // (the next LockAcquire of the same lock in the same thread), because the
    // waiter releases the lock before the signaller can possibly run.
    for (ti, tt) in trace.threads.iter().enumerate() {
        for (ei, te) in tt.events.iter().enumerate() {
            if let Event::CondWait { cond, lock } = te.event {
                let reacquire = tt.events[ei + 1..].iter().position(
                    |later| matches!(later.event, Event::LockAcquire { lock: l, .. } if l == lock),
                );
                let Some(offset) = reacquire else { continue };
                let reacquire_index = ei + 1 + offset;
                if let Some(list) = signals.get(&(cond.index() as u32)) {
                    if let Some((_, sig)) = list.iter().find(|(at, _)| *at >= te.at) {
                        deps.wake_deps.insert((ti, reacquire_index), *sig);
                    }
                }
            }
        }
    }

    // Barrier groups: arrivals that share a barrier id and an original
    // release timestamp belong to the same crossing.
    let mut groups: BTreeMap<(u32, Time), Vec<EventRef>> = BTreeMap::new();
    for (ti, tt) in trace.threads.iter().enumerate() {
        for (ei, te) in tt.events.iter().enumerate() {
            if let Event::BarrierWait { barrier } = te.event {
                groups
                    .entry((barrier.index() as u32, te.at))
                    .or_default()
                    .push((ti, ei));
            }
        }
    }
    for group in groups.values() {
        for member in group {
            deps.barrier_groups.insert(*member, group.clone());
        }
    }
    deps
}

/// Lookup from lock acquire / release event positions to the critical
/// section they delimit.
#[derive(Debug, Default, Clone)]
pub(crate) struct SectionIndex {
    pub by_acquire: BTreeMap<EventRef, SectionId>,
    pub by_release: BTreeMap<EventRef, SectionId>,
}

/// Builds the event-to-section lookup for a set of extracted sections.
pub(crate) fn build_section_index(sections: &[CriticalSection]) -> SectionIndex {
    let mut index = SectionIndex::default();
    for s in sections {
        index
            .by_acquire
            .insert((s.thread.index(), s.acquire_index), s.id);
        index
            .by_release
            .insert((s.thread.index(), s.release_index), s.id);
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_program::ProgramBuilder;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;
    use perfplay_trace::extract_critical_sections;

    #[test]
    fn default_config_is_consistent_with_recording_model() {
        let rc = ReplayConfig::default();
        let sc = SimConfig::default();
        assert_eq!(rc.lock_acquire_cost, sc.lock_acquire_cost);
        assert_eq!(rc.lock_release_cost, sc.lock_release_cost);
        assert_eq!(rc.lock_handoff_cost, sc.lock_handoff_cost);
        assert_eq!(rc.mem_access_cost, sc.mem_access_cost);
        assert!(rc.lockset_op_cost > rc.dls_check_cost);
    }

    #[test]
    fn cond_wait_dependency_points_at_reacquisition_and_signal() {
        let mut b = ProgramBuilder::new("deps");
        let lock = b.lock("m");
        let cv = b.condvar("cv");
        let flag = b.shared("flag", 0);
        let site_w = b.site("d.c", "waiter", 1);
        let site_s = b.site("d.c", "signaller", 2);
        b.thread("waiter", |t| {
            t.locked(lock, site_w, |cs| {
                cs.cond_wait(cv, lock);
                cs.read(flag);
            });
        });
        b.thread("signaller", |t| {
            t.compute_us(3);
            t.locked(lock, site_s, |cs| {
                cs.write_set(flag, 1);
                cs.cond_signal(cv);
            });
        });
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        let deps = build_sync_deps(&trace);
        assert_eq!(deps.wake_deps.len(), 1);
        let (&(wti, wei), &(sti, sei)) = deps.wake_deps.iter().next().unwrap();
        assert_eq!(wti, 0);
        // The dependency target is the reacquisition (a LockAcquire event).
        assert!(trace.threads[wti].events[wei].event.is_acquire());
        // The dependency source is the signal on the other thread.
        assert!(matches!(
            trace.threads[sti].events[sei].event,
            Event::CondSignal { .. }
        ));
        assert!(deps.barrier_groups.is_empty());
    }

    #[test]
    fn barrier_groups_contain_all_participants() {
        let mut b = ProgramBuilder::new("bar-deps");
        let bar = b.barrier("sync", 3);
        for i in 0..3u32 {
            b.thread(format!("t{i}"), move |t| {
                t.compute_ns(u64::from(i + 1) * 100);
                t.barrier(bar);
            });
        }
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        let deps = build_sync_deps(&trace);
        assert_eq!(deps.barrier_groups.len(), 3);
        for group in deps.barrier_groups.values() {
            assert_eq!(group.len(), 3);
        }
    }

    #[test]
    fn section_index_maps_acquires_and_releases() {
        let mut b = ProgramBuilder::new("index");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("i.c", "f", 1);
        b.thread("t", |t| {
            t.loop_n(3, |l| {
                l.locked(lock, site, |cs| {
                    cs.read(x);
                });
            });
        });
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        let sections = extract_critical_sections(&trace);
        let index = build_section_index(&sections);
        assert_eq!(index.by_acquire.len(), 3);
        assert_eq!(index.by_release.len(), 3);
        for s in &sections {
            assert_eq!(index.by_acquire[&(s.thread.index(), s.acquire_index)], s.id);
            assert_eq!(index.by_release[&(s.thread.index(), s.release_index)], s.id);
        }
    }
}
