//! Replay schedules: the four execution-enforcement schemes compared in
//! Section 6.2 / Figure 13 of the paper.

use perfplay_trace::Time;

/// Which events the replay scheduler constrains, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// Free-running parallel replay with no enforcement (ORIG-S). Lock grant
    /// order follows request order with randomized scheduling noise, so
    /// repeated replays of the same trace may differ.
    OrigS,
    /// Enforced locking serialization constraint (ELSC-S, the paper's
    /// scheme): lock acquisitions are granted in exactly the order recorded
    /// at runtime, nothing else is constrained.
    ElscS,
    /// Kendo-style synchronization-based determinism (SYNC-S): lock
    /// acquisitions follow a deterministic order derived from the input
    /// (round-robin over per-thread acquisition counts), independent of the
    /// recorded schedule.
    SyncS,
    /// Memory-based determinism (MEM-S, PinPlay/CoreDet style): every shared
    /// memory access is additionally forced into the recorded global order.
    MemS,
}

impl ScheduleKind {
    /// All kinds in the order Figure 13 plots them.
    pub const ALL: [ScheduleKind; 4] = [
        ScheduleKind::MemS,
        ScheduleKind::SyncS,
        ScheduleKind::ElscS,
        ScheduleKind::OrigS,
    ];

    /// Human-readable name used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ScheduleKind::OrigS => "ORIG-S",
            ScheduleKind::ElscS => "ELSC-S",
            ScheduleKind::SyncS => "SYNC-S",
            ScheduleKind::MemS => "MEM-S",
        }
    }

    /// Whether repeated replays under this schedule are deterministic.
    pub fn is_deterministic(self) -> bool {
        !matches!(self, ScheduleKind::OrigS)
    }
}

impl std::fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A concrete replay schedule: the enforcement scheme plus the noise seed
/// used by the free-running scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySchedule {
    /// Enforcement scheme.
    pub kind: ScheduleKind,
    /// Seed for scheduling noise (only ORIG-S uses it).
    pub seed: u64,
    /// Magnitude of the scheduling noise applied to lock requests under
    /// ORIG-S, modelling OS scheduling nondeterminism on real hardware.
    pub jitter: Time,
}

impl ReplaySchedule {
    /// Free-running replay with the given noise seed.
    pub fn orig(seed: u64) -> Self {
        ReplaySchedule {
            kind: ScheduleKind::OrigS,
            seed,
            jitter: Time::from_nanos(300),
        }
    }

    /// The paper's ELSC schedule.
    pub fn elsc() -> Self {
        ReplaySchedule {
            kind: ScheduleKind::ElscS,
            seed: 0,
            jitter: Time::ZERO,
        }
    }

    /// Kendo-style deterministic lock order.
    pub fn sync() -> Self {
        ReplaySchedule {
            kind: ScheduleKind::SyncS,
            seed: 0,
            jitter: Time::ZERO,
        }
    }

    /// Memory-access-order determinism.
    pub fn mem() -> Self {
        ReplaySchedule {
            kind: ScheduleKind::MemS,
            seed: 0,
            jitter: Time::ZERO,
        }
    }

    /// The canonical schedule for an enforcement scheme: the deterministic
    /// schemes with their fixed shapes, ORIG-S with noise seed 1. The one
    /// mapping both pipeline orchestrators (`perfplay::PerfPlay` and the
    /// single-pass `analyze_plan`) share, so a configured [`ScheduleKind`]
    /// replays identically through either.
    pub fn for_kind(kind: ScheduleKind) -> Self {
        match kind {
            ScheduleKind::OrigS => ReplaySchedule::orig(1),
            ScheduleKind::ElscS => ReplaySchedule::elsc(),
            ScheduleKind::SyncS => ReplaySchedule::sync(),
            ScheduleKind::MemS => ReplaySchedule::mem(),
        }
    }

    /// Returns a copy with a different jitter magnitude.
    pub fn with_jitter(mut self, jitter: Time) -> Self {
        self.jitter = jitter;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_determinism() {
        assert_eq!(ScheduleKind::ElscS.label(), "ELSC-S");
        assert_eq!(ScheduleKind::OrigS.to_string(), "ORIG-S");
        assert!(ScheduleKind::ElscS.is_deterministic());
        assert!(ScheduleKind::SyncS.is_deterministic());
        assert!(ScheduleKind::MemS.is_deterministic());
        assert!(!ScheduleKind::OrigS.is_deterministic());
        assert_eq!(ScheduleKind::ALL.len(), 4);
    }

    #[test]
    fn constructors_set_expected_kinds() {
        assert_eq!(ReplaySchedule::orig(5).kind, ScheduleKind::OrigS);
        assert_eq!(ReplaySchedule::orig(5).seed, 5);
        assert!(ReplaySchedule::orig(5).jitter > Time::ZERO);
        assert_eq!(ReplaySchedule::elsc().kind, ScheduleKind::ElscS);
        assert_eq!(ReplaySchedule::sync().kind, ScheduleKind::SyncS);
        assert_eq!(ReplaySchedule::mem().kind, ScheduleKind::MemS);
        let custom = ReplaySchedule::orig(1).with_jitter(Time::from_nanos(10));
        assert_eq!(custom.jitter, Time::from_nanos(10));
    }
}
