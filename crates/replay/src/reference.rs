//! The naive replay loops kept as executable specifications.
//!
//! These are the historical implementations of [`Replayer::replay`] and
//! [`UlcpFreeReplayer::replay`]: every step scans all `T` threads to find the
//! next runnable one (`O(T)` per step) and every completion wakes every
//! blocked thread, so each grant costs `O(T^2)` scheduler work under
//! contention. The unified engine in [`engine`](crate::engine) must produce
//! bit-identical [`ReplayResult`]s — the property suite and the
//! `replay_scaling` benchmark both compare against these functions.
//!
//! The only semantic pin applied to the historical code: under ORIG-S the
//! scheduling-noise jitter is drawn once per blocking episode (on the first
//! blocked attempt of an acquisition), not once per retry. Retries are pure,
//! so the RNG stream no longer depends on how often a blocked thread is
//! woken — the property that makes an indexed ready set able to reproduce
//! the reference bit-for-bit.
//!
//! Note that `max_steps` here counts every loop iteration, including the
//! blocked retries wake-all causes; the engine only counts productive steps.
//! Equivalence therefore covers successful replays and `Stuck` errors, not
//! the exact point at which an undersized step limit trips.
//!
//! [`Replayer::replay`]: crate::Replayer::replay
//! [`UlcpFreeReplayer::replay`]: crate::UlcpFreeReplayer::replay

use std::collections::{BTreeMap, BTreeSet};

use perfplay_trace::{AuxLockId, Event, LockId, SectionId, Time, Trace};
use perfplay_transform::{dynamic_lockset, TransformedTrace};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::common::{
    build_section_index, build_sync_deps, EventRef, ReplayConfig, SectionIndex, SyncDeps,
};
use crate::result::{ReplayError, ReplayResult, ThreadCursor, ThreadReplayTiming};
use crate::schedule::{ReplaySchedule, ScheduleKind};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Blocked,
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    idx: usize,
    clock: Time,
    status: Status,
    timing: ThreadReplayTiming,
    request_time: Option<Time>,
    acquires_done: usize,
}

enum Outcome {
    Completed,
    Blocked,
    Finished,
}

fn cursors(threads: &[ThreadState], trace: &Trace, only_unfinished: bool) -> Vec<ThreadCursor> {
    threads
        .iter()
        .enumerate()
        .filter(|(_, t)| !only_unfinished || t.status != Status::Finished)
        .map(|(i, t)| ThreadCursor {
            thread: trace.threads[i].thread,
            next_event: t.idx,
            total_events: trace.threads[i].events.len(),
        })
        .collect()
}

/// Replays an original trace with the naive scan-and-wake-all loop.
///
/// # Errors
///
/// Returns [`ReplayError::Stuck`] if the trace and schedule are mutually
/// inconsistent, or [`ReplayError::StepLimitExceeded`] for runaway replays.
pub fn reference_replay_original(
    config: &ReplayConfig,
    trace: &Trace,
    schedule: ReplaySchedule,
) -> Result<ReplayResult, ReplayError> {
    RefOriginal::new(config, schedule, trace).run()
}

struct RefOriginal<'a> {
    config: ReplayConfig,
    schedule: ReplaySchedule,
    trace: &'a Trace,
    deps: SyncDeps,
    threads: Vec<ThreadState>,
    event_times: Vec<Vec<Time>>,
    // Lock state.
    holder: BTreeMap<LockId, Option<usize>>,
    last_holder: BTreeMap<LockId, usize>,
    free_since: BTreeMap<LockId, Time>,
    // ELSC: per-lock recorded grant order and progress.
    elsc_order: BTreeMap<LockId, Vec<EventRef>>,
    elsc_next: BTreeMap<LockId, usize>,
    // SYNC-S: round-robin admission over (ordinal, thread) tickets.
    sync_order: BTreeMap<(usize, usize), usize>,
    sync_next: usize,
    sync_completed: BTreeSet<usize>,
    sync_last_completion: Time,
    /// Thread allowed to bypass SYNC-S admission once, used to break the
    /// circular waits nested locks can create under a rigid ticket order.
    sync_bypass: Option<usize>,
    // MEM-S: global memory-access order.
    mem_order: BTreeMap<EventRef, usize>,
    mem_next: usize,
    mem_last_completion: Time,
    // Barrier arrivals.
    barrier_arrivals: BTreeMap<EventRef, Time>,
    rng: ChaCha8Rng,
}

/// ELSC: projects the recorded total grant order onto each lock.
pub(crate) fn elsc_order_of(trace: &Trace) -> BTreeMap<LockId, Vec<EventRef>> {
    let mut elsc_order: BTreeMap<LockId, Vec<EventRef>> = BTreeMap::new();
    let mut schedule_entries = trace.lock_schedule.clone();
    schedule_entries.sort_by_key(|g| g.seq);
    for g in &schedule_entries {
        elsc_order
            .entry(g.lock)
            .or_default()
            .push((g.thread.index(), g.event_index));
    }
    elsc_order
}

/// SYNC-S: deterministic round-robin ticket order over per-thread
/// acquisition ordinals, derived from the input alone.
pub(crate) fn sync_order_of(trace: &Trace) -> BTreeMap<(usize, usize), usize> {
    let mut sync_order = BTreeMap::new();
    let acq_counts: Vec<usize> = trace
        .threads
        .iter()
        .map(|t| t.acquisition_count())
        .collect();
    let max = acq_counts.iter().copied().max().unwrap_or(0);
    let mut position = 0usize;
    for ordinal in 0..max {
        for (ti, count) in acq_counts.iter().enumerate() {
            if ordinal < *count {
                sync_order.insert((ordinal, ti), position);
                position += 1;
            }
        }
    }
    sync_order
}

/// MEM-S: global order of all shared-memory accesses by recorded time.
pub(crate) fn mem_order_of(trace: &Trace) -> Vec<EventRef> {
    let mut mem_events: Vec<(Time, EventRef)> = Vec::new();
    for (ti, tt) in trace.threads.iter().enumerate() {
        for (ei, te) in tt.events.iter().enumerate() {
            if te.event.is_memory_access() {
                mem_events.push((te.at, (ti, ei)));
            }
        }
    }
    mem_events.sort_by_key(|(at, (ti, ei))| (*at, *ti, *ei));
    mem_events.into_iter().map(|(_, r)| r).collect()
}

impl<'a> RefOriginal<'a> {
    fn new(config: &ReplayConfig, schedule: ReplaySchedule, trace: &'a Trace) -> Self {
        let deps = build_sync_deps(trace);
        let mem_order = mem_order_of(trace)
            .into_iter()
            .enumerate()
            .map(|(pos, r)| (r, pos))
            .collect();

        RefOriginal {
            config: *config,
            schedule,
            trace,
            deps,
            threads: trace
                .threads
                .iter()
                .map(|_| ThreadState {
                    idx: 0,
                    clock: Time::ZERO,
                    status: Status::Ready,
                    timing: ThreadReplayTiming::default(),
                    request_time: None,
                    acquires_done: 0,
                })
                .collect(),
            event_times: trace
                .threads
                .iter()
                .map(|t| vec![Time::ZERO; t.events.len()])
                .collect(),
            holder: BTreeMap::new(),
            last_holder: BTreeMap::new(),
            free_since: BTreeMap::new(),
            elsc_order: elsc_order_of(trace),
            elsc_next: BTreeMap::new(),
            sync_order: sync_order_of(trace),
            sync_next: 0,
            sync_completed: BTreeSet::new(),
            sync_last_completion: Time::ZERO,
            sync_bypass: None,
            mem_order,
            mem_next: 0,
            mem_last_completion: Time::ZERO,
            barrier_arrivals: BTreeMap::new(),
            rng: ChaCha8Rng::seed_from_u64(schedule.seed),
        }
    }

    fn run(mut self) -> Result<ReplayResult, ReplayError> {
        let mut steps: u64 = 0;
        loop {
            steps += 1;
            if steps > self.config.max_steps {
                return Err(ReplayError::StepLimitExceeded {
                    limit: self.config.max_steps,
                    cursors: cursors(&self.threads, self.trace, false),
                });
            }
            let next = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Ready)
                .min_by_key(|(i, t)| (t.clock, *i))
                .map(|(i, _)| i);
            let Some(ti) = next else {
                if self.threads.iter().all(|t| t.status == Status::Finished) {
                    break;
                }
                // Under SYNC-S, nested locks can deadlock a rigid ticket
                // order (the next-ticket thread waits for a lock whose holder
                // waits for its own ticket). Let the blocked thread whose
                // next acquire targets a *free* lock bypass admission once.
                if self.schedule.kind == ScheduleKind::SyncS && self.sync_bypass.is_none() {
                    if let Some(candidate) = self.find_sync_bypass_candidate() {
                        self.sync_bypass = Some(candidate);
                        self.threads[candidate].status = Status::Ready;
                        continue;
                    }
                }
                return Err(ReplayError::Stuck {
                    cursors: cursors(&self.threads, self.trace, true),
                });
            };
            match self.try_event(ti) {
                Outcome::Completed => self.wake_all(),
                Outcome::Blocked => {
                    self.threads[ti].status = Status::Blocked;
                }
                Outcome::Finished => {
                    self.threads[ti].status = Status::Finished;
                    self.threads[ti].timing.finish_time = self.threads[ti].clock;
                    self.wake_all();
                }
            }
        }
        let total_time = self
            .threads
            .iter()
            .map(|t| t.timing.finish_time)
            .max()
            .unwrap_or(Time::ZERO);
        Ok(ReplayResult {
            total_time,
            per_thread: self.threads.iter().map(|t| t.timing).collect(),
            event_times: self.event_times,
            lockset_ops: 0,
            lockset_overhead: Time::ZERO,
        })
    }

    fn wake_all(&mut self) {
        for t in &mut self.threads {
            if t.status == Status::Blocked {
                t.status = Status::Ready;
            }
        }
    }

    /// Among blocked threads, finds one whose next event is a lock
    /// acquisition of a currently-free lock (so only admission stops it).
    fn find_sync_bypass_candidate(&self) -> Option<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Blocked)
            .filter(|(ti, t)| {
                let events = &self.trace.threads[*ti].events;
                match events.get(t.idx).map(|te| &te.event) {
                    Some(Event::LockAcquire { lock, .. }) => {
                        !matches!(self.holder.get(lock), Some(Some(h)) if h != ti)
                    }
                    _ => false,
                }
            })
            .min_by_key(|(ti, t)| {
                self.sync_order
                    .get(&(t.acquires_done, *ti))
                    .copied()
                    .unwrap_or(usize::MAX)
            })
            .map(|(ti, _)| ti)
    }

    fn complete(&mut self, ti: usize, idx: usize, completion: Time) {
        self.event_times[ti][idx] = completion;
        self.threads[ti].clock = completion;
        self.threads[ti].idx = idx + 1;
        self.threads[ti].request_time = None;
    }

    fn try_event(&mut self, ti: usize) -> Outcome {
        let trace = self.trace;
        let events = &trace.threads[ti].events;
        let idx = self.threads[ti].idx;
        if idx >= events.len() {
            return Outcome::Finished;
        }
        let clock = self.threads[ti].clock;
        match events[idx].event {
            Event::Compute { cost }
            | Event::SkipRegion {
                saved_cost: cost, ..
            } => {
                self.threads[ti].timing.busy += cost;
                self.complete(ti, idx, clock + cost);
                Outcome::Completed
            }
            Event::Read { .. } | Event::Write { .. } => {
                let cost = self.config.mem_access_cost;
                if self.schedule.kind == ScheduleKind::MemS {
                    match self.mem_order.get(&(ti, idx)) {
                        Some(&pos) if pos != self.mem_next => return Outcome::Blocked,
                        _ => {}
                    }
                    let cost = cost + self.config.mem_order_overhead;
                    let start = clock.max(self.mem_last_completion);
                    self.threads[ti].timing.sync_wait += start - clock;
                    self.threads[ti].timing.busy += cost;
                    let completion = start + cost;
                    self.mem_last_completion = completion;
                    self.mem_next += 1;
                    self.complete(ti, idx, completion);
                } else {
                    self.threads[ti].timing.busy += cost;
                    self.complete(ti, idx, clock + cost);
                }
                Outcome::Completed
            }
            Event::LockAcquire { lock, .. } => self.try_acquire(ti, idx, lock),
            Event::LockRelease { lock } => {
                let cost = self.config.lock_release_cost;
                let completion = clock + cost;
                self.threads[ti].timing.busy += cost;
                self.holder.insert(lock, None);
                self.last_holder.insert(lock, ti);
                self.free_since.insert(lock, completion);
                self.complete(ti, idx, completion);
                Outcome::Completed
            }
            Event::CondWait { .. } | Event::Checkpoint { .. } | Event::ThreadExit => {
                self.complete(ti, idx, clock);
                Outcome::Completed
            }
            Event::CondSignal { .. } => {
                let cost = self.config.cond_signal_cost;
                self.threads[ti].timing.busy += cost;
                self.complete(ti, idx, clock + cost);
                Outcome::Completed
            }
            Event::BarrierWait { .. } => {
                self.barrier_arrivals.entry((ti, idx)).or_insert(clock);
                let Some(group) = self.deps.barrier_groups.get(&(ti, idx)) else {
                    self.complete(ti, idx, clock + self.config.barrier_release_cost);
                    return Outcome::Completed;
                };
                let arrivals: Vec<Time> = group
                    .iter()
                    .filter_map(|r| self.barrier_arrivals.get(r).copied())
                    .collect();
                if arrivals.len() < group.len() {
                    return Outcome::Blocked;
                }
                let release = arrivals.iter().copied().max().unwrap_or(clock)
                    + self.config.barrier_release_cost;
                self.threads[ti].timing.sync_wait += release - clock;
                self.complete(ti, idx, release);
                Outcome::Completed
            }
        }
    }

    fn try_acquire(&mut self, ti: usize, idx: usize, lock: LockId) -> Outcome {
        let clock = self.threads[ti].clock;
        let first_attempt = self.threads[ti].request_time.is_none();
        if first_attempt {
            self.threads[ti].request_time = Some(clock);
        }

        // Recorded partial order for condition-variable wake-ups.
        let mut dep_time = Time::ZERO;
        if let Some(dep) = self.deps.wake_deps.get(&(ti, idx)) {
            let (dti, dei) = *dep;
            if self.threads[dti].idx <= dei {
                return Outcome::Blocked;
            }
            dep_time = self.event_times[dti][dei];
        }

        // Schedule admission. MEM-S enforces the recorded order of *all*
        // shared accesses, which subsumes the lock acquisitions themselves,
        // so it reuses the per-lock recorded grant order like ELSC-S does.
        let mut admission_time = Time::ZERO;
        let mut sync_pos = None;
        match self.schedule.kind {
            ScheduleKind::ElscS | ScheduleKind::MemS => {
                if let Some(order) = self.elsc_order.get(&lock) {
                    let next = self.elsc_next.get(&lock).copied().unwrap_or(0);
                    if let Some(&expected) = order.get(next) {
                        if expected != (ti, idx) {
                            return Outcome::Blocked;
                        }
                    }
                }
            }
            ScheduleKind::SyncS => {
                let ticket = (self.threads[ti].acquires_done, ti);
                if let Some(&pos) = self.sync_order.get(&ticket) {
                    if pos != self.sync_next && self.sync_bypass != Some(ti) {
                        return Outcome::Blocked;
                    }
                    admission_time = self.sync_last_completion + self.config.sync_turn_overhead;
                    sync_pos = Some(pos);
                }
            }
            ScheduleKind::OrigS => {}
        }

        // Lock availability.
        if matches!(self.holder.get(&lock), Some(Some(h)) if *h != ti) {
            if self.schedule.kind == ScheduleKind::OrigS
                && !self.schedule.jitter.is_zero()
                && first_attempt
            {
                // OS scheduling noise: a blocked thread wakes up a little
                // late, which perturbs who wins the next grant. Drawn once
                // per blocking episode so retries stay pure.
                let jitter = self.rng.gen_range(0..=self.schedule.jitter.as_nanos());
                self.threads[ti].clock = clock + Time::from_nanos(jitter);
            }
            return Outcome::Blocked;
        }

        let free_since = self.free_since.get(&lock).copied().unwrap_or(Time::ZERO);
        let start = clock.max(free_since).max(dep_time).max(admission_time);
        let handoff = match self.last_holder.get(&lock) {
            Some(last) if *last != ti => self.config.lock_handoff_cost,
            None => Time::ZERO,
            _ => Time::ZERO,
        };
        let noise = if self.schedule.kind == ScheduleKind::OrigS && !self.schedule.jitter.is_zero()
        {
            Time::from_nanos(self.rng.gen_range(0..=self.schedule.jitter.as_nanos() / 16))
        } else {
            Time::ZERO
        };
        let completion = start + self.config.lock_acquire_cost + handoff + noise;

        let requested = self.threads[ti].request_time.unwrap_or(clock);
        self.threads[ti].timing.lock_wait += start.saturating_sub(requested);
        self.threads[ti].timing.busy += self.config.lock_acquire_cost;

        self.holder.insert(lock, Some(ti));
        self.last_holder.insert(lock, ti);
        match self.schedule.kind {
            ScheduleKind::ElscS | ScheduleKind::MemS => {
                *self.elsc_next.entry(lock).or_insert(0) += 1;
            }
            ScheduleKind::SyncS => {
                if let Some(pos) = sync_pos {
                    self.sync_completed.insert(pos);
                    while self.sync_completed.contains(&self.sync_next) {
                        self.sync_next += 1;
                    }
                }
                self.sync_bypass = None;
                self.sync_last_completion = completion;
            }
            _ => {}
        }
        self.threads[ti].acquires_done += 1;
        self.complete(ti, idx, completion);
        Outcome::Completed
    }
}

/// Replays a ULCP-free transformed trace with the naive scan-and-wake-all
/// loop.
///
/// # Errors
///
/// Returns [`ReplayError`] if the transformed synchronization cannot make
/// progress (which would indicate a transformation bug) or the step limit is
/// exceeded.
pub fn reference_replay_free(
    config: &ReplayConfig,
    use_dls: bool,
    transformed: &TransformedTrace,
) -> Result<ReplayResult, ReplayError> {
    RefFree::new(config, use_dls, transformed).run()
}

struct RefFree<'a> {
    config: ReplayConfig,
    use_dls: bool,
    tt: &'a TransformedTrace,
    deps: SyncDeps,
    sections: SectionIndex,
    constraints: BTreeMap<SectionId, Vec<SectionId>>,
    threads: Vec<ThreadState>,
    event_times: Vec<Vec<Time>>,
    aux_holder: BTreeMap<AuxLockId, SectionId>,
    aux_free_since: BTreeMap<AuxLockId, Time>,
    section_locks: BTreeMap<SectionId, BTreeSet<AuxLockId>>,
    finished: BTreeSet<SectionId>,
    finish_times: BTreeMap<SectionId, Time>,
    barrier_arrivals: BTreeMap<EventRef, Time>,
    lockset_ops: u64,
    lockset_overhead: Time,
}

impl<'a> RefFree<'a> {
    fn new(config: &ReplayConfig, use_dls: bool, tt: &'a TransformedTrace) -> Self {
        let deps = build_sync_deps(&tt.original);
        let sections = build_section_index(&tt.sections);
        let mut constraints: BTreeMap<SectionId, Vec<SectionId>> = BTreeMap::new();
        for c in &tt.order_constraints {
            constraints.entry(c.after).or_default().push(c.before);
        }
        RefFree {
            config: *config,
            use_dls,
            tt,
            deps,
            sections,
            constraints,
            threads: tt
                .original
                .threads
                .iter()
                .map(|_| ThreadState {
                    idx: 0,
                    clock: Time::ZERO,
                    status: Status::Ready,
                    timing: ThreadReplayTiming::default(),
                    request_time: None,
                    acquires_done: 0,
                })
                .collect(),
            event_times: tt
                .original
                .threads
                .iter()
                .map(|t| vec![Time::ZERO; t.events.len()])
                .collect(),
            aux_holder: BTreeMap::new(),
            aux_free_since: BTreeMap::new(),
            section_locks: BTreeMap::new(),
            finished: BTreeSet::new(),
            finish_times: BTreeMap::new(),
            barrier_arrivals: BTreeMap::new(),
            lockset_ops: 0,
            lockset_overhead: Time::ZERO,
        }
    }

    fn run(mut self) -> Result<ReplayResult, ReplayError> {
        let mut steps: u64 = 0;
        loop {
            steps += 1;
            if steps > self.config.max_steps {
                return Err(ReplayError::StepLimitExceeded {
                    limit: self.config.max_steps,
                    cursors: cursors(&self.threads, &self.tt.original, false),
                });
            }
            let next = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Ready)
                .min_by_key(|(i, t)| (t.clock, *i))
                .map(|(i, _)| i);
            let Some(ti) = next else {
                if self.threads.iter().all(|t| t.status == Status::Finished) {
                    break;
                }
                return Err(ReplayError::Stuck {
                    cursors: cursors(&self.threads, &self.tt.original, true),
                });
            };
            match self.try_event(ti) {
                Outcome::Completed => self.wake_all(),
                Outcome::Blocked => self.threads[ti].status = Status::Blocked,
                Outcome::Finished => {
                    self.threads[ti].status = Status::Finished;
                    self.threads[ti].timing.finish_time = self.threads[ti].clock;
                    self.wake_all();
                }
            }
        }
        let total_time = self
            .threads
            .iter()
            .map(|t| t.timing.finish_time)
            .max()
            .unwrap_or(Time::ZERO);
        Ok(ReplayResult {
            total_time,
            per_thread: self.threads.iter().map(|t| t.timing).collect(),
            event_times: self.event_times,
            lockset_ops: self.lockset_ops,
            lockset_overhead: self.lockset_overhead,
        })
    }

    fn wake_all(&mut self) {
        for t in &mut self.threads {
            if t.status == Status::Blocked {
                t.status = Status::Ready;
            }
        }
    }

    fn complete(&mut self, ti: usize, idx: usize, completion: Time) {
        self.event_times[ti][idx] = completion;
        self.threads[ti].clock = completion;
        self.threads[ti].idx = idx + 1;
        self.threads[ti].request_time = None;
    }

    fn try_event(&mut self, ti: usize) -> Outcome {
        let trace = &self.tt.original;
        let events = &trace.threads[ti].events;
        let idx = self.threads[ti].idx;
        if idx >= events.len() {
            return Outcome::Finished;
        }
        let clock = self.threads[ti].clock;
        match events[idx].event {
            Event::Compute { cost }
            | Event::SkipRegion {
                saved_cost: cost, ..
            } => {
                self.threads[ti].timing.busy += cost;
                self.complete(ti, idx, clock + cost);
                Outcome::Completed
            }
            Event::Read { .. } | Event::Write { .. } => {
                let cost = self.config.mem_access_cost;
                self.threads[ti].timing.busy += cost;
                self.complete(ti, idx, clock + cost);
                Outcome::Completed
            }
            Event::LockAcquire { .. } => self.try_enter_section(ti, idx),
            Event::LockRelease { .. } => self.exit_section(ti, idx),
            Event::CondWait { .. } | Event::Checkpoint { .. } | Event::ThreadExit => {
                self.complete(ti, idx, clock);
                Outcome::Completed
            }
            Event::CondSignal { .. } => {
                let cost = self.config.cond_signal_cost;
                self.threads[ti].timing.busy += cost;
                self.complete(ti, idx, clock + cost);
                Outcome::Completed
            }
            Event::BarrierWait { .. } => {
                self.barrier_arrivals.entry((ti, idx)).or_insert(clock);
                let Some(group) = self.deps.barrier_groups.get(&(ti, idx)) else {
                    self.complete(ti, idx, clock + self.config.barrier_release_cost);
                    return Outcome::Completed;
                };
                let arrivals: Vec<Time> = group
                    .iter()
                    .filter_map(|r| self.barrier_arrivals.get(r).copied())
                    .collect();
                if arrivals.len() < group.len() {
                    return Outcome::Blocked;
                }
                let release = arrivals.iter().copied().max().unwrap_or(clock)
                    + self.config.barrier_release_cost;
                self.threads[ti].timing.sync_wait += release - clock;
                self.complete(ti, idx, release);
                Outcome::Completed
            }
        }
    }

    fn try_enter_section(&mut self, ti: usize, idx: usize) -> Outcome {
        let clock = self.threads[ti].clock;
        // The recorded partial order of condition-variable wake-ups still
        // applies in the ULCP-free replay.
        let mut dep_time = Time::ZERO;
        if let Some(dep) = self.deps.wake_deps.get(&(ti, idx)) {
            let (dti, dei) = *dep;
            if self.threads[dti].idx <= dei {
                return Outcome::Blocked;
            }
            dep_time = self.event_times[dti][dei];
        }

        let Some(&sid) = self.sections.by_acquire.get(&(ti, idx)) else {
            self.complete(ti, idx, clock.max(dep_time));
            return Outcome::Completed;
        };
        let node = self.tt.node(sid);

        if node.strip_lock {
            self.complete(ti, idx, clock.max(dep_time));
            return Outcome::Completed;
        }

        if self.threads[ti].request_time.is_none() {
            self.threads[ti].request_time = Some(clock);
        }

        // RULE 2: ordered predecessors must have finished.
        let mut order_time = Time::ZERO;
        if let Some(befores) = self.constraints.get(&sid) {
            for before in befores {
                match self.finish_times.get(before) {
                    Some(t) => order_time = order_time.max(*t),
                    None => return Outcome::Blocked,
                }
            }
        }

        // RULE 3/4: take the (possibly DLS-pruned) lockset atomically.
        let lockset = if self.use_dls {
            dynamic_lockset(node, &self.tt.plan, &self.finished)
        } else {
            node.lockset.clone()
        };
        let mut lockset_free_time = Time::ZERO;
        for lock in &lockset {
            if self.aux_holder.contains_key(lock) {
                return Outcome::Blocked;
            }
            lockset_free_time =
                lockset_free_time.max(self.aux_free_since.get(lock).copied().unwrap_or(Time::ZERO));
        }

        let dls_cost = if self.use_dls {
            self.config.dls_check_cost * node.sources.len() as u64
        } else {
            Time::ZERO
        };
        let op_cost = self.config.lockset_op_cost * lockset.len() as u64;
        let start = clock.max(dep_time).max(order_time).max(lockset_free_time);
        let completion = start + self.config.lock_acquire_cost + op_cost + dls_cost;

        let requested = self.threads[ti].request_time.unwrap_or(clock);
        self.threads[ti].timing.lock_wait += start.saturating_sub(requested);
        self.threads[ti].timing.busy += self.config.lock_acquire_cost + op_cost + dls_cost;
        self.lockset_ops += lockset.len() as u64;
        self.lockset_overhead += op_cost + dls_cost;

        for lock in &lockset {
            self.aux_holder.insert(*lock, sid);
        }
        self.section_locks.insert(sid, lockset);
        self.complete(ti, idx, completion);
        Outcome::Completed
    }

    fn exit_section(&mut self, ti: usize, idx: usize) -> Outcome {
        let clock = self.threads[ti].clock;
        let Some(&sid) = self.sections.by_release.get(&(ti, idx)) else {
            self.complete(ti, idx, clock);
            return Outcome::Completed;
        };
        let node = self.tt.node(sid);
        if node.strip_lock {
            self.finished.insert(sid);
            self.finish_times.insert(sid, clock);
            self.complete(ti, idx, clock);
            return Outcome::Completed;
        }
        let held = self.section_locks.remove(&sid).unwrap_or_default();
        let op_cost = self.config.lockset_op_cost * held.len() as u64;
        let completion = clock + self.config.lock_release_cost + op_cost;
        self.threads[ti].timing.busy += self.config.lock_release_cost + op_cost;
        self.lockset_ops += held.len() as u64;
        self.lockset_overhead += op_cost;
        for lock in held {
            self.aux_holder.remove(&lock);
            self.aux_free_since.insert(lock, completion);
        }
        self.finished.insert(sid);
        self.finish_times.insert(sid, completion);
        self.complete(ti, idx, completion);
        Outcome::Completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ReplaySchedule;
    use perfplay_program::ProgramBuilder;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;

    fn contended_trace(threads: usize, iters: u32) -> Trace {
        let mut b = ProgramBuilder::new("reference-test");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("ref.c", "work", 1);
        for i in 0..threads {
            b.thread(format!("t{i}"), |t| {
                t.loop_n(iters, |l| {
                    l.locked(lock, site, |cs| {
                        cs.read(x);
                        cs.compute_ns(400);
                    });
                    l.compute_ns(300);
                });
            });
        }
        Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace
    }

    #[test]
    fn reference_elsc_matches_recorded_total_time() {
        let trace = contended_trace(3, 8);
        let result =
            reference_replay_original(&ReplayConfig::default(), &trace, ReplaySchedule::elsc())
                .unwrap();
        let recorded = trace.total_time.as_nanos() as f64;
        let replayed = result.total_time.as_nanos() as f64;
        assert!((replayed - recorded).abs() / recorded < 0.02);
    }

    #[test]
    fn reference_is_deterministic_per_schedule() {
        let trace = contended_trace(4, 6);
        for schedule in [
            ReplaySchedule::elsc(),
            ReplaySchedule::orig(9),
            ReplaySchedule::sync(),
            ReplaySchedule::mem(),
        ] {
            let r1 = reference_replay_original(&ReplayConfig::default(), &trace, schedule).unwrap();
            let r2 = reference_replay_original(&ReplayConfig::default(), &trace, schedule).unwrap();
            assert_eq!(r1, r2, "{:?} should be repeatable", schedule.kind);
        }
    }

    #[test]
    fn order_projections_cover_all_acquisitions() {
        let trace = contended_trace(3, 4);
        let elsc = elsc_order_of(&trace);
        let total: usize = elsc.values().map(Vec::len).sum();
        assert_eq!(total, trace.num_acquisitions());
        let sync = sync_order_of(&trace);
        assert_eq!(sync.len(), trace.num_acquisitions());
        let mem = mem_order_of(&trace);
        assert!(mem
            .iter()
            .all(|&(ti, ei)| trace.threads[ti].events[ei].event.is_memory_access()));
    }
}
