//! The shared event-driven scheduler core both replayers run on.
//!
//! The naive loops in [`reference`](crate::reference) pay `O(T)` per step to
//! scan every thread for the next runnable one, and wake *every* blocked
//! thread after *any* progress — `O(T^2)` scheduler work per lock grant under
//! contention. This module replaces both with one engine:
//!
//! * a **clock-keyed ready set** (`BinaryHeap` over `(clock, thread)`, ties
//!   broken by thread id) makes picking the next runnable thread `O(log T)`
//!   and reproduces the reference's deterministic `min_by_key` order exactly;
//! * **targeted wake lists** ([`WaitChannel`]) wake only the threads whose
//!   blocking condition may actually have changed: waiters of a released
//!   lock, the next thread in a recorded grant order, members of a completed
//!   barrier group, watchers of a condition-variable signal.
//!
//! The schedule-specific *admission rules* — who may take a lock, and when —
//! live in a [`ReplayPolicy`]: `OriginalOrder` (the four `ScheduleKind`
//! schemes) and `UlcpFree` (RULE 2/3/4 lockset semantics with the dynamic
//! locking strategy). Everything else — thread table, event cursors, cost
//! application, condvar/barrier dependency resolution, the step loop — is
//! shared here.
//!
//! # Equivalence with the reference loops
//!
//! The engine is bit-identical to the reference because (a) blocked attempts
//! are *pure* — they mutate nothing, so the reference's extra retries are
//! no-ops, (b) wake channels are *complete* — whenever a blocked thread's
//! condition may have changed it is notified on a registered channel or woken
//! directly, and (c) both pick the minimum `(clock, thread-id)` runnable
//! thread. Spurious wake-ups are allowed (the thread re-blocks, harmlessly);
//! missed wake-ups are not. The property suite replays random traces through
//! both paths and asserts equal [`ReplayResult`]s.
//!
//! One caveat: `max_steps` counts *productive* scheduler decisions here
//! (ready-heap pops), while the reference loops also burn iterations on the
//! blocked retries their wake-all strategy causes. Successful replays and
//! `Stuck` errors are bit-identical across both paths; a replay that hits
//! the step limit does so at a different logical point in each (with the
//! default 100M-step limit this is unreachable for real traces).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use perfplay_trace::{AuxLockId, Event, LockId, SectionId, Time, Trace};

use crate::common::{build_sync_deps, EventRef, ReplayConfig, SyncDeps};
use crate::result::{ReplayError, ReplayResult, ThreadCursor, ThreadReplayTiming};

/// Scheduling state of one replayed thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Present in the ready heap, will be stepped.
    Ready,
    /// Waiting for a wake channel notification or a direct wake.
    Blocked,
    /// Played every event of its stream.
    Finished,
}

/// Per-thread replay state shared by all policies.
#[derive(Debug)]
pub(crate) struct ThreadState {
    /// Index of the next unplayed event.
    pub idx: usize,
    /// The thread's virtual clock (completion time of its last event).
    pub clock: Time,
    /// Scheduling status.
    pub status: Status,
    /// Timing account reported in the result.
    pub timing: ThreadReplayTiming,
    /// Virtual time at which the pending acquisition was first requested.
    pub request_time: Option<Time>,
    /// Invalidates stale wake-channel registrations from earlier episodes.
    wait_epoch: u64,
}

/// What a blocked thread is waiting for.
///
/// Channels are notification *hints*: a notification may wake a thread that
/// still cannot progress (it simply re-blocks), but a thread whose blocking
/// condition changed must always be reachable through a registered channel
/// or a direct [`EngineCore::wake`] — the engine's equivalence with the
/// reference loops rests on that completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum WaitChannel {
    /// An application lock was released (or its grant order advanced).
    Lock(LockId),
    /// An auxiliary (lockset) lock was released.
    AuxLock(AuxLockId),
    /// A critical section finished (RULE 2 predecessors, DLS prunes).
    SectionDone(SectionId),
}

/// Outcome of attempting one thread's next event.
pub(crate) enum Step {
    /// The event completed; the thread stays in the ready set.
    Completed,
    /// The thread cannot progress; it leaves the ready set until woken.
    Blocked,
    /// The thread has no events left.
    Finished,
}

/// The state shared by every policy: thread table, event cursors, ready
/// heap, wake lists, and the cross-thread condvar/barrier dependencies.
pub(crate) struct EngineCore<'a> {
    pub config: ReplayConfig,
    pub trace: &'a Trace,
    pub deps: SyncDeps,
    pub threads: Vec<ThreadState>,
    pub event_times: Vec<Vec<Time>>,
    /// Min-heap over `(clock, thread id)` of `Ready` threads. Each ready
    /// thread appears exactly once; a thread's clock only changes while it
    /// is popped, so entries never go stale.
    ready: BinaryHeap<Reverse<(Time, usize)>>,
    /// Blocked threads by wake channel, tagged with the registration epoch.
    waiters: BTreeMap<WaitChannel, Vec<(usize, u64)>>,
    /// Reverse index of `deps.wake_deps`: completion of the keyed event
    /// wakes the listed threads (condvar waiters re-acquiring their lock).
    dep_watchers: BTreeMap<EventRef, Vec<usize>>,
    /// Barrier crossings: group id per arrival event, member list per group.
    barrier_group_ids: BTreeMap<EventRef, usize>,
    barrier_groups: Vec<Vec<EventRef>>,
    barrier_arrivals: BTreeMap<EventRef, Time>,
}

impl<'a> EngineCore<'a> {
    fn new(config: &ReplayConfig, trace: &'a Trace) -> Self {
        let deps = build_sync_deps(trace);
        let mut dep_watchers: BTreeMap<EventRef, Vec<usize>> = BTreeMap::new();
        for (waiter, dep) in &deps.wake_deps {
            dep_watchers.entry(*dep).or_default().push(waiter.0);
        }
        // Deduplicate barrier groups (every member maps to the same vector)
        // into an id-indexed table so group iteration needs no allocation.
        let mut barrier_group_ids: BTreeMap<EventRef, usize> = BTreeMap::new();
        let mut barrier_groups: Vec<Vec<EventRef>> = Vec::new();
        let mut rep_to_id: BTreeMap<EventRef, usize> = BTreeMap::new();
        for (member, group) in &deps.barrier_groups {
            let rep = group[0];
            let id = *rep_to_id.entry(rep).or_insert_with(|| {
                barrier_groups.push(group.clone());
                barrier_groups.len() - 1
            });
            barrier_group_ids.insert(*member, id);
        }
        let mut ready = BinaryHeap::with_capacity(trace.num_threads());
        for ti in 0..trace.num_threads() {
            ready.push(Reverse((Time::ZERO, ti)));
        }
        EngineCore {
            config: *config,
            trace,
            deps,
            threads: trace
                .threads
                .iter()
                .map(|_| ThreadState {
                    idx: 0,
                    clock: Time::ZERO,
                    status: Status::Ready,
                    timing: ThreadReplayTiming::default(),
                    request_time: None,
                    wait_epoch: 0,
                })
                .collect(),
            event_times: trace
                .threads
                .iter()
                .map(|t| vec![Time::ZERO; t.events.len()])
                .collect(),
            ready,
            waiters: BTreeMap::new(),
            dep_watchers,
            barrier_group_ids,
            barrier_groups,
            barrier_arrivals: BTreeMap::new(),
        }
    }

    /// Marks an event complete: records its time, advances the cursor, and
    /// wakes any condvar waiter whose recorded dependency this event was.
    pub fn complete(&mut self, ti: usize, idx: usize, completion: Time) {
        self.event_times[ti][idx] = completion;
        let t = &mut self.threads[ti];
        t.clock = completion;
        t.idx = idx + 1;
        t.request_time = None;
        if let Some(watchers) = self.dep_watchers.remove(&(ti, idx)) {
            for w in watchers {
                self.wake(w);
            }
        }
    }

    /// Moves a blocked thread back into the ready heap. No-op for threads
    /// that are already ready or finished, so spurious wakes are harmless.
    pub fn wake(&mut self, ti: usize) {
        let t = &mut self.threads[ti];
        if t.status == Status::Blocked {
            t.status = Status::Ready;
            self.ready.push(Reverse((t.clock, ti)));
        }
    }

    /// Registers the (about-to-block) thread on the given wake channels.
    /// A registration-free block is allowed when some other mechanism
    /// (dep watchers, barrier completion, a policy's direct wake) is
    /// guaranteed to deliver the wake.
    pub fn block_on(&mut self, ti: usize, channels: impl IntoIterator<Item = WaitChannel>) {
        let t = &mut self.threads[ti];
        t.wait_epoch += 1;
        let epoch = t.wait_epoch;
        for ch in channels {
            let list = self.waiters.entry(ch).or_default();
            // A spuriously woken thread that re-blocks on the same channel
            // leaves a stale (older-epoch) entry behind; refreshing a
            // trailing entry in place keeps repeated wake/re-block cycles
            // (e.g. the SYNC-S turn owner waiting out a held lock) from
            // growing the list.
            match list.last_mut() {
                Some((last, e)) if *last == ti => *e = epoch,
                _ => list.push((ti, epoch)),
            }
        }
    }

    /// Wakes every thread whose current blocking episode registered on the
    /// channel. Stale registrations (older epochs) are dropped.
    pub fn notify(&mut self, channel: WaitChannel) {
        let Some(list) = self.waiters.remove(&channel) else {
            return;
        };
        for (ti, epoch) in list {
            if self.threads[ti].wait_epoch == epoch {
                self.wake(ti);
            }
        }
    }

    /// Checks the recorded condvar partial order for an acquisition.
    /// Returns the dependency's completion time, or `None` when the
    /// dependency has not completed yet (the dep watcher will wake us; the
    /// caller must return [`Step::Blocked`] without registering channels).
    pub fn wake_dep_time(&self, ti: usize, idx: usize) -> Result<Time, ()> {
        match self.deps.wake_deps.get(&(ti, idx)) {
            Some(&(dti, dei)) => {
                if self.threads[dti].idx <= dei {
                    Err(())
                } else {
                    Ok(self.event_times[dti][dei])
                }
            }
            None => Ok(Time::ZERO),
        }
    }

    /// Barrier arrival: blocks until the whole recorded crossing has
    /// arrived; the final arriver wakes the other members directly.
    fn barrier_wait(&mut self, ti: usize, idx: usize) -> Step {
        let clock = self.threads[ti].clock;
        self.barrier_arrivals.entry((ti, idx)).or_insert(clock);
        let Some(&gid) = self.barrier_group_ids.get(&(ti, idx)) else {
            self.complete(ti, idx, clock + self.config.barrier_release_cost);
            return Step::Completed;
        };
        let len = self.barrier_groups[gid].len();
        let mut arrived = 0usize;
        let mut latest = Time::ZERO;
        for k in 0..len {
            let member = self.barrier_groups[gid][k];
            if let Some(&at) = self.barrier_arrivals.get(&member) {
                arrived += 1;
                latest = latest.max(at);
            }
        }
        if arrived < len {
            // Woken directly by the final arriver; no channel registration.
            self.block_on(ti, []);
            return Step::Blocked;
        }
        let release = latest.max(clock) + self.config.barrier_release_cost;
        self.threads[ti].timing.sync_wait += release - clock;
        self.complete(ti, idx, release);
        for k in 0..len {
            let member = self.barrier_groups[gid][k].0;
            if member != ti {
                self.wake(member);
            }
        }
        Step::Completed
    }

    fn cursors(&self, only_unfinished: bool) -> Vec<ThreadCursor> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !only_unfinished || t.status != Status::Finished)
            .map(|(i, t)| ThreadCursor {
                thread: self.trace.threads[i].thread,
                next_event: t.idx,
                total_events: self.trace.threads[i].events.len(),
            })
            .collect()
    }
}

/// The schedule-specific part of a replayer: lock admission (and, for MEM-S,
/// memory-access ordering). Everything a policy does besides blocking /
/// granting goes through the [`EngineCore`] it is handed.
pub(crate) trait ReplayPolicy {
    /// Handles a `Read` / `Write` event. The default charges the plain
    /// memory-access cost; MEM-S overrides it to enforce the recorded
    /// global access order.
    fn on_memory(&mut self, core: &mut EngineCore, ti: usize, idx: usize) -> Step {
        let clock = core.threads[ti].clock;
        let cost = core.config.mem_access_cost;
        core.threads[ti].timing.busy += cost;
        core.complete(ti, idx, clock + cost);
        Step::Completed
    }

    /// Handles a `LockAcquire` event: admission, availability, cost.
    fn on_acquire(&mut self, core: &mut EngineCore, ti: usize, idx: usize, lock: LockId) -> Step;

    /// Handles a `LockRelease` event and notifies the released waiters.
    fn on_release(&mut self, core: &mut EngineCore, ti: usize, idx: usize, lock: LockId) -> Step;

    /// Called when the ready set empties while unfinished threads remain;
    /// may designate one blocked thread to wake (the SYNC-S admission
    /// bypass). Returning `None` makes the replay report [`ReplayError::Stuck`].
    fn rescue(&mut self, _core: &EngineCore) -> Option<usize> {
        None
    }

    /// Lockset accounting for the final [`ReplayResult`].
    fn lockset_totals(&self) -> (u64, Time) {
        (0, Time::ZERO)
    }
}

/// The unified replay engine: the shared core driven by one policy.
pub(crate) struct Engine<'a, P: ReplayPolicy> {
    core: EngineCore<'a>,
    policy: P,
}

impl<'a, P: ReplayPolicy> Engine<'a, P> {
    pub fn new(config: &ReplayConfig, trace: &'a Trace, policy: P) -> Self {
        Engine {
            core: EngineCore::new(config, trace),
            policy,
        }
    }

    /// Runs the replay to completion.
    pub fn run(mut self) -> Result<ReplayResult, ReplayError> {
        let mut steps: u64 = 0;
        loop {
            let Some(Reverse((_, ti))) = self.core.ready.pop() else {
                if self
                    .core
                    .threads
                    .iter()
                    .all(|t| t.status == Status::Finished)
                {
                    break;
                }
                if let Some(candidate) = self.policy.rescue(&self.core) {
                    self.core.wake(candidate);
                    continue;
                }
                return Err(ReplayError::Stuck {
                    cursors: self.core.cursors(true),
                });
            };
            debug_assert_eq!(self.core.threads[ti].status, Status::Ready);
            steps += 1;
            if steps > self.core.config.max_steps {
                return Err(ReplayError::StepLimitExceeded {
                    limit: self.core.config.max_steps,
                    cursors: self.core.cursors(false),
                });
            }
            match self.step(ti) {
                Step::Completed => {
                    let clock = self.core.threads[ti].clock;
                    self.core.ready.push(Reverse((clock, ti)));
                }
                Step::Blocked => self.core.threads[ti].status = Status::Blocked,
                Step::Finished => {
                    let t = &mut self.core.threads[ti];
                    t.status = Status::Finished;
                    t.timing.finish_time = t.clock;
                }
            }
        }
        let total_time = self
            .core
            .threads
            .iter()
            .map(|t| t.timing.finish_time)
            .max()
            .unwrap_or(Time::ZERO);
        let (lockset_ops, lockset_overhead) = self.policy.lockset_totals();
        Ok(ReplayResult {
            total_time,
            per_thread: self.core.threads.iter().map(|t| t.timing).collect(),
            event_times: self.core.event_times,
            lockset_ops,
            lockset_overhead,
        })
    }

    /// Attempts the thread's next event. Dispatches on a *borrowed* event —
    /// payloads are copied out as scalars, so stepping allocates nothing.
    fn step(&mut self, ti: usize) -> Step {
        let core = &mut self.core;
        let trace = core.trace;
        let events = &trace.threads[ti].events;
        let idx = core.threads[ti].idx;
        if idx >= events.len() {
            return Step::Finished;
        }
        let clock = core.threads[ti].clock;
        match events[idx].event {
            Event::Compute { cost }
            | Event::SkipRegion {
                saved_cost: cost, ..
            } => {
                core.threads[ti].timing.busy += cost;
                core.complete(ti, idx, clock + cost);
                Step::Completed
            }
            Event::Read { .. } | Event::Write { .. } => self.policy.on_memory(core, ti, idx),
            Event::LockAcquire { lock, .. } => self.policy.on_acquire(core, ti, idx, lock),
            Event::LockRelease { lock } => self.policy.on_release(core, ti, idx, lock),
            Event::CondWait { .. } | Event::Checkpoint { .. } | Event::ThreadExit => {
                core.complete(ti, idx, clock);
                Step::Completed
            }
            Event::CondSignal { .. } => {
                let cost = core.config.cond_signal_cost;
                core.threads[ti].timing.busy += cost;
                core.complete(ti, idx, clock + cost);
                Step::Completed
            }
            Event::BarrierWait { .. } => core.barrier_wait(ti, idx),
        }
    }
}
