//! Results of replaying a trace.

use perfplay_trace::{ThreadId, Time};

/// Per-thread timing of one replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadReplayTiming {
    /// Virtual time at which the thread finished its replayed events.
    pub finish_time: Time,
    /// Time spent executing computation, memory accesses and lock operations.
    pub busy: Time,
    /// Time spent waiting for lock acquisitions (including scheduler
    /// admission waits).
    pub lock_wait: Time,
    /// Time spent waiting on condition variables, barriers and enforced
    /// memory-order turns.
    pub sync_wait: Time,
}

/// The outcome of replaying one trace once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayResult {
    /// Makespan of the replay.
    pub total_time: Time,
    /// Per-thread accounts, indexed by [`ThreadId::index`].
    pub per_thread: Vec<ThreadReplayTiming>,
    /// Completion time of every replayed event, indexed `[thread][event]` and
    /// aligned with the original trace's event indices.
    pub event_times: Vec<Vec<Time>>,
    /// Number of auxiliary-lock (lockset) operations performed. Zero for
    /// original-trace replays; the ULCP-free replay uses it to quantify
    /// lockset maintenance overhead (Table 3).
    pub lockset_ops: u64,
    /// Total virtual time charged to lockset maintenance.
    pub lockset_overhead: Time,
}

impl ReplayResult {
    /// Returns the account for a thread.
    pub fn thread(&self, thread: ThreadId) -> &ThreadReplayTiming {
        &self.per_thread[thread.index()]
    }

    /// Completion time of a specific event.
    pub fn event_time(&self, thread: ThreadId, index: usize) -> Option<Time> {
        self.event_times
            .get(thread.index())
            .and_then(|v| v.get(index))
            .copied()
    }

    /// Total lock-wait time summed over threads.
    pub fn total_lock_wait(&self) -> Time {
        self.per_thread.iter().map(|t| t.lock_wait).sum()
    }

    /// Fraction of the replay's makespan attributable to lockset maintenance.
    pub fn lockset_overhead_fraction(&self) -> f64 {
        self.lockset_overhead.ratio(self.total_time)
    }
}

/// Errors produced by the replayers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// No runnable thread remains but some threads still have events;
    /// indicates an inconsistent trace or schedule.
    Stuck {
        /// Threads that still have unplayed events.
        blocked: Vec<ThreadId>,
    },
    /// The replay exceeded the step limit.
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Stuck { blocked } => {
                write!(f, "replay stuck with {} blocked thread(s)", blocked.len())
            }
            ReplayError::StepLimitExceeded { limit } => {
                write!(f, "replay step limit of {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_work() {
        let result = ReplayResult {
            total_time: Time::from_nanos(100),
            per_thread: vec![
                ThreadReplayTiming {
                    finish_time: Time::from_nanos(100),
                    busy: Time::from_nanos(70),
                    lock_wait: Time::from_nanos(20),
                    sync_wait: Time::from_nanos(10),
                },
                ThreadReplayTiming::default(),
            ],
            event_times: vec![vec![Time::from_nanos(5), Time::from_nanos(100)], vec![]],
            lockset_ops: 4,
            lockset_overhead: Time::from_nanos(10),
        };
        assert_eq!(result.thread(ThreadId::new(0)).busy, Time::from_nanos(70));
        assert_eq!(
            result.event_time(ThreadId::new(0), 1),
            Some(Time::from_nanos(100))
        );
        assert_eq!(result.event_time(ThreadId::new(1), 0), None);
        assert_eq!(result.total_lock_wait(), Time::from_nanos(20));
        assert!((result.lockset_overhead_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        let e = ReplayError::Stuck {
            blocked: vec![ThreadId::new(0), ThreadId::new(1)],
        };
        assert!(e.to_string().contains("2 blocked"));
        assert!(ReplayError::StepLimitExceeded { limit: 9 }
            .to_string()
            .contains('9'));
    }
}
