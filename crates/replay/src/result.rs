//! Results of replaying a trace.

use perfplay_trace::{ThreadId, Time};

/// Per-thread timing of one replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadReplayTiming {
    /// Virtual time at which the thread finished its replayed events.
    pub finish_time: Time,
    /// Time spent executing computation, memory accesses and lock operations.
    pub busy: Time,
    /// Time spent waiting for lock acquisitions (including scheduler
    /// admission waits).
    pub lock_wait: Time,
    /// Time spent waiting on condition variables, barriers and enforced
    /// memory-order turns.
    pub sync_wait: Time,
}

/// The outcome of replaying one trace once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayResult {
    /// Makespan of the replay.
    pub total_time: Time,
    /// Per-thread accounts, indexed by [`ThreadId::index`].
    pub per_thread: Vec<ThreadReplayTiming>,
    /// Completion time of every replayed event, indexed `[thread][event]` and
    /// aligned with the original trace's event indices.
    pub event_times: Vec<Vec<Time>>,
    /// Number of auxiliary-lock (lockset) operations performed. Zero for
    /// original-trace replays; the ULCP-free replay uses it to quantify
    /// lockset maintenance overhead (Table 3).
    pub lockset_ops: u64,
    /// Total virtual time charged to lockset maintenance.
    pub lockset_overhead: Time,
}

impl ReplayResult {
    /// Returns the account for a thread.
    pub fn thread(&self, thread: ThreadId) -> &ThreadReplayTiming {
        &self.per_thread[thread.index()]
    }

    /// Completion time of a specific event.
    pub fn event_time(&self, thread: ThreadId, index: usize) -> Option<Time> {
        self.event_times
            .get(thread.index())
            .and_then(|v| v.get(index))
            .copied()
    }

    /// Total lock-wait time summed over threads.
    pub fn total_lock_wait(&self) -> Time {
        self.per_thread.iter().map(|t| t.lock_wait).sum()
    }

    /// Fraction of the replay's makespan attributable to lockset maintenance.
    pub fn lockset_overhead_fraction(&self) -> f64 {
        self.lockset_overhead.ratio(self.total_time)
    }
}

/// Where one thread's replay cursor stood when an error was raised: the
/// thread, the index of its next unplayed event, and how many events its
/// stream holds in total. A cursor with `next_event == total_events` belongs
/// to a thread that had already finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCursor {
    /// The thread the cursor describes.
    pub thread: ThreadId,
    /// Index of the next unplayed event in the thread's stream.
    pub next_event: usize,
    /// Total number of events in the thread's stream.
    pub total_events: usize,
}

impl ThreadCursor {
    /// True when the thread had played every event of its stream.
    pub fn is_finished(&self) -> bool {
        self.next_event >= self.total_events
    }
}

impl std::fmt::Display for ThreadCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at event {}/{}",
            self.thread, self.next_event, self.total_events
        )
    }
}

/// Errors produced by the replayers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// No runnable thread remains but some threads still have events;
    /// indicates an inconsistent trace or schedule. Carries the cursor of
    /// every thread that still had unplayed events.
    Stuck {
        /// Cursor of each blocked (unfinished) thread.
        cursors: Vec<ThreadCursor>,
    },
    /// The replay exceeded the step limit. Carries every thread's cursor so
    /// the runaway point can be located.
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
        /// Cursor of every thread at the moment the limit was hit.
        cursors: Vec<ThreadCursor>,
    },
}

impl ReplayError {
    /// Threads that still had unplayed events when the error was raised.
    pub fn blocked_threads(&self) -> Vec<ThreadId> {
        let cursors = match self {
            ReplayError::Stuck { cursors } => cursors,
            ReplayError::StepLimitExceeded { cursors, .. } => cursors,
        };
        cursors
            .iter()
            .filter(|c| !c.is_finished())
            .map(|c| c.thread)
            .collect()
    }

    /// The per-thread cursor positions attached to the error.
    pub fn cursors(&self) -> &[ThreadCursor] {
        match self {
            ReplayError::Stuck { cursors } => cursors,
            ReplayError::StepLimitExceeded { cursors, .. } => cursors,
        }
    }
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Stuck { cursors } => {
                write!(f, "replay stuck with {} blocked thread(s)", cursors.len())?;
                for c in cursors.iter().take(4) {
                    write!(f, "; {c}")?;
                }
                Ok(())
            }
            ReplayError::StepLimitExceeded { limit, cursors } => {
                write!(f, "replay step limit of {limit} exceeded")?;
                if let Some(c) = cursors.iter().find(|c| !c.is_finished()) {
                    write!(f, "; first unfinished: {c}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ReplayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_work() {
        let result = ReplayResult {
            total_time: Time::from_nanos(100),
            per_thread: vec![
                ThreadReplayTiming {
                    finish_time: Time::from_nanos(100),
                    busy: Time::from_nanos(70),
                    lock_wait: Time::from_nanos(20),
                    sync_wait: Time::from_nanos(10),
                },
                ThreadReplayTiming::default(),
            ],
            event_times: vec![vec![Time::from_nanos(5), Time::from_nanos(100)], vec![]],
            lockset_ops: 4,
            lockset_overhead: Time::from_nanos(10),
        };
        assert_eq!(result.thread(ThreadId::new(0)).busy, Time::from_nanos(70));
        assert_eq!(
            result.event_time(ThreadId::new(0), 1),
            Some(Time::from_nanos(100))
        );
        assert_eq!(result.event_time(ThreadId::new(1), 0), None);
        assert_eq!(result.total_lock_wait(), Time::from_nanos(20));
        assert!((result.lockset_overhead_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn error_display_names_threads_and_events() {
        let e = ReplayError::Stuck {
            cursors: vec![
                ThreadCursor {
                    thread: ThreadId::new(0),
                    next_event: 3,
                    total_events: 9,
                },
                ThreadCursor {
                    thread: ThreadId::new(1),
                    next_event: 0,
                    total_events: 4,
                },
            ],
        };
        assert!(e.to_string().contains("2 blocked"));
        assert!(e.to_string().contains("T0 at event 3/9"));
        assert_eq!(
            e.blocked_threads(),
            vec![ThreadId::new(0), ThreadId::new(1)]
        );

        let e = ReplayError::StepLimitExceeded {
            limit: 9,
            cursors: vec![ThreadCursor {
                thread: ThreadId::new(2),
                next_event: 1,
                total_events: 2,
            }],
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains("T2 at event 1/2"));
        assert_eq!(e.cursors().len(), 1);
    }

    #[test]
    fn finished_threads_are_not_reported_blocked() {
        let e = ReplayError::StepLimitExceeded {
            limit: 1,
            cursors: vec![
                ThreadCursor {
                    thread: ThreadId::new(0),
                    next_event: 5,
                    total_events: 5,
                },
                ThreadCursor {
                    thread: ThreadId::new(1),
                    next_event: 2,
                    total_events: 5,
                },
            ],
        };
        assert_eq!(e.blocked_threads(), vec![ThreadId::new(1)]);
        assert!(e.cursors()[0].is_finished());
        assert!(!e.cursors()[1].is_finished());
    }
}
