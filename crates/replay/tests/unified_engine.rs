//! Integration tests of the unified replay engine: barrier edge cases
//! checked against the reference loops, the SYNC-S admission-bypass path,
//! and the structured replay errors.

use perfplay_program::ProgramBuilder;
use perfplay_record::Recorder;
use perfplay_replay::{
    reference_replay_free, reference_replay_original, ReplayConfig, ReplayError, ReplaySchedule,
    Replayer, UlcpFreeReplayer,
};
use perfplay_sim::SimConfig;
use perfplay_trace::{CodeSiteId, Event, LockId, ThreadId, Time, Trace, TraceMeta};

fn all_schedules(seed: u64) -> [ReplaySchedule; 4] {
    [
        ReplaySchedule::orig(seed),
        ReplaySchedule::elsc(),
        ReplaySchedule::sync(),
        ReplaySchedule::mem(),
    ]
}

/// Asserts the unified engine and the reference loop agree bit-for-bit on
/// one trace under every schedule, and on the ULCP-free replay of its
/// transformation (with and without DLS).
fn assert_engine_matches_reference(trace: &Trace) {
    let config = ReplayConfig::default();
    let replayer = Replayer::default();
    for schedule in all_schedules(11) {
        let reference = reference_replay_original(&config, trace, schedule);
        let engine = replayer.replay(trace, schedule);
        assert_eq!(
            reference, engine,
            "engine diverged from reference under {:?}",
            schedule.kind
        );
    }
    let analysis = perfplay_detect::Detector::default().analyze(trace);
    let transformed = perfplay_transform::Transformer::default().transform(trace, &analysis);
    for use_dls in [true, false] {
        let reference = reference_replay_free(&config, use_dls, &transformed);
        let engine = UlcpFreeReplayer::new(config)
            .with_dls(use_dls)
            .replay(&transformed);
        assert_eq!(
            reference, engine,
            "free engine diverged from reference (dls={use_dls})"
        );
    }
}

fn record(build: impl FnOnce(&mut ProgramBuilder)) -> Trace {
    let mut b = ProgramBuilder::new("unified-engine-test");
    build(&mut b);
    Recorder::new(SimConfig::default())
        .record(&b.build())
        .unwrap()
        .trace
}

#[test]
fn sole_member_barrier_group_releases_immediately() {
    let trace = record(|b| {
        let solo = b.barrier("solo", 1);
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("bar.c", "one", 1);
        b.thread("alone", |t| {
            t.compute_ns(200);
            t.barrier(solo);
            t.locked(lock, site, |cs| {
                cs.read(x);
            });
        });
        // A second thread that never touches the barrier, so the trace has
        // real cross-thread scheduling around the one-member crossing.
        b.thread("other", |t| {
            t.compute_ns(500);
            t.locked(lock, site, |cs| {
                cs.read(x);
            });
        });
    });
    assert_engine_matches_reference(&trace);
    // A sole member never waits at its own barrier.
    let result = Replayer::default()
        .replay(&trace, ReplaySchedule::elsc())
        .unwrap();
    assert_eq!(result.per_thread[1].sync_wait, Time::ZERO);
}

#[test]
fn interleaved_barrier_groups_across_the_same_threads() {
    let trace = record(|b| {
        let first = b.barrier("first", 3);
        let second = b.barrier("second", 3);
        for i in 0..3u32 {
            let skew = u64::from(i + 1) * 7;
            b.thread(format!("t{i}"), move |t| {
                t.compute_us(skew);
                t.barrier(first);
                t.compute_us(10 - u64::from(i) * 3);
                t.barrier(second);
                t.compute_us(skew);
                // The same barrier objects are crossed a second time, so two
                // dynamic groups per barrier interleave across the threads.
                t.barrier(first);
                t.compute_ns(300);
                t.barrier(second);
            });
        }
    });
    assert_engine_matches_reference(&trace);
    let result = Replayer::default()
        .replay(&trace, ReplaySchedule::elsc())
        .unwrap();
    // Every thread crossed four barriers; the fastest arrivals must have
    // accumulated synchronization wait at each crossing.
    assert!(result.per_thread.iter().any(|t| t.sync_wait > Time::ZERO));
    // All threads share the final barrier release, so no thread can finish
    // much before another (only the trailing compute differs).
    let finishes: Vec<Time> = result.per_thread.iter().map(|t| t.finish_time).collect();
    let spread = *finishes.iter().max().unwrap() - *finishes.iter().min().unwrap();
    assert!(spread <= Time::from_micros(1));
}

#[test]
fn nested_locks_exercise_the_sync_bypass_path() {
    let trace = record(|b| {
        let outer = b.lock("outer");
        let inner = b.lock("inner");
        let x = b.shared("x", 0);
        let site_o = b.site("nest.c", "outer", 1);
        let site_i = b.site("nest.c", "inner", 2);
        for i in 0..3 {
            b.thread(format!("t{i}"), |t| {
                t.loop_n(4, |l| {
                    l.locked(outer, site_o, |cs| {
                        cs.read(x);
                        cs.locked(inner, site_i, |cs2| {
                            cs2.write_add(x, 1);
                        });
                    });
                    l.compute_ns(250);
                });
            });
        }
    });
    assert_engine_matches_reference(&trace);
}

#[test]
fn condvar_and_barrier_mix_matches_reference() {
    let trace = record(|b| {
        let lock = b.lock("m");
        let cv = b.condvar("cv");
        let bar = b.barrier("sync", 2);
        let flag = b.shared("flag", 0);
        let site_w = b.site("mix.c", "waiter", 1);
        let site_s = b.site("mix.c", "signaller", 2);
        b.thread("waiter", |t| {
            t.barrier(bar);
            t.locked(lock, site_w, |cs| {
                cs.cond_wait(cv, lock);
                cs.read(flag);
            });
        });
        b.thread("signaller", |t| {
            t.barrier(bar);
            t.compute_us(3);
            t.locked(lock, site_s, |cs| {
                cs.write_set(flag, 1);
                cs.cond_signal(cv);
            });
        });
    });
    assert_engine_matches_reference(&trace);
}

/// Hand-builds a trace whose two threads acquire two locks in opposite
/// order — a classic deadlock no recorded execution would produce, used to
/// pin the structured `Stuck` error.
fn deadlocked_trace() -> Trace {
    let meta = TraceMeta {
        program: "deadlock".into(),
        num_threads: 2,
        num_locks: 2,
        num_objects: 0,
        input: "synthetic".into(),
    };
    let mut trace = Trace::new(meta, 2);
    let site = CodeSiteId::new(0);
    let (a, b) = (LockId::new(0), LockId::new(1));
    let orders = [[a, b], [b, a]];
    for (ti, order) in orders.iter().enumerate() {
        let t = &mut trace.threads[ti];
        t.push(
            Time::from_nanos(10),
            Event::LockAcquire {
                lock: order[0],
                site,
            },
        );
        t.push(
            Time::from_nanos(20),
            Event::LockAcquire {
                lock: order[1],
                site,
            },
        );
        t.push(Time::from_nanos(30), Event::LockRelease { lock: order[1] });
        t.push(Time::from_nanos(40), Event::LockRelease { lock: order[0] });
        t.push(Time::from_nanos(40), Event::ThreadExit);
    }
    trace.total_time = Time::from_nanos(40);
    trace
}

/// A recorded grant order that covers only *some* acquisitions of a lock
/// (possible in hand-built or truncated traces) must not strand the
/// uncovered acquirers: once the order is exhausted, a release has to wake
/// the channel waiters. Regression test for a missed-wake bug where the
/// admission-blocked thread registered no channel and the engine reported a
/// spurious `Stuck` that the reference loop did not.
#[test]
fn acquisitions_beyond_the_recorded_grant_order_still_complete() {
    let meta = TraceMeta {
        program: "truncated-order".into(),
        num_threads: 2,
        num_locks: 1,
        num_objects: 0,
        input: "synthetic".into(),
    };
    let mut trace = Trace::new(meta, 2);
    let site = CodeSiteId::new(0);
    let lock = LockId::new(0);
    // T0 computes first, then takes the lock; T1 tries the lock right away,
    // so T1 blocks on admission (the recorded order expects T0 first).
    trace.threads[0].push(
        Time::from_nanos(100),
        Event::Compute {
            cost: Time::from_nanos(100),
        },
    );
    trace.threads[0].push(Time::from_nanos(110), Event::LockAcquire { lock, site });
    trace.threads[0].push(Time::from_nanos(120), Event::LockRelease { lock });
    trace.threads[0].push(Time::from_nanos(120), Event::ThreadExit);
    trace.threads[1].push(Time::from_nanos(130), Event::LockAcquire { lock, site });
    trace.threads[1].push(Time::from_nanos(140), Event::LockRelease { lock });
    trace.threads[1].push(Time::from_nanos(140), Event::ThreadExit);
    // The schedule records only T0's grant; T1's acquisition is beyond the
    // recorded order.
    trace.lock_schedule = vec![perfplay_trace::LockGrant {
        seq: 0,
        lock,
        thread: ThreadId::new(0),
        event_index: 1,
        at: Time::from_nanos(110),
    }];
    trace.total_time = Time::from_nanos(140);

    let config = ReplayConfig::default();
    for schedule in [ReplaySchedule::elsc(), ReplaySchedule::mem()] {
        let engine = Replayer::default().replay(&trace, schedule);
        let reference = reference_replay_original(&config, &trace, schedule);
        assert_eq!(engine, reference, "divergence under {:?}", schedule.kind);
        let result = engine
            .unwrap_or_else(|e| panic!("replay must complete under {:?}, got {e}", schedule.kind));
        // T1 really did wait for T0's recorded turn.
        assert!(result.event_times[1][0] > result.event_times[0][1]);
    }
}

#[test]
fn deadlocked_trace_reports_structured_stuck_error() {
    let trace = deadlocked_trace();
    let err = Replayer::default()
        .replay(&trace, ReplaySchedule::elsc())
        .unwrap_err();
    let ReplayError::Stuck { cursors } = &err else {
        panic!("expected Stuck, got {err:?}");
    };
    // Both threads hang on their *second* acquisition (event index 1).
    assert_eq!(cursors.len(), 2);
    for (ti, c) in cursors.iter().enumerate() {
        assert_eq!(c.thread, ThreadId::new(ti as u32));
        assert_eq!(
            c.next_event, 1,
            "thread {ti} should hang on its nested acquire"
        );
        assert_eq!(c.total_events, 5);
        assert!(!c.is_finished());
    }
    assert_eq!(
        err.blocked_threads(),
        vec![ThreadId::new(0), ThreadId::new(1)]
    );
    // The reference loop reports the identical structured error.
    let reference_err =
        reference_replay_original(&ReplayConfig::default(), &trace, ReplaySchedule::elsc())
            .unwrap_err();
    assert_eq!(err, reference_err);
}

#[test]
fn step_limit_exhaustion_carries_every_cursor() {
    let trace = record(|b| {
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("lim.c", "work", 1);
        for i in 0..2 {
            b.thread(format!("t{i}"), |t| {
                t.loop_n(6, |l| {
                    l.locked(lock, site, |cs| {
                        cs.read(x);
                    });
                });
            });
        }
    });
    let config = ReplayConfig {
        max_steps: 5,
        ..ReplayConfig::default()
    };
    let err = Replayer::new(config)
        .replay(&trace, ReplaySchedule::elsc())
        .unwrap_err();
    let ReplayError::StepLimitExceeded { limit, cursors } = &err else {
        panic!("expected StepLimitExceeded, got {err:?}");
    };
    assert_eq!(*limit, 5);
    // Every thread's position is reported, replayed a strict prefix.
    assert_eq!(cursors.len(), trace.num_threads());
    for (ti, c) in cursors.iter().enumerate() {
        assert_eq!(c.thread, ThreadId::new(ti as u32));
        assert_eq!(c.total_events, trace.threads[ti].events.len());
        assert!(c.next_event < c.total_events);
    }
    // The display names the first unfinished thread and its event index.
    let rendered = err.to_string();
    assert!(rendered.contains("step limit of 5"));
    assert!(rendered.contains("T0"));
}
