//! Per-thread and whole-execution timing accounts kept by the simulator.

use perfplay_trace::{ThreadId, Time};

/// Timing account of one simulated thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadTiming {
    /// Virtual time at which the thread finished.
    pub finish_time: Time,
    /// Time spent in useful computation and memory accesses.
    pub busy: Time,
    /// Time spent blocked waiting for lock acquisitions.
    pub lock_wait: Time,
    /// Time spent blocked on condition variables and barriers.
    pub sync_wait: Time,
    /// Busy time spent inside spin-wait (`While`) loops — CPU time the paper
    /// counts as resource waste when the spinning is caused by a ULCP.
    pub spin: Time,
}

impl ThreadTiming {
    /// Total time the thread existed (equals `finish_time` since all threads
    /// start at time zero).
    pub fn lifetime(&self) -> Time {
        self.finish_time
    }

    /// Fraction of the thread's lifetime spent blocked (lock + sync waits).
    pub fn wait_fraction(&self) -> f64 {
        (self.lock_wait + self.sync_wait).ratio(self.finish_time)
    }
}

/// Timing account of a whole simulated execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionTiming {
    /// Makespan: the finish time of the last thread.
    pub total_time: Time,
    /// Per-thread accounts, indexed by [`ThreadId::index`].
    pub per_thread: Vec<ThreadTiming>,
}

impl ExecutionTiming {
    /// Returns the account for a thread.
    pub fn thread(&self, thread: ThreadId) -> &ThreadTiming {
        &self.per_thread[thread.index()]
    }

    /// Sum of lock-wait time across threads.
    pub fn total_lock_wait(&self) -> Time {
        self.per_thread.iter().map(|t| t.lock_wait).sum()
    }

    /// Sum of spin time across threads.
    pub fn total_spin(&self) -> Time {
        self.per_thread.iter().map(|t| t.spin).sum()
    }

    /// Sum of busy time across threads.
    pub fn total_busy(&self) -> Time {
        self.per_thread.iter().map(|t| t.busy).sum()
    }

    /// Average per-thread CPU waste (spin time), the denominator the paper
    /// uses for "CPU-time wasting per thread".
    pub fn spin_per_thread(&self) -> Time {
        if self.per_thread.is_empty() {
            Time::ZERO
        } else {
            self.total_spin() / self.per_thread.len() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_timing_fractions() {
        let t = ThreadTiming {
            finish_time: Time::from_nanos(100),
            busy: Time::from_nanos(60),
            lock_wait: Time::from_nanos(30),
            sync_wait: Time::from_nanos(10),
            spin: Time::from_nanos(5),
        };
        assert_eq!(t.lifetime(), Time::from_nanos(100));
        assert!((t.wait_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn execution_timing_aggregates() {
        let timing = ExecutionTiming {
            total_time: Time::from_nanos(200),
            per_thread: vec![
                ThreadTiming {
                    finish_time: Time::from_nanos(200),
                    busy: Time::from_nanos(100),
                    lock_wait: Time::from_nanos(50),
                    sync_wait: Time::ZERO,
                    spin: Time::from_nanos(20),
                },
                ThreadTiming {
                    finish_time: Time::from_nanos(150),
                    busy: Time::from_nanos(90),
                    lock_wait: Time::from_nanos(10),
                    sync_wait: Time::from_nanos(5),
                    spin: Time::from_nanos(10),
                },
            ],
        };
        assert_eq!(timing.total_lock_wait(), Time::from_nanos(60));
        assert_eq!(timing.total_spin(), Time::from_nanos(30));
        assert_eq!(timing.total_busy(), Time::from_nanos(190));
        assert_eq!(timing.spin_per_thread(), Time::from_nanos(15));
        assert_eq!(
            timing.thread(ThreadId::new(1)).finish_time,
            Time::from_nanos(150)
        );
    }

    #[test]
    fn empty_execution_has_zero_spin_per_thread() {
        assert_eq!(ExecutionTiming::default().spin_per_thread(), Time::ZERO);
    }
}
