//! Simulator configuration: the machine cost model.

use perfplay_trace::Time;

/// Cost model of the simulated multicore machine.
///
/// The defaults approximate a commodity x86 server (the paper's 2×quad-core
/// Xeon): tens of nanoseconds for an uncontended lock operation, an extra
/// cache-line-transfer penalty when a lock or object migrates between cores,
/// and a few nanoseconds per shared-memory access.
///
/// All performance results in this reproduction are *shapes*, not absolute
/// numbers; the cost model only has to keep the relative magnitudes sane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Cost of acquiring a free lock.
    pub lock_acquire_cost: Time,
    /// Cost of releasing a lock.
    pub lock_release_cost: Time,
    /// Extra latency when ownership of a lock moves between threads
    /// (cache-line transfer / futex hand-off).
    pub lock_handoff_cost: Time,
    /// Cost of one shared-memory read or write.
    pub mem_access_cost: Time,
    /// Cost charged for a condition-variable signal/broadcast.
    pub cond_signal_cost: Time,
    /// Cost charged when a barrier releases its waiters.
    pub barrier_release_cost: Time,
    /// Seed for tie-breaking when several threads contend at exactly the same
    /// virtual instant. Recording runs use a fixed seed so the recorded trace
    /// is deterministic; free-running (ORIG-S style) replays vary it.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            lock_acquire_cost: Time::from_nanos(25),
            lock_release_cost: Time::from_nanos(15),
            lock_handoff_cost: Time::from_nanos(60),
            mem_access_cost: Time::from_nanos(8),
            cond_signal_cost: Time::from_nanos(30),
            barrier_release_cost: Time::from_nanos(40),
            seed: 0x5eed_0001,
        }
    }
}

impl SimConfig {
    /// Returns the default configuration with a different tie-break seed.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_nonzero_and_ordered() {
        let c = SimConfig::default();
        assert!(c.lock_acquire_cost > Time::ZERO);
        assert!(c.lock_handoff_cost > c.lock_release_cost);
        assert!(c.mem_access_cost > Time::ZERO);
    }

    #[test]
    fn with_seed_only_changes_seed() {
        let c = SimConfig::with_seed(7);
        let d = SimConfig::default();
        assert_eq!(c.seed, 7);
        assert_eq!(c.lock_acquire_cost, d.lock_acquire_cost);
        assert_eq!(c.mem_access_cost, d.mem_access_cost);
    }
}
