//! Synchronization state of the simulated machine: locks, condition
//! variables and barriers, plus the lock-grant arbiter hook.

use std::collections::BTreeMap;

use perfplay_trace::{BarrierId, CondId, LockId, ThreadId, Time};

/// A pending lock request from a blocked thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitingRequest {
    /// Requesting thread.
    pub thread: ThreadId,
    /// Virtual time at which the request was made.
    pub requested_at: Time,
}

/// Policy deciding which waiting thread receives a lock when it is released.
///
/// The program executor uses [`FifoArbiter`]; replay schedulers provide their
/// own arbiters (ELSC grants along the recorded schedule, SYNC-S along a
/// deterministic per-input order, ORIG-S breaks ties randomly).
pub trait LockArbiter {
    /// Chooses the index (into `waiters`) of the thread to grant `lock` to
    /// next. `waiters` is non-empty and ordered by request time.
    fn choose(&mut self, lock: LockId, waiters: &[WaitingRequest]) -> usize;
}

/// First-come-first-served arbitration with deterministic seeded tie-breaks.
#[derive(Debug, Clone)]
pub struct FifoArbiter {
    state: u64,
}

impl FifoArbiter {
    /// Creates an arbiter with the given tie-break seed.
    pub fn new(seed: u64) -> Self {
        FifoArbiter {
            state: seed | 1, // xorshift state must be non-zero
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: cheap, deterministic, and good enough for tie-breaks.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl LockArbiter for FifoArbiter {
    fn choose(&mut self, _lock: LockId, waiters: &[WaitingRequest]) -> usize {
        let earliest = waiters
            .iter()
            .map(|w| w.requested_at)
            .min()
            .expect("waiters is non-empty");
        let tied: Vec<usize> = waiters
            .iter()
            .enumerate()
            .filter(|(_, w)| w.requested_at == earliest)
            .map(|(i, _)| i)
            .collect();
        if tied.len() == 1 {
            tied[0]
        } else {
            tied[(self.next_u64() % tied.len() as u64) as usize]
        }
    }
}

/// State of one simulated lock.
#[derive(Debug, Clone, Default)]
pub struct LockState {
    /// Thread currently holding the lock, if any.
    pub holder: Option<ThreadId>,
    /// Last thread to have held the lock (for hand-off cost accounting).
    pub last_holder: Option<ThreadId>,
    /// Pending requests, ordered by request time.
    pub waiters: Vec<WaitingRequest>,
    /// Number of grants so far.
    pub grants: u64,
}

/// Table of all lock states, indexed by [`LockId`].
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    locks: BTreeMap<LockId, LockState>,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the state for a lock, creating it on first use.
    pub fn state_mut(&mut self, lock: LockId) -> &mut LockState {
        self.locks.entry(lock).or_default()
    }

    /// Returns the state for a lock if it has been used.
    pub fn state(&self, lock: LockId) -> Option<&LockState> {
        self.locks.get(&lock)
    }

    /// Returns true if the lock is currently held.
    pub fn is_held(&self, lock: LockId) -> bool {
        self.locks
            .get(&lock)
            .map(|s| s.holder.is_some())
            .unwrap_or(false)
    }

    /// Attempts to acquire `lock` for `thread` at time `now`.
    ///
    /// Returns `true` if the lock was granted immediately; otherwise the
    /// thread is queued as a waiter.
    pub fn acquire_or_wait(&mut self, lock: LockId, thread: ThreadId, now: Time) -> bool {
        let st = self.state_mut(lock);
        if st.holder.is_none() {
            st.holder = Some(thread);
            st.grants += 1;
            true
        } else {
            st.waiters.push(WaitingRequest {
                thread,
                requested_at: now,
            });
            st.waiters.sort_by_key(|w| (w.requested_at, w.thread));
            false
        }
    }

    /// Releases `lock` held by `thread` and, if any thread is waiting, uses
    /// the arbiter to pick the next holder.
    ///
    /// Returns the woken thread and its original request time, if any.
    ///
    /// # Panics
    ///
    /// Panics if `thread` does not hold the lock (the executor validates the
    /// program, so this indicates an internal bug).
    pub fn release(
        &mut self,
        lock: LockId,
        thread: ThreadId,
        arbiter: &mut dyn LockArbiter,
    ) -> Option<WaitingRequest> {
        let st = self.state_mut(lock);
        assert_eq!(
            st.holder,
            Some(thread),
            "release of {lock} by {thread} which does not hold it"
        );
        st.last_holder = Some(thread);
        st.holder = None;
        if st.waiters.is_empty() {
            return None;
        }
        let idx = arbiter.choose(lock, &st.waiters);
        let woken = st.waiters.remove(idx);
        st.holder = Some(woken.thread);
        st.last_holder = Some(thread);
        st.grants += 1;
        Some(woken)
    }

    /// Whether granting `lock` to `thread` crosses threads (and therefore
    /// pays the hand-off cost).
    pub fn handoff_from_other(&self, lock: LockId, thread: ThreadId) -> bool {
        self.locks
            .get(&lock)
            .and_then(|s| s.last_holder)
            .map(|t| t != thread)
            .unwrap_or(false)
    }
}

/// State of one condition variable: the set of threads currently waiting.
#[derive(Debug, Clone, Default)]
pub struct CondState {
    /// Threads blocked in `cond_wait`, with the lock each must re-acquire.
    pub waiters: Vec<(ThreadId, LockId)>,
}

/// Table of condition variables.
#[derive(Debug, Clone, Default)]
pub struct CondTable {
    conds: BTreeMap<CondId, CondState>,
}

impl CondTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `thread` as waiting on `cond`, remembering the lock to
    /// re-acquire on wake-up.
    pub fn wait(&mut self, cond: CondId, thread: ThreadId, lock: LockId) {
        self.conds
            .entry(cond)
            .or_default()
            .waiters
            .push((thread, lock));
    }

    /// Wakes one waiter (FIFO) or all waiters, returning the woken set.
    pub fn signal(&mut self, cond: CondId, broadcast: bool) -> Vec<(ThreadId, LockId)> {
        let st = self.conds.entry(cond).or_default();
        if st.waiters.is_empty() {
            Vec::new()
        } else if broadcast {
            std::mem::take(&mut st.waiters)
        } else {
            vec![st.waiters.remove(0)]
        }
    }

    /// Number of threads currently waiting on `cond`.
    pub fn waiter_count(&self, cond: CondId) -> usize {
        self.conds.get(&cond).map(|s| s.waiters.len()).unwrap_or(0)
    }
}

/// State of one barrier.
#[derive(Debug, Clone, Default)]
pub struct BarrierState {
    /// Threads that have arrived and are blocked.
    pub arrived: Vec<(ThreadId, Time)>,
}

/// Table of barriers.
#[derive(Debug, Clone, Default)]
pub struct BarrierTable {
    barriers: BTreeMap<BarrierId, BarrierState>,
}

impl BarrierTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an arrival. If this arrival completes the barrier (reaches
    /// `participants`), returns all arrivals (including this one) together
    /// with the release time (the latest arrival time); otherwise `None`.
    pub fn arrive(
        &mut self,
        barrier: BarrierId,
        thread: ThreadId,
        now: Time,
        participants: usize,
    ) -> Option<(Vec<(ThreadId, Time)>, Time)> {
        let st = self.barriers.entry(barrier).or_default();
        st.arrived.push((thread, now));
        if st.arrived.len() >= participants {
            let all = std::mem::take(&mut st.arrived);
            let release = all.iter().map(|(_, t)| *t).max().unwrap_or(now);
            Some((all, release))
        } else {
            None
        }
    }

    /// Number of threads currently blocked at `barrier`.
    pub fn arrived_count(&self, barrier: BarrierId) -> usize {
        self.barriers
            .get(&barrier)
            .map(|s| s.arrived.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn lock_acquire_release_cycle() {
        let mut table = LockTable::new();
        let mut arb = FifoArbiter::new(1);
        let l = LockId::new(0);
        assert!(!table.is_held(l));
        assert!(table.acquire_or_wait(l, t(0), Time::from_nanos(1)));
        assert!(table.is_held(l));
        // Second thread must wait.
        assert!(!table.acquire_or_wait(l, t(1), Time::from_nanos(2)));
        assert_eq!(table.state(l).unwrap().waiters.len(), 1);
        // Release hands over to the waiter.
        let woken = table.release(l, t(0), &mut arb).unwrap();
        assert_eq!(woken.thread, t(1));
        assert!(table.is_held(l));
        assert!(table.handoff_from_other(l, t(1)));
        assert!(table.release(l, t(1), &mut arb).is_none());
        assert!(!table.is_held(l));
        assert_eq!(table.state(l).unwrap().grants, 2);
    }

    #[test]
    fn fifo_arbiter_prefers_earliest_request() {
        let mut table = LockTable::new();
        let mut arb = FifoArbiter::new(3);
        let l = LockId::new(0);
        assert!(table.acquire_or_wait(l, t(0), Time::from_nanos(0)));
        assert!(!table.acquire_or_wait(l, t(2), Time::from_nanos(9)));
        assert!(!table.acquire_or_wait(l, t(1), Time::from_nanos(4)));
        let woken = table.release(l, t(0), &mut arb).unwrap();
        assert_eq!(woken.thread, t(1));
    }

    #[test]
    fn fifo_arbiter_tie_breaks_deterministically_per_seed() {
        let waiters = vec![
            WaitingRequest {
                thread: t(0),
                requested_at: Time::from_nanos(5),
            },
            WaitingRequest {
                thread: t(1),
                requested_at: Time::from_nanos(5),
            },
        ];
        let mut a1 = FifoArbiter::new(42);
        let mut a2 = FifoArbiter::new(42);
        let pick1 = a1.choose(LockId::new(0), &waiters);
        let pick2 = a2.choose(LockId::new(0), &waiters);
        assert_eq!(pick1, pick2);
        assert!(pick1 < 2);
    }

    #[test]
    #[should_panic(expected = "does not hold it")]
    fn release_by_non_holder_panics() {
        let mut table = LockTable::new();
        let mut arb = FifoArbiter::new(1);
        let l = LockId::new(0);
        table.acquire_or_wait(l, t(0), Time::ZERO);
        table.release(l, t(1), &mut arb);
    }

    #[test]
    fn condvar_signal_and_broadcast() {
        let mut cv = CondTable::new();
        let c = CondId::new(0);
        let l = LockId::new(0);
        cv.wait(c, t(0), l);
        cv.wait(c, t(1), l);
        cv.wait(c, t(2), l);
        assert_eq!(cv.waiter_count(c), 3);
        let one = cv.signal(c, false);
        assert_eq!(one, vec![(t(0), l)]);
        let rest = cv.signal(c, true);
        assert_eq!(rest.len(), 2);
        assert_eq!(cv.waiter_count(c), 0);
        assert!(cv.signal(c, false).is_empty());
    }

    #[test]
    fn barrier_releases_when_full() {
        let mut bt = BarrierTable::new();
        let b = BarrierId::new(0);
        assert!(bt.arrive(b, t(0), Time::from_nanos(5), 3).is_none());
        assert!(bt.arrive(b, t(1), Time::from_nanos(9), 3).is_none());
        assert_eq!(bt.arrived_count(b), 2);
        let (all, release) = bt.arrive(b, t(2), Time::from_nanos(7), 3).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(release, Time::from_nanos(9));
        assert_eq!(bt.arrived_count(b), 0);
    }
}
