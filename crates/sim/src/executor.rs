//! The program interpreter: executes a lock program on the simulated
//! multicore machine, producing a recorded [`Trace`] and timing accounts.
//!
//! The executor is a discrete-event simulation. Every thread owns a virtual
//! clock; the driver always advances the runnable thread with the smallest
//! clock, which guarantees that synchronization requests are observed in
//! global virtual-time order. Lock hand-offs, condition variables and
//! barriers introduce the inter-thread waiting the ULCP analysis later
//! quantifies.

use std::collections::BTreeMap;

use perfplay_program::{Cond, LocalId, Program, ProgramError, Stmt, ValueSource};
use perfplay_trace::{
    BarrierId, CodeSiteId, Event, LockGrant, LockId, ObjectId, ThreadId, Time, Trace, TraceMeta,
};

use crate::accounting::{ExecutionTiming, ThreadTiming};
use crate::config::SimConfig;
use crate::sync::{BarrierTable, CondTable, FifoArbiter, LockTable};

/// Default cap on interpreter steps, far above anything the bundled
/// workloads need; prevents runaway simulations of malformed programs.
pub const DEFAULT_MAX_STEPS: u64 = 50_000_000;

/// Errors produced while executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program failed structural validation.
    InvalidProgram(ProgramError),
    /// Every unfinished thread is blocked; no progress is possible.
    Deadlock {
        /// Threads that are still blocked.
        blocked: Vec<ThreadId>,
    },
    /// The interpreter step limit was exceeded.
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// A thread acquired a lock it already holds (the IR has no recursive
    /// locks).
    RecursiveLock {
        /// Offending thread.
        thread: ThreadId,
        /// The lock acquired twice.
        lock: LockId,
    },
    /// `CondWait` was executed without holding the named lock.
    CondWaitWithoutLock {
        /// Offending thread.
        thread: ThreadId,
        /// The lock that should have been held.
        lock: LockId,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            SimError::Deadlock { blocked } => {
                write!(f, "deadlock: {} thread(s) blocked", blocked.len())
            }
            SimError::StepLimitExceeded { limit } => write!(f, "step limit of {limit} exceeded"),
            SimError::RecursiveLock { thread, lock } => {
                write!(f, "{thread} recursively acquired {lock}")
            }
            SimError::CondWaitWithoutLock { thread, lock } => {
                write!(f, "{thread} waited on a condition without holding {lock}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ProgramError> for SimError {
    fn from(e: ProgramError) -> Self {
        SimError::InvalidProgram(e)
    }
}

/// The outcome of executing a program.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// The recorded trace (events, code sites, lock-grant schedule).
    pub trace: Trace,
    /// Timing accounts of the execution.
    pub timing: ExecutionTiming,
    /// Final values of all shared objects.
    pub final_memory: BTreeMap<ObjectId, i64>,
}

/// Executes [`Program`]s on the simulated machine.
///
/// ```
/// use perfplay_program::ProgramBuilder;
/// use perfplay_sim::{Executor, SimConfig};
///
/// let mut b = ProgramBuilder::new("two-readers");
/// let lock = b.lock("m");
/// let x = b.shared("x", 0);
/// let site = b.site("demo.c", "reader", 1);
/// for i in 0..2 {
///     b.thread(format!("t{i}"), |t| {
///         t.locked(lock, site, |cs| {
///             cs.read(x);
///             cs.compute_ns(100);
///         });
///     });
/// }
/// let program = b.build();
/// let result = Executor::new(&program, SimConfig::default()).run()?;
/// assert_eq!(result.trace.num_acquisitions(), 2);
/// # Ok::<(), perfplay_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Executor<'p> {
    program: &'p Program,
    config: SimConfig,
    max_steps: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    BlockedOnLock,
    BlockedOnCond,
    BlockedOnBarrier,
    Finished,
}

#[derive(Debug)]
enum Frame<'p> {
    Seq {
        stmts: &'p [Stmt],
        idx: usize,
    },
    LoopCtl {
        body: &'p [Stmt],
        remaining: u32,
    },
    WhileCtl {
        cond: Cond,
        body: &'p [Stmt],
        remaining: u32,
    },
    SectionEnd {
        lock: LockId,
    },
    SpinEnd,
}

#[derive(Debug)]
enum Pending<'p> {
    /// Waiting to enter a critical section.
    Lock {
        lock: LockId,
        site: CodeSiteId,
        body: &'p [Stmt],
        requested_at: Time,
    },
    /// Waiting to re-acquire a lock after a condition wait.
    Reacquire {
        lock: LockId,
        site: CodeSiteId,
        requested_at: Time,
    },
}

#[derive(Debug)]
struct ThreadRun<'p> {
    id: ThreadId,
    frames: Vec<Frame<'p>>,
    locals: BTreeMap<LocalId, i64>,
    status: Status,
    clock: Time,
    held: Vec<(LockId, CodeSiteId)>,
    pending: Option<Pending<'p>>,
    spin_depth: usize,
    timing: ThreadTiming,
}

enum Action<'p> {
    Exec(&'p Stmt),
    StartLoopIter(&'p [Stmt]),
    EvalWhile { cond: Cond, body: &'p [Stmt] },
    EndSection(LockId),
    EndSpin,
    Pop,
    Finish,
}

struct Run<'p> {
    config: SimConfig,
    program: &'p Program,
    threads: Vec<ThreadRun<'p>>,
    memory: BTreeMap<ObjectId, i64>,
    locks: LockTable,
    conds: CondTable,
    barriers: BarrierTable,
    arbiter: FifoArbiter,
    trace: Trace,
    grant_seq: u64,
}

impl<'p> Executor<'p> {
    /// Creates an executor for the given program and machine model.
    pub fn new(program: &'p Program, config: SimConfig) -> Self {
        Executor {
            program,
            config,
            max_steps: DEFAULT_MAX_STEPS,
        }
    }

    /// Overrides the interpreter step limit.
    pub fn max_steps(mut self, limit: u64) -> Self {
        self.max_steps = limit;
        self
    }

    /// Runs the program to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the program is invalid, deadlocks, exceeds the
    /// step limit, or misuses locks.
    pub fn run(&self) -> Result<ExecutionResult, SimError> {
        self.program.validate()?;
        let mut run = Run::new(self.program, self.config);
        let mut steps: u64 = 0;
        loop {
            steps += 1;
            if steps > self.max_steps {
                return Err(SimError::StepLimitExceeded {
                    limit: self.max_steps,
                });
            }
            let next = run
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Ready)
                .min_by_key(|(i, t)| (t.clock, *i))
                .map(|(i, _)| i);
            match next {
                Some(ti) => run.step(ti)?,
                None => {
                    let blocked: Vec<ThreadId> = run
                        .threads
                        .iter()
                        .filter(|t| t.status != Status::Finished)
                        .map(|t| t.id)
                        .collect();
                    if blocked.is_empty() {
                        break;
                    }
                    return Err(SimError::Deadlock { blocked });
                }
            }
        }
        Ok(run.finish())
    }
}

impl<'p> Run<'p> {
    fn new(program: &'p Program, config: SimConfig) -> Self {
        let num_threads = program.num_threads();
        let mut trace = Trace::new(
            TraceMeta {
                program: program.name.clone(),
                num_threads,
                num_locks: program.num_locks(),
                num_objects: program.num_objects(),
                input: program.input.clone(),
            },
            num_threads,
        );
        trace.sites = program.sites.clone();
        let memory = program
            .objects
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjectId::new(i as u64), o.init))
            .collect();
        let threads = program
            .threads
            .iter()
            .enumerate()
            .map(|(i, spec)| ThreadRun {
                id: ThreadId::new(i as u32),
                frames: vec![Frame::Seq {
                    stmts: &spec.body,
                    idx: 0,
                }],
                locals: BTreeMap::new(),
                status: Status::Ready,
                clock: Time::ZERO,
                held: Vec::new(),
                pending: None,
                spin_depth: 0,
                timing: ThreadTiming::default(),
            })
            .collect();
        Run {
            arbiter: FifoArbiter::new(config.seed),
            config,
            program,
            threads,
            memory,
            locks: LockTable::new(),
            conds: CondTable::new(),
            barriers: BarrierTable::new(),
            trace,
            grant_seq: 0,
        }
    }

    fn emit(&mut self, ti: usize, event: Event) {
        let at = self.threads[ti].clock;
        self.trace.threads[ti].push(at, event);
    }

    fn charge(&mut self, ti: usize, cost: Time, busy: bool) {
        let t = &mut self.threads[ti];
        t.clock += cost;
        if busy {
            t.timing.busy += cost;
            if t.spin_depth > 0 {
                t.timing.spin += cost;
            }
        }
    }

    /// Completes a lock acquisition that the lock table has already granted.
    fn complete_acquire(&mut self, ti: usize, lock: LockId, site: CodeSiteId, start: Time) {
        let handoff = self.locks.handoff_from_other(lock, self.threads[ti].id);
        let cost = self.config.lock_acquire_cost
            + if handoff {
                self.config.lock_handoff_cost
            } else {
                Time::ZERO
            };
        {
            let t = &mut self.threads[ti];
            t.clock = t.clock.max(start) + cost;
            t.timing.busy += self.config.lock_acquire_cost;
            if t.spin_depth > 0 {
                t.timing.spin += self.config.lock_acquire_cost;
            }
            t.held.push((lock, site));
        }
        self.emit(ti, Event::LockAcquire { lock, site });
        let event_index = self.trace.threads[ti].events.len() - 1;
        let at = self.threads[ti].clock;
        self.trace.lock_schedule.push(LockGrant {
            seq: self.grant_seq,
            lock,
            thread: self.threads[ti].id,
            event_index,
            at,
        });
        self.grant_seq += 1;
    }

    /// Releases `lock` for thread `ti`, waking a waiter if one exists.
    fn do_release(&mut self, ti: usize, lock: LockId) {
        self.charge(ti, self.config.lock_release_cost, true);
        self.emit(ti, Event::LockRelease { lock });
        if let Some(pos) = self.threads[ti].held.iter().rposition(|(l, _)| *l == lock) {
            self.threads[ti].held.remove(pos);
        }
        let release_time = self.threads[ti].clock;
        let id = self.threads[ti].id;
        if let Some(woken) = self.locks.release(lock, id, &mut self.arbiter) {
            self.wake_lock_waiter(woken.thread, release_time);
        }
    }

    /// Resumes a thread whose pending lock request has just been granted.
    fn wake_lock_waiter(&mut self, thread: ThreadId, available_at: Time) {
        let wi = thread.index();
        let pending = self.threads[wi]
            .pending
            .take()
            .expect("woken thread must have a pending lock request");
        match pending {
            Pending::Lock {
                lock,
                site,
                body,
                requested_at,
            } => {
                let start = self.threads[wi].clock.max(available_at);
                self.threads[wi].timing.lock_wait += start.saturating_sub(requested_at);
                self.complete_acquire(wi, lock, site, start);
                self.threads[wi].frames.push(Frame::SectionEnd { lock });
                self.threads[wi].frames.push(Frame::Seq {
                    stmts: body,
                    idx: 0,
                });
                self.threads[wi].status = Status::Ready;
            }
            Pending::Reacquire {
                lock,
                site,
                requested_at,
            } => {
                let start = self.threads[wi].clock.max(available_at);
                self.threads[wi].timing.lock_wait += start.saturating_sub(requested_at);
                self.complete_acquire(wi, lock, site, start);
                self.threads[wi].status = Status::Ready;
            }
        }
    }

    fn eval_source(&mut self, ti: usize, src: ValueSource) -> i64 {
        match src {
            ValueSource::Const(c) => c,
            ValueSource::Local(l) => self.threads[ti].locals.get(&l).copied().unwrap_or(0),
            ValueSource::Shared(obj) => {
                self.charge(ti, self.config.mem_access_cost, true);
                let value = self.memory.get(&obj).copied().unwrap_or(0);
                self.emit(ti, Event::Read { obj, value });
                value
            }
        }
    }

    fn eval_cond(&mut self, ti: usize, cond: Cond) -> bool {
        let lhs = self.eval_source(ti, cond.lhs);
        cond.op.eval(lhs, cond.rhs)
    }

    fn exec_stmt(&mut self, ti: usize, stmt: &'p Stmt) -> Result<(), SimError> {
        match stmt {
            Stmt::Compute { cost } => {
                self.charge(ti, *cost, true);
                self.emit(ti, Event::Compute { cost: *cost });
            }
            Stmt::Lock { lock, site, body } => {
                let id = self.threads[ti].id;
                if self.threads[ti].held.iter().any(|(l, _)| l == lock) {
                    return Err(SimError::RecursiveLock {
                        thread: id,
                        lock: *lock,
                    });
                }
                let now = self.threads[ti].clock;
                if self.locks.acquire_or_wait(*lock, id, now) {
                    self.complete_acquire(ti, *lock, *site, now);
                    self.threads[ti]
                        .frames
                        .push(Frame::SectionEnd { lock: *lock });
                    self.threads[ti].frames.push(Frame::Seq {
                        stmts: body,
                        idx: 0,
                    });
                } else {
                    self.threads[ti].status = Status::BlockedOnLock;
                    self.threads[ti].pending = Some(Pending::Lock {
                        lock: *lock,
                        site: *site,
                        body,
                        requested_at: now,
                    });
                }
            }
            Stmt::Read { obj, into } => {
                self.charge(ti, self.config.mem_access_cost, true);
                let value = self.memory.get(obj).copied().unwrap_or(0);
                self.emit(ti, Event::Read { obj: *obj, value });
                if let Some(local) = into {
                    self.threads[ti].locals.insert(*local, value);
                }
            }
            Stmt::Write { obj, op } => {
                self.charge(ti, self.config.mem_access_cost, true);
                let current = self.memory.get(obj).copied().unwrap_or(0);
                let value = op.apply(current);
                self.memory.insert(*obj, value);
                self.emit(
                    ti,
                    Event::Write {
                        obj: *obj,
                        op: *op,
                        value,
                    },
                );
            }
            Stmt::SetLocal { local, value } => {
                self.threads[ti].locals.insert(*local, *value);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let taken = if self.eval_cond(ti, *cond) {
                    then_branch
                } else {
                    else_branch
                };
                if !taken.is_empty() {
                    self.threads[ti].frames.push(Frame::Seq {
                        stmts: taken,
                        idx: 0,
                    });
                }
            }
            Stmt::Loop { count, body } => {
                if *count > 0 && !body.is_empty() {
                    self.threads[ti].frames.push(Frame::LoopCtl {
                        body,
                        remaining: *count,
                    });
                }
            }
            Stmt::While {
                cond,
                body,
                max_iters,
            } => {
                self.threads[ti].frames.push(Frame::WhileCtl {
                    cond: *cond,
                    body,
                    remaining: *max_iters,
                });
            }
            Stmt::CondWait { cond, lock } => {
                let id = self.threads[ti].id;
                let Some(&(_, site)) = self.threads[ti].held.iter().rev().find(|(l, _)| l == lock)
                else {
                    return Err(SimError::CondWaitWithoutLock {
                        thread: id,
                        lock: *lock,
                    });
                };
                self.emit(
                    ti,
                    Event::CondWait {
                        cond: *cond,
                        lock: *lock,
                    },
                );
                // Release the lock, as pthread_cond_wait does.
                self.do_release(ti, *lock);
                let now = self.threads[ti].clock;
                self.conds.wait(*cond, id, *lock);
                self.threads[ti].status = Status::BlockedOnCond;
                self.threads[ti].pending = Some(Pending::Reacquire {
                    lock: *lock,
                    site,
                    requested_at: now,
                });
            }
            Stmt::CondSignal { cond, broadcast } => {
                self.charge(ti, self.config.cond_signal_cost, true);
                self.emit(
                    ti,
                    Event::CondSignal {
                        cond: *cond,
                        broadcast: *broadcast,
                    },
                );
                let signal_time = self.threads[ti].clock;
                let woken = self.conds.signal(*cond, *broadcast);
                for (wthread, wlock) in woken {
                    let wi = wthread.index();
                    let waiter_clock = self.threads[wi].clock;
                    let req_at = waiter_clock.max(signal_time);
                    self.threads[wi].timing.sync_wait += req_at.saturating_sub(waiter_clock);
                    self.threads[wi].clock = req_at;
                    if let Some(Pending::Reacquire { requested_at, .. }) =
                        self.threads[wi].pending.as_mut()
                    {
                        *requested_at = req_at;
                    }
                    if self.locks.acquire_or_wait(wlock, wthread, req_at) {
                        self.wake_lock_waiter(wthread, req_at);
                    } else {
                        self.threads[wi].status = Status::BlockedOnLock;
                    }
                }
            }
            Stmt::Barrier { barrier } => {
                self.exec_barrier(ti, *barrier);
            }
            Stmt::SkipRegion { site, cost } => {
                self.charge(ti, *cost, true);
                self.emit(
                    ti,
                    Event::SkipRegion {
                        site: *site,
                        saved_cost: *cost,
                    },
                );
            }
            Stmt::Checkpoint { id } => {
                self.emit(ti, Event::Checkpoint { id: *id });
            }
        }
        Ok(())
    }

    fn exec_barrier(&mut self, ti: usize, barrier: BarrierId) {
        let participants = self.program.barriers[barrier.index()].participants;
        let now = self.threads[ti].clock;
        let id = self.threads[ti].id;
        match self.barriers.arrive(barrier, id, now, participants) {
            None => {
                self.threads[ti].status = Status::BlockedOnBarrier;
            }
            Some((all, release)) => {
                let resume = release + self.config.barrier_release_cost;
                for (wthread, arrival) in all {
                    let wi = wthread.index();
                    self.threads[wi].timing.sync_wait += resume.saturating_sub(arrival);
                    self.threads[wi].clock = resume;
                    self.emit(wi, Event::BarrierWait { barrier });
                    self.threads[wi].status = Status::Ready;
                }
            }
        }
    }

    fn step(&mut self, ti: usize) -> Result<(), SimError> {
        let action: Action<'p> = {
            let t = &mut self.threads[ti];
            match t.frames.last_mut() {
                None => Action::Finish,
                Some(Frame::Seq { stmts, idx }) => {
                    if *idx < stmts.len() {
                        let stmt = &stmts[*idx];
                        *idx += 1;
                        Action::Exec(stmt)
                    } else {
                        Action::Pop
                    }
                }
                Some(Frame::LoopCtl { body, remaining }) => {
                    if *remaining > 0 {
                        *remaining -= 1;
                        Action::StartLoopIter(body)
                    } else {
                        Action::Pop
                    }
                }
                Some(Frame::WhileCtl {
                    cond,
                    body,
                    remaining,
                }) => {
                    if *remaining == 0 {
                        Action::Pop
                    } else {
                        *remaining -= 1;
                        Action::EvalWhile { cond: *cond, body }
                    }
                }
                Some(Frame::SectionEnd { lock }) => Action::EndSection(*lock),
                Some(Frame::SpinEnd) => Action::EndSpin,
            }
        };
        match action {
            Action::Exec(stmt) => self.exec_stmt(ti, stmt)?,
            Action::StartLoopIter(body) => {
                self.threads[ti].frames.push(Frame::Seq {
                    stmts: body,
                    idx: 0,
                });
            }
            Action::EvalWhile { cond, body } => {
                if self.eval_cond(ti, cond) {
                    self.threads[ti].spin_depth += 1;
                    self.threads[ti].frames.push(Frame::SpinEnd);
                    self.threads[ti].frames.push(Frame::Seq {
                        stmts: body,
                        idx: 0,
                    });
                } else {
                    // Condition no longer holds: abandon the loop.
                    self.threads[ti].frames.pop();
                }
            }
            Action::EndSection(lock) => {
                self.threads[ti].frames.pop();
                self.do_release(ti, lock);
            }
            Action::EndSpin => {
                self.threads[ti].frames.pop();
                self.threads[ti].spin_depth = self.threads[ti].spin_depth.saturating_sub(1);
            }
            Action::Pop => {
                self.threads[ti].frames.pop();
            }
            Action::Finish => {
                self.emit(ti, Event::ThreadExit);
                let t = &mut self.threads[ti];
                t.status = Status::Finished;
                t.timing.finish_time = t.clock;
            }
        }
        Ok(())
    }

    fn finish(mut self) -> ExecutionResult {
        let total_time = self
            .threads
            .iter()
            .map(|t| t.timing.finish_time)
            .max()
            .unwrap_or(Time::ZERO);
        self.trace.total_time = total_time;
        for (i, t) in self.threads.iter().enumerate() {
            self.trace.threads[i].finish_time = t.timing.finish_time;
        }
        let timing = ExecutionTiming {
            total_time,
            per_thread: self.threads.iter().map(|t| t.timing).collect(),
        };
        ExecutionResult {
            trace: self.trace,
            timing,
            final_memory: self.memory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_program::ProgramBuilder;
    use perfplay_trace::extract_critical_sections;

    fn run(program: &Program) -> ExecutionResult {
        Executor::new(program, SimConfig::default()).run().unwrap()
    }

    #[test]
    fn single_thread_compute_only() {
        let mut b = ProgramBuilder::new("compute");
        b.thread("t0", |t| {
            t.compute_ns(100);
            t.compute_ns(50);
        });
        let p = b.build();
        let r = run(&p);
        assert_eq!(r.timing.total_time, Time::from_nanos(150));
        assert_eq!(r.timing.per_thread[0].busy, Time::from_nanos(150));
        assert_eq!(r.trace.num_events(), 3); // 2 computes + exit
        assert!(r.trace.validate().is_ok());
    }

    #[test]
    fn contended_lock_serializes_critical_sections() {
        let mut b = ProgramBuilder::new("contended");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("c.c", "inc", 1);
        for i in 0..2 {
            b.thread(format!("t{i}"), |t| {
                t.locked(lock, site, |cs| {
                    cs.write_add(x, 1);
                    cs.compute_ns(1_000);
                });
            });
        }
        let p = b.build();
        let r = run(&p);
        // Both increments applied.
        assert_eq!(r.final_memory[&ObjectId::new(0)], 2);
        // The two 1000ns bodies cannot overlap: total time must exceed 2000ns.
        assert!(r.timing.total_time > Time::from_nanos(2_000));
        // Exactly one thread waited for the lock.
        let waits: Vec<Time> = r.timing.per_thread.iter().map(|t| t.lock_wait).collect();
        assert!(waits.iter().filter(|w| **w > Time::ZERO).count() == 1);
        // Grant schedule is consistent and ordered.
        assert_eq!(r.trace.lock_schedule.len(), 2);
        assert!(r.trace.lock_schedule[0].at <= r.trace.lock_schedule[1].at);
        assert!(r.trace.validate().is_ok());
    }

    #[test]
    fn uncontended_threads_run_in_parallel() {
        let mut b = ProgramBuilder::new("parallel");
        let l0 = b.lock("m0");
        let l1 = b.lock("m1");
        let site = b.site("p.c", "work", 1);
        let x = b.shared("x", 0);
        let y = b.shared("y", 0);
        b.thread("t0", |t| {
            t.locked(l0, site, |cs| {
                cs.write_add(x, 1);
                cs.compute_us(10);
            });
        });
        b.thread("t1", |t| {
            t.locked(l1, site, |cs| {
                cs.write_add(y, 1);
                cs.compute_us(10);
            });
        });
        let p = b.build();
        let r = run(&p);
        // Different locks: the 10us bodies overlap almost entirely.
        assert!(r.timing.total_time < Time::from_micros(12));
        assert_eq!(r.timing.total_lock_wait(), Time::ZERO);
    }

    #[test]
    fn branch_on_shared_value_takes_correct_arm() {
        let mut b = ProgramBuilder::new("branch");
        let lock = b.lock("m");
        let flag = b.shared("flag", 0);
        let counter = b.shared("counter", 0);
        let site = b.site("b.c", "f", 1);
        b.thread("t0", |t| {
            t.locked(lock, site, |cs| {
                let v = cs.read_into(flag);
                cs.if_else(
                    Cond::eq(ValueSource::Local(v), 1),
                    |then| {
                        then.write_add(counter, 100);
                    },
                    |els| {
                        els.write_add(counter, 1);
                    },
                );
            });
        });
        let p = b.build();
        let r = run(&p);
        // flag is 0, so the else branch runs.
        assert_eq!(r.final_memory[&ObjectId::new(1)], 1);
    }

    #[test]
    fn loops_repeat_bodies() {
        let mut b = ProgramBuilder::new("loops");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("l.c", "f", 1);
        b.thread("t0", |t| {
            t.loop_n(5, |l| {
                l.locked(lock, site, |cs| {
                    cs.write_add(x, 1);
                });
            });
        });
        let p = b.build();
        let r = run(&p);
        assert_eq!(r.final_memory[&ObjectId::new(0)], 5);
        assert_eq!(r.trace.num_acquisitions(), 5);
        let sections = extract_critical_sections(&r.trace);
        assert_eq!(sections.len(), 5);
    }

    #[test]
    fn spin_wait_until_flag_set_accumulates_spin_time() {
        let mut b = ProgramBuilder::new("spin");
        let lock = b.lock("m");
        let flag = b.shared("flag", 0);
        let site_spin = b.site("s.c", "spin", 1);
        let site_set = b.site("s.c", "setter", 2);
        b.thread("spinner", |t| {
            t.spin_wait_shared(lock, site_spin, flag, 1, Time::from_nanos(200), 10_000);
        });
        b.thread("setter", |t| {
            t.compute_us(50);
            t.locked(lock, site_set, |cs| {
                cs.write_set(flag, 1);
            });
        });
        let p = b.build();
        let r = run(&p);
        // The spinner eventually observes flag == 1 and stops.
        assert_eq!(r.final_memory[&ObjectId::new(0)], 1);
        let spinner = &r.timing.per_thread[0];
        assert!(spinner.spin > Time::ZERO);
        // Spinner performed many read-only critical sections.
        assert!(r.trace.num_acquisitions() > 10);
    }

    #[test]
    fn condvar_wait_and_signal() {
        let mut b = ProgramBuilder::new("condvar");
        let lock = b.lock("m");
        let cv = b.condvar("cv");
        let ready = b.shared("ready", 0);
        let site_w = b.site("cv.c", "waiter", 1);
        let site_s = b.site("cv.c", "signaller", 2);
        b.thread("waiter", |t| {
            t.locked(lock, site_w, |cs| {
                cs.cond_wait(cv, lock);
                cs.read(ready);
            });
        });
        b.thread("signaller", |t| {
            t.compute_us(5);
            t.locked(lock, site_s, |cs| {
                cs.write_set(ready, 1);
                cs.cond_signal(cv);
            });
        });
        let p = b.build();
        let r = run(&p);
        assert!(r.trace.validate().is_ok());
        // Waiter saw the flag after being signalled, i.e. it finished.
        assert!(r.timing.per_thread[0].finish_time >= Time::from_micros(5));
        // The cond wait produced an extra acquire (the re-acquisition).
        assert!(r.trace.num_acquisitions() >= 3);
    }

    #[test]
    fn barrier_releases_all_threads_together() {
        let mut b = ProgramBuilder::new("barrier");
        let bar = b.barrier("sync", 3);
        for i in 0..3u32 {
            let pre = u64::from(i + 1) * 10;
            b.thread(format!("t{i}"), move |t| {
                t.compute_us(pre);
                t.barrier(bar);
                t.compute_us(1);
            });
        }
        let p = b.build();
        let r = run(&p);
        // All threads finish after the slowest (30us) plus their own 1us tail.
        for t in &r.timing.per_thread {
            assert!(t.finish_time >= Time::from_micros(31));
        }
        // The fastest thread waited roughly 20us at the barrier.
        assert!(r.timing.per_thread[0].sync_wait >= Time::from_micros(19));
    }

    #[test]
    fn deadlock_is_reported() {
        let mut b = ProgramBuilder::new("deadlock");
        let lock = b.lock("m");
        let cv = b.condvar("never");
        let site = b.site("d.c", "f", 1);
        b.thread("t0", |t| {
            t.locked(lock, site, |cs| {
                cs.cond_wait(cv, lock);
            });
        });
        let p = b.build();
        let err = Executor::new(&p, SimConfig::default()).run().unwrap_err();
        assert!(matches!(err, SimError::Deadlock { blocked } if blocked.len() == 1));
    }

    #[test]
    fn recursive_lock_is_an_error() {
        let mut b = ProgramBuilder::new("recursive");
        let lock = b.lock("m");
        let site = b.site("r.c", "f", 1);
        b.thread("t0", |t| {
            t.locked(lock, site, |outer| {
                outer.locked(lock, site, |_| {});
            });
        });
        let p = b.build();
        let err = Executor::new(&p, SimConfig::default()).run().unwrap_err();
        assert!(matches!(err, SimError::RecursiveLock { .. }));
    }

    #[test]
    fn step_limit_is_enforced() {
        let mut b = ProgramBuilder::new("steps");
        b.thread("t0", |t| {
            t.loop_n(1_000, |l| {
                l.compute_ns(1);
            });
        });
        let p = b.build();
        let err = Executor::new(&p, SimConfig::default())
            .max_steps(10)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::StepLimitExceeded { limit: 10 }));
    }

    #[test]
    fn execution_is_deterministic_for_a_fixed_seed() {
        let mut b = ProgramBuilder::new("det");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("d.c", "f", 1);
        for i in 0..4 {
            b.thread(format!("t{i}"), |t| {
                t.loop_n(10, |l| {
                    l.locked(lock, site, |cs| {
                        cs.write_add(x, 1);
                        cs.compute_ns(30);
                    });
                    l.compute_ns(20);
                });
            });
        }
        let p = b.build();
        let r1 = Executor::new(&p, SimConfig::with_seed(9)).run().unwrap();
        let r2 = Executor::new(&p, SimConfig::with_seed(9)).run().unwrap();
        assert_eq!(r1.trace, r2.trace);
        assert_eq!(r1.timing, r2.timing);
    }

    #[test]
    fn invalid_program_is_rejected() {
        let mut b = ProgramBuilder::new("invalid");
        b.thread("t", |t| {
            t.read(ObjectId::new(5));
        });
        let p = b.build();
        let err = Executor::new(&p, SimConfig::default()).run().unwrap_err();
        assert!(matches!(err, SimError::InvalidProgram(_)));
    }

    #[test]
    fn error_display_messages() {
        let e = SimError::Deadlock {
            blocked: vec![ThreadId::new(0)],
        };
        assert!(e.to_string().contains("deadlock"));
        assert!(SimError::StepLimitExceeded { limit: 5 }
            .to_string()
            .contains('5'));
    }
}
