//! # perfplay-sim
//!
//! A deterministic discrete-event multicore simulator that executes
//! `perfplay-program` lock programs and records `perfplay-trace` traces.
//!
//! This crate is the hardware substitute for the PerfPlay reproduction: the
//! paper records real executions on a 2×quad-core Xeon through Intel Pin,
//! whereas here every thread runs on its own simulated core with a virtual
//! clock, and all inter-thread timing (lock hand-offs, condition variables,
//! barriers, spin-waits) is produced by the [`Executor`]'s event loop. The
//! result is bit-for-bit reproducible for a fixed seed, which is exactly the
//! property the paper's ELSC replay scheduler works hard to approximate on
//! real hardware.
//!
//! The crate exposes three layers:
//!
//! * [`SimConfig`] — the machine cost model (lock acquire/release/hand-off
//!   costs, memory access cost, tie-break seed);
//! * synchronization primitives — [`LockTable`], [`CondTable`],
//!   [`BarrierTable`] and the [`LockArbiter`] trait, reused by the replay
//!   engine's schedulers;
//! * the [`Executor`] — interprets a program, producing an
//!   [`ExecutionResult`] with the recorded trace, per-thread
//!   [`ThreadTiming`] accounts and final shared-memory contents.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod accounting;
mod config;
mod executor;
mod sync;

pub use accounting::{ExecutionTiming, ThreadTiming};
pub use config::SimConfig;
pub use executor::{ExecutionResult, Executor, SimError, DEFAULT_MAX_STEPS};
pub use sync::{
    BarrierState, BarrierTable, CondState, CondTable, FifoArbiter, LockArbiter, LockState,
    LockTable, WaitingRequest,
};
