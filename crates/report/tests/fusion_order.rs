//! Property test: ULCP fusion (Algorithm 2) is independent of the order the
//! per-pair gains arrive in.
//!
//! `fuse_ulcps` seeds its groups from a map keyed by code-site pair and
//! accumulates clamped gains with saturating addition, so both the group
//! contents and the fixpoint fusion order must be invariant under any
//! permutation of the `gains` input — including the straight-vs-crosswise
//! preference taken inside `GroupedUlcp::fuse`, which was previously only
//! exercised on hand-built cases.

use proptest::prelude::*;

use perfplay_detect::Detector;
use perfplay_record::Recorder;
use perfplay_report::{fuse_ulcps, rank_groups, UlcpGain};
use perfplay_sim::SimConfig;
use perfplay_workloads::{random_workload, GeneratorConfig};

/// Deterministic Fisher–Yates over a seeded xorshift, so each case's
/// permutation is reproducible from the drawn seed.
fn permute<T>(items: &mut [T], mut seed: u64) {
    let mut next = || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

fn generator_config() -> impl Strategy<Value = GeneratorConfig> {
    (2usize..5, 1usize..4, 2usize..6, 4u32..12).prop_map(
        |(threads, locks, objects, sections_per_thread)| GeneratorConfig {
            threads,
            locks,
            objects,
            sections_per_thread,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fusion_is_invariant_under_permuted_gains(
        seed in 0u64..5_000,
        config in generator_config(),
        shuffle_seed in 1u64..u64::MAX,
        gain_scale in 1i64..1_000_000,
    ) {
        let program = random_workload(seed, &config);
        let trace = Recorder::new(SimConfig::default())
            .record(&program)
            .unwrap()
            .trace;
        let analysis = Detector::default().analyze(&trace);
        // Signed synthetic gains (including negatives, which clamp to zero)
        // varying per pair, so permutation actually moves distinct values.
        let gains: Vec<UlcpGain> = analysis
            .ulcps
            .iter()
            .enumerate()
            .map(|(i, u)| UlcpGain {
                ulcp: *u,
                gain_ns: (i as i64 % 7 - 2) * gain_scale,
            })
            .collect();

        let baseline = fuse_ulcps(&analysis, &gains);
        let mut shuffled = gains.clone();
        permute(&mut shuffled, shuffle_seed);
        let permuted = fuse_ulcps(&analysis, &shuffled);
        prop_assert_eq!(&baseline, &permuted);

        // Sanity: every dynamic pair is accounted for exactly once.
        let total_pairs: usize = permuted.iter().map(|g| g.dynamic_pairs).sum();
        prop_assert_eq!(total_pairs, analysis.ulcps.len());

        // The downstream ranking is then also order-independent.
        prop_assert_eq!(rank_groups(baseline), rank_groups(permuted));
    }
}
