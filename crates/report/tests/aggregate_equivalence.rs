//! Property tests: the scan-time `SiteAggregator` reproduces the report
//! layer's per-pair fusion exactly — group for group, count for count,
//! saturated gain for saturated gain — across random workloads, detector
//! configurations and gain sources, and the aggregate-seeded `PerfReport`
//! path is identical to the materializing one.

use proptest::prelude::*;

use perfplay_detect::{
    BodyOverlapGain, Detector, DetectorConfig, GainSource, NoGain, ParallelStreamingDetector,
    SectionCtx, SiteAggregates, SiteAggregator, StreamingDetector, Ulcp, UlcpAnalysis, UlcpKind,
};
use perfplay_record::Recorder;
use perfplay_replay::{ReplaySchedule, Replayer, UlcpFreeReplayer};
use perfplay_report::{
    fuse_aggregates, fuse_ulcp_gains, rank_groups, PerfReport, ReplayGains, UlcpGain,
};
use perfplay_sim::SimConfig;
use perfplay_trace::Trace;
use perfplay_transform::Transformer;
use perfplay_workloads::{random_workload, GeneratorConfig};

/// A gain source large enough that a handful of pairs saturates the u64
/// accumulators — exercising the saturating-sum equivalence.
#[derive(Clone, Copy)]
struct HugeGain;

impl GainSource for HugeGain {
    fn pair_gain_ns(&self, _: &Ulcp, _: &SectionCtx<'_>) -> i64 {
        i64::MAX
    }
}

/// A gain source that varies per pair (and goes negative, exercising the
/// clamp), so group sums genuinely depend on which pairs fold where.
#[derive(Clone, Copy)]
struct PairHashGain;

impl GainSource for PairHashGain {
    fn pair_gain_ns(&self, ulcp: &Ulcp, _: &SectionCtx<'_>) -> i64 {
        let mix = (ulcp.first.index() as i64 * 31 + ulcp.second.index() as i64 * 7)
            .wrapping_mul(2654435761);
        mix % 10_007 - 1_000
    }
}

fn generator_config() -> impl Strategy<Value = GeneratorConfig> {
    (2usize..5, 1usize..4, 2usize..6, 4u32..14).prop_map(
        |(threads, locks, objects, sections_per_thread)| GeneratorConfig {
            threads,
            locks,
            objects,
            sections_per_thread,
        },
    )
}

fn detector_configs() -> impl Strategy<Value = DetectorConfig> {
    (0u32..2, 0usize..4, 0u32..2).prop_map(|(ablate, cap, parallel)| DetectorConfig {
        use_reversed_replay: ablate == 0,
        max_scan_per_thread: if cap == 0 { None } else { Some(cap) },
        parallel: parallel == 1,
    })
}

fn record(seed: u64, config: &GeneratorConfig) -> Trace {
    let program = random_workload(seed, config);
    Recorder::new(SimConfig::default())
        .record(&program)
        .unwrap()
        .trace
}

/// Per-pair gains computed by the same source the aggregator uses, streamed
/// into the pair-path fusion.
fn pair_path_groups<G: GainSource>(
    analysis: &UlcpAnalysis,
    gain: &G,
) -> Vec<perfplay_report::GroupedUlcp> {
    fuse_ulcp_gains(
        analysis,
        analysis.ulcps.iter().map(|u| UlcpGain {
            ulcp: *u,
            gain_ns: gain.pair_gain_ns(
                u,
                &SectionCtx {
                    first: analysis.section(u.first),
                    second: analysis.section(u.second),
                },
            ),
        }),
    )
}

fn assert_aggregates_match<G: GainSource + Clone + Send + Sync>(
    trace: &Trace,
    config: DetectorConfig,
    gain: G,
) -> Result<(), TestCaseError> {
    let analysis = Detector::new(config).analyze(trace);
    let from_pairs = pair_path_groups(&analysis, &gain);

    let batch = Detector::new(config).analyze_with(trace, SiteAggregator::new(gain.clone()));
    prop_assert_eq!(batch.breakdown, analysis.breakdown);
    let aggregates = batch.sink.finish();
    let from_aggregates = fuse_aggregates(&aggregates);
    prop_assert_eq!(&from_aggregates, &from_pairs);

    // The per-kind aggregate totals are exactly the breakdown counts.
    for kind in UlcpKind::ALL {
        let total: u64 = aggregates
            .ulcps
            .iter()
            .filter(|row| row.kind == kind)
            .map(|row| row.dynamic_pairs)
            .sum();
        prop_assert_eq!(total as usize, analysis.breakdown.count(kind));
    }
    let edge_total: u64 = aggregates.edges.iter().map(|row| row.edges).sum();
    prop_assert_eq!(edge_total as usize, analysis.breakdown.tlcp_edges);

    // The streaming engines fold into the identical table, regardless of
    // chunking (their emission order differs; saturating folds commute).
    // The sink-generic sequential entry point requires `parallel` cleared
    // (it returns `StreamError::Config` otherwise); the parallel engine is
    // exercised regardless of the flag, which it ignores.
    let sequential = DetectorConfig {
        parallel: false,
        ..config
    };
    let streamed = StreamingDetector::new(sequential)
        .analyze_trace_with(trace, 7, SiteAggregator::new(gain.clone()))
        .unwrap();
    prop_assert_eq!(streamed.breakdown, analysis.breakdown);
    let streamed_table = streamed.sink.finish();
    prop_assert_eq!(&streamed_table, &aggregates);
    let parallel = ParallelStreamingDetector::with_workers(config, 3)
        .analyze_trace_with(trace, 7, SiteAggregator::new(gain))
        .unwrap();
    prop_assert_eq!(parallel.breakdown, analysis.breakdown);
    let parallel_table = parallel.sink.finish();
    prop_assert_eq!(&parallel_table, &aggregates);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `SiteAggregator` output equals `fuse_ulcps` over the collected pair
    /// list — groups, counts, kinds and saturated gains — for every engine,
    /// workload, detector config and gain source.
    #[test]
    fn site_aggregator_matches_per_pair_fusion(
        seed in 0u64..5_000,
        gen in generator_config(),
        config in detector_configs(),
        gain_mode in 0u32..4,
    ) {
        let trace = record(seed, &gen);
        match gain_mode {
            0 => assert_aggregates_match(&trace, config, NoGain)?,
            1 => assert_aggregates_match(&trace, config, BodyOverlapGain)?,
            2 => assert_aggregates_match(&trace, config, HugeGain)?,
            _ => assert_aggregates_match(&trace, config, PairHashGain)?,
        }
    }
}

/// The aggregate-seeded report path (`PerfReport::from_aggregates`, fed by a
/// `SiteAggregator<ReplayGains>` second pass) produces the identical report
/// the materializing path (`PerfReport::build`) does: same recommendations,
/// same impact split, same rendering.
#[test]
fn report_from_aggregates_matches_build() {
    let trace = record(
        23,
        &GeneratorConfig {
            threads: 3,
            locks: 2,
            objects: 4,
            sections_per_thread: 10,
        },
    );
    let config = DetectorConfig::default();
    let analysis = Detector::new(config).analyze(&trace);
    let transformed = Transformer::default().transform(&trace, &analysis);
    let original = Replayer::default()
        .replay(&trace, ReplaySchedule::elsc())
        .unwrap();
    let free = UlcpFreeReplayer::default().replay(&transformed).unwrap();
    let built = PerfReport::build(&trace, &analysis, &transformed, &original, &free);

    // Second detection pass with the aggregating sink: Equation 1 gains are
    // folded per site pair at emission time; no pair list exists.
    let gains = ReplayGains::new(&trace, &original, &free);
    let aggregated = Detector::new(config).analyze_with(&trace, SiteAggregator::new(gains));
    assert_eq!(aggregated.breakdown, analysis.breakdown);
    let aggregates: SiteAggregates = aggregated.sink.finish();
    let from_aggregates = PerfReport::from_aggregates(
        &trace,
        aggregated.breakdown,
        &aggregates,
        &transformed,
        &original,
        &free,
    );

    assert_eq!(from_aggregates.recommendations, built.recommendations);
    assert_eq!(from_aggregates.impact, built.impact);
    assert_eq!(from_aggregates.breakdown, built.breakdown);
    assert_eq!(from_aggregates.render(&trace), built.render(&trace));
    assert_eq!(from_aggregates, built);

    // And the ranking path from aggregates is the ranking path from pairs.
    let ranked_pairs = rank_groups(pair_path_groups(&analysis, &gains));
    let ranked_aggregates = rank_groups(fuse_aggregates(&aggregates));
    assert_eq!(ranked_pairs, ranked_aggregates);
}
