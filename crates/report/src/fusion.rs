//! ULCP fusion and performance accumulation (Algorithm 2) and the
//! relative-opportunity ranking (Equation 2).
//!
//! Many dynamic ULCPs come from the same source code. Fusion merges ULCPs
//! whose code regions overlap — either matching first-with-first /
//! second-with-second or crosswise — accumulating their performance gains, so
//! the report can point the programmer at the *code region* with the highest
//! optimization opportunity.

use perfplay_detect::{SiteAggregates, UlcpAnalysis};
use perfplay_trace::CodeRegion;
use serde::{Deserialize, Serialize};

use crate::metrics::UlcpGain;

/// A group of fused ULCPs attributed to one pair of code regions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupedUlcp {
    /// Code region of the first critical sections.
    pub region_first: CodeRegion,
    /// Code region of the second critical sections.
    pub region_second: CodeRegion,
    /// Number of dynamic ULCPs fused into this group.
    pub dynamic_pairs: usize,
    /// Accumulated performance improvement in nanoseconds (clamped gains).
    pub gain_ns: u64,
}

impl GroupedUlcp {
    fn can_fuse(&self, other: &GroupedUlcp) -> bool {
        // Algorithm 2, lines 1 and 5: straight or crosswise region overlap.
        (self.region_first.overlaps(&other.region_first)
            && self.region_second.overlaps(&other.region_second))
            || (self.region_first.overlaps(&other.region_second)
                && self.region_second.overlaps(&other.region_first))
    }

    fn fuse(&self, other: &GroupedUlcp) -> GroupedUlcp {
        let straight = self.region_first.overlaps(&other.region_first)
            && self.region_second.overlaps(&other.region_second);
        let (first, second) = if straight {
            (
                self.region_first.merge(&other.region_first),
                self.region_second.merge(&other.region_second),
            )
        } else {
            (
                self.region_first.merge(&other.region_second),
                self.region_second.merge(&other.region_first),
            )
        };
        GroupedUlcp {
            region_first: first,
            region_second: second,
            // Saturate both accumulators: on large fused traces the counts
            // and gains can exceed the integer range, which would panic in
            // debug / wrap in release.
            dynamic_pairs: self.dynamic_pairs.saturating_add(other.dynamic_pairs),
            gain_ns: self.gain_ns.saturating_add(other.gain_ns),
        }
    }
}

/// A ranked recommendation: a fused ULCP group together with its relative
/// optimization opportunity `P` (Equation 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The fused group.
    pub group: GroupedUlcp,
    /// Relative optimization opportunity (`gain / total gain`), in `[0, 1]`.
    pub opportunity: f64,
}

/// Fuses per-ULCP gains into unique code-region groups (Algorithm 2).
///
/// Gains are clamped at zero before accumulation, matching the paper's use of
/// the metric as an optimization opportunity.
pub fn fuse_ulcps(analysis: &UlcpAnalysis, gains: &[UlcpGain]) -> Vec<GroupedUlcp> {
    fuse_ulcp_gains(analysis, gains.iter().copied())
}

/// [`fuse_ulcps`] over a streamed gain sequence, so huge pair lists can be
/// fused without ever materializing a `Vec<UlcpGain>` next to them.
pub fn fuse_ulcp_gains(
    analysis: &UlcpAnalysis,
    gains: impl IntoIterator<Item = UlcpGain>,
) -> Vec<GroupedUlcp> {
    // Seed one group per dynamic ULCP, keyed by its two code sites. Grouping
    // identical site pairs first keeps the fixpoint loop small.
    let mut seeds: std::collections::BTreeMap<(u32, u32), GroupedUlcp> =
        std::collections::BTreeMap::new();
    for gain in gains {
        let first_site = analysis.section(gain.ulcp.first).site;
        let second_site = analysis.section(gain.ulcp.second).site;
        let key = if first_site.raw() <= second_site.raw() {
            (first_site.raw(), second_site.raw())
        } else {
            (second_site.raw(), first_site.raw())
        };
        let entry = seeds.entry(key).or_insert_with(|| seed_group(key));
        entry.dynamic_pairs = entry.dynamic_pairs.saturating_add(1);
        // Saturating: the clamped gains are non-negative, so a saturating
        // sum is order-independent — and overflow on huge traces degrades to
        // "maximal opportunity" instead of a panic or a wrapped small gain.
        entry.gain_ns = entry.gain_ns.saturating_add(gain.clamped());
    }
    fixpoint_fuse(seeds.into_values().collect())
}

/// Builds the Algorithm 2 groups straight from scan-time
/// [`SiteAggregates`] — the aggregating sink's rows *are* the fusion seeds
/// (same unordered site-pair key, same saturating accumulation), so this
/// skips the per-pair re-grouping pass entirely and produces the identical
/// groups the pair-list path would.
pub fn fuse_aggregates(aggregates: &SiteAggregates) -> Vec<GroupedUlcp> {
    let mut seeds: std::collections::BTreeMap<(u32, u32), GroupedUlcp> =
        std::collections::BTreeMap::new();
    for row in &aggregates.ulcps {
        // Rows are already site-normalized (`site_first <= site_second`);
        // collapsing the per-kind rows of one site pair reproduces the
        // pair-path seed because saturating addition is associative.
        let key = (row.site_first.raw(), row.site_second.raw());
        let entry = seeds.entry(key).or_insert_with(|| seed_group(key));
        entry.dynamic_pairs = entry
            .dynamic_pairs
            .saturating_add(usize::try_from(row.dynamic_pairs).unwrap_or(usize::MAX));
        entry.gain_ns = entry.gain_ns.saturating_add(row.gain_ns);
    }
    fixpoint_fuse(seeds.into_values().collect())
}

/// An empty seed group for one normalized site-pair key.
fn seed_group(key: (u32, u32)) -> GroupedUlcp {
    GroupedUlcp {
        region_first: CodeRegion::single(perfplay_trace::CodeSiteId::new(key.0)),
        region_second: CodeRegion::single(perfplay_trace::CodeSiteId::new(key.1)),
        dynamic_pairs: 0,
        gain_ns: 0,
    }
}

/// Fixpoint fusion over seeded groups (Algorithm 2's outer loop). The seeds
/// arrive in ascending site-pair key order from both seeding paths, so the
/// fused output is identical whichever path produced them.
fn fixpoint_fuse(mut groups: Vec<GroupedUlcp>) -> Vec<GroupedUlcp> {
    loop {
        let mut fused_any = false;
        let mut result: Vec<GroupedUlcp> = Vec::with_capacity(groups.len());
        'outer: for group in groups.into_iter() {
            for existing in &mut result {
                if existing.can_fuse(&group) {
                    *existing = existing.fuse(&group);
                    fused_any = true;
                    continue 'outer;
                }
            }
            result.push(group);
        }
        groups = result;
        if !fused_any {
            break;
        }
    }
    groups
}

/// Ranks fused groups by relative optimization opportunity (Equation 2),
/// highest first.
pub fn rank_groups(groups: Vec<GroupedUlcp>) -> Vec<Recommendation> {
    let total: u64 = groups
        .iter()
        .fold(0u64, |acc, g| acc.saturating_add(g.gain_ns));
    let mut recommendations: Vec<Recommendation> = groups
        .into_iter()
        .map(|group| {
            let opportunity = if total == 0 {
                0.0
            } else {
                group.gain_ns as f64 / total as f64
            };
            Recommendation { group, opportunity }
        })
        .collect();
    // Highest gain first; ties broken on both code regions so the
    // recommendation order is a total order independent of input order.
    recommendations.sort_by(|a, b| {
        b.group
            .gain_ns
            .cmp(&a.group.gain_ns)
            .then_with(|| a.group.region_first.cmp(&b.group.region_first))
            .then_with(|| a.group.region_second.cmp(&b.group.region_second))
    });
    recommendations
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_detect::{Detector, UlcpKind};
    use perfplay_program::ProgramBuilder;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;
    use perfplay_trace::CodeSiteId;

    fn group(first: u32, second: u32, gain: u64) -> GroupedUlcp {
        GroupedUlcp {
            region_first: CodeRegion::single(CodeSiteId::new(first)),
            region_second: CodeRegion::single(CodeSiteId::new(second)),
            dynamic_pairs: 1,
            gain_ns: gain,
        }
    }

    #[test]
    fn straight_and_crosswise_fusion() {
        let a = group(1, 2, 10);
        let b = group(1, 2, 5);
        assert!(a.can_fuse(&b));
        let fused = a.fuse(&b);
        assert_eq!(fused.gain_ns, 15);
        assert_eq!(fused.dynamic_pairs, 2);

        let c = group(2, 1, 7); // crosswise
        assert!(a.can_fuse(&c));
        let fused = a.fuse(&c);
        assert_eq!(fused.gain_ns, 17);
        assert!(fused.region_first.contains(CodeSiteId::new(1)));
        assert!(fused.region_second.contains(CodeSiteId::new(2)));

        let d = group(3, 4, 1);
        assert!(!a.can_fuse(&d));
    }

    #[test]
    fn fuse_ulcps_groups_by_code_site_pair() {
        // Two threads running the same code: all dynamic ULCPs share one
        // site pair and must collapse into a single group.
        let mut b = ProgramBuilder::new("fusion-test");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("f.c", "reader", 1);
        for i in 0..2 {
            b.thread(format!("t{i}"), |t| {
                t.loop_n(4, |l| {
                    l.locked(lock, site, |cs| {
                        cs.read(x);
                    });
                    l.compute_ns(50);
                });
            });
        }
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        let analysis = Detector::default().analyze(&trace);
        assert!(analysis.ulcps.len() > 1);
        let gains: Vec<UlcpGain> = analysis
            .ulcps
            .iter()
            .map(|u| UlcpGain {
                ulcp: *u,
                gain_ns: 100,
            })
            .collect();
        let groups = fuse_ulcps(&analysis, &gains);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].dynamic_pairs, analysis.ulcps.len());
        assert_eq!(groups[0].gain_ns, 100 * analysis.ulcps.len() as u64);
    }

    #[test]
    fn distinct_code_sites_stay_in_distinct_groups() {
        let mut b = ProgramBuilder::new("fusion-distinct");
        let lock_a = b.lock("a");
        let lock_b = b.lock("b");
        let x = b.shared("x", 0);
        let y = b.shared("y", 0);
        let site_a = b.site("f.c", "fa", 1);
        let site_b = b.site("f.c", "fb", 2);
        for i in 0..2 {
            b.thread(format!("t{i}"), |t| {
                t.locked(lock_a, site_a, |cs| {
                    cs.read(x);
                });
                t.locked(lock_b, site_b, |cs| {
                    cs.read(y);
                });
            });
        }
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        let analysis = Detector::default().analyze(&trace);
        let gains: Vec<UlcpGain> = analysis
            .ulcps
            .iter()
            .map(|u| UlcpGain {
                ulcp: *u,
                gain_ns: 10,
            })
            .collect();
        let groups = fuse_ulcps(&analysis, &gains);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn ranking_follows_equation_2() {
        let groups = vec![group(1, 2, 30), group(3, 4, 60), group(5, 6, 10)];
        let ranked = rank_groups(groups);
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].group.gain_ns, 60);
        assert!((ranked[0].opportunity - 0.6).abs() < 1e-12);
        assert!((ranked[1].opportunity - 0.3).abs() < 1e-12);
        let total: f64 = ranked.iter().map(|r| r.opportunity).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_with_zero_total_gain_is_all_zero() {
        let ranked = rank_groups(vec![group(1, 2, 0), group(3, 4, 0)]);
        assert!(ranked.iter().all(|r| r.opportunity == 0.0));
    }

    #[test]
    fn fusing_huge_gains_saturates_instead_of_overflowing() {
        // Regression: `gain_ns + other.gain_ns` overflowed (debug panic /
        // release wrap) once fused gains approached u64::MAX.
        let a = group(1, 2, u64::MAX - 10);
        let b = group(1, 2, 100);
        let fused = a.fuse(&b);
        assert_eq!(fused.gain_ns, u64::MAX);
        assert_eq!(fused.dynamic_pairs, 2);

        // rank_groups' total also saturates instead of panicking; the
        // saturated totals make every opportunity a sane [0, 1] value.
        let ranked = rank_groups(vec![group(1, 2, u64::MAX), group(3, 4, u64::MAX)]);
        for r in &ranked {
            assert!((0.0..=1.0).contains(&r.opportunity));
        }
    }

    #[test]
    fn accumulating_huge_clamped_gains_saturates() {
        // Three i64::MAX gains exceed u64::MAX: the seed accumulation in
        // fuse_ulcps must saturate, not overflow.
        let mut b = ProgramBuilder::new("fusion-overflow");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("o.c", "reader", 1);
        for i in 0..2 {
            b.thread(format!("t{i}"), |t| {
                t.loop_n(2, |l| {
                    l.locked(lock, site, |cs| {
                        cs.read(x);
                    });
                    l.compute_ns(50);
                });
            });
        }
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        let analysis = Detector::default().analyze(&trace);
        assert!(analysis.ulcps.len() >= 3, "need >= 3 pairs to overflow");
        let gains: Vec<UlcpGain> = analysis
            .ulcps
            .iter()
            .map(|u| UlcpGain {
                ulcp: *u,
                gain_ns: i64::MAX,
            })
            .collect();
        let groups = fuse_ulcps(&analysis, &gains);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].gain_ns, u64::MAX);
    }

    #[test]
    fn ranking_breaks_gain_and_first_region_ties_on_second_region() {
        // Same gain, same first region, different second regions: order
        // must be fully deterministic (ascending region_second).
        let ranked = rank_groups(vec![group(1, 4, 10), group(1, 2, 10), group(1, 3, 10)]);
        let seconds: Vec<_> = ranked
            .iter()
            .map(|r| r.group.region_second.clone())
            .collect();
        assert_eq!(
            seconds,
            vec![
                CodeRegion::single(CodeSiteId::new(2)),
                CodeRegion::single(CodeSiteId::new(3)),
                CodeRegion::single(CodeSiteId::new(4)),
            ]
        );
        // And the reversed input produces the identical ranking.
        let reversed = rank_groups(vec![group(1, 3, 10), group(1, 2, 10), group(1, 4, 10)]);
        assert_eq!(ranked, reversed);
    }

    #[test]
    fn negative_gains_do_not_contribute() {
        let mut b = ProgramBuilder::new("fusion-negative");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("n.c", "reader", 1);
        for i in 0..2 {
            b.thread(format!("t{i}"), |t| {
                t.locked(lock, site, |cs| {
                    cs.read(x);
                });
            });
        }
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        let analysis = Detector::default().analyze(&trace);
        assert_eq!(analysis.breakdown.count(UlcpKind::ReadRead), 1);
        let gains: Vec<UlcpGain> = analysis
            .ulcps
            .iter()
            .map(|u| UlcpGain {
                ulcp: *u,
                gain_ns: -500,
            })
            .collect();
        let groups = fuse_ulcps(&analysis, &gains);
        assert_eq!(groups[0].gain_ns, 0);
    }
}
