//! # perfplay-report
//!
//! The performance-debugging stage of PerfPlay (Section 4 of the paper):
//! turns the two replayed executions — original and ULCP-free — into the
//! programmer-facing answer *"which code region should I fix first, and how
//! much would it buy me?"*
//!
//! * [`ulcp_gains`] evaluates **Equation 1** (`ΔT_ULCP = ΔMAX{Time2, Time3} −
//!   ΔTime1`) for every detected pair, using the per-event completion times
//!   both replays expose.
//! * [`fuse_ulcps`] implements **Algorithm 2** (ULCP fusion and performance
//!   accumulation per code region) and [`rank_groups`] applies **Equation 2**
//!   to rank regions by relative optimization opportunity `P`.
//! * [`ImpactSplit`] separates the whole-program impact into performance
//!   degradation `T_pd` and CPU resource waste `T_rw`, the two bands of
//!   Figure 14.
//! * [`PerfReport`] bundles everything, renders a human-readable summary and
//!   serializes to JSON.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fusion;
mod metrics;
mod report;

pub use fusion::{fuse_ulcps, rank_groups, GroupedUlcp, Recommendation};
pub use metrics::{segment_anchors, ulcp_gains, ImpactSplit, SegmentAnchors, UlcpGain};
pub use report::PerfReport;
