//! # perfplay-report
//!
//! The performance-debugging stage of PerfPlay (Section 4 of the paper):
//! turns the two replayed executions — original and ULCP-free — into the
//! programmer-facing answer *"which code region should I fix first, and how
//! much would it buy me?"*
//!
//! * [`ulcp_gains`] evaluates **Equation 1** (`ΔT_ULCP = ΔMAX{Time2, Time3} −
//!   ΔTime1`) for every detected pair, using the per-event completion times
//!   both replays expose.
//! * [`fuse_ulcps`] implements **Algorithm 2** (ULCP fusion and performance
//!   accumulation per code region) and [`rank_groups`] applies **Equation 2**
//!   to rank regions by relative optimization opportunity `P`.
//!   [`fuse_aggregates`] seeds the same fusion from a scan-time
//!   [`SiteAggregates`](perfplay_detect::SiteAggregates) table, so a
//!   detection pass that never materialized its pairs reports the identical
//!   groups; [`ReplayGains`] is the [`GainSource`](perfplay_detect::GainSource)
//!   that makes such a pass accumulate the exact Equation 1 gains.
//! * [`ImpactSplit`] separates the whole-program impact into performance
//!   degradation `T_pd` and CPU resource waste `T_rw`, the two bands of
//!   Figure 14.
//! * [`PerfReport`] bundles everything, renders a human-readable summary and
//!   serializes to JSON.
//! * [`analyze_plan`] runs the whole pipeline single-pass — one detection
//!   pass whose compact [`DetectionPlan`](perfplay_detect::DetectionPlan)
//!   output drives transform, both replays and the report — and
//!   [`analyze_batch`] lifts it to N traces analyzed concurrently with one
//!   fused ranked report (the paper's Table 1 sweep as a single call).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fusion;
mod metrics;
mod pipeline;
mod report;

pub use fusion::{
    fuse_aggregates, fuse_ulcp_gains, fuse_ulcps, rank_groups, GroupedUlcp, Recommendation,
};
pub use metrics::{
    pair_gain_ns, segment_anchors, ulcp_gains, ImpactSplit, ReplayGains, SegmentAnchors, UlcpGain,
};
pub use pipeline::{
    analyze_batch, analyze_batch_sequential, analyze_chunk_files, analyze_plan, analyze_plan_with,
    BatchAnalysis, BatchItemError, ChunkBatchAnalysis, ChunkStreamAnalysis, PipelineConfig,
    PipelineError, PlanAnalysis,
};
pub use report::PerfReport;
