//! Per-ULCP performance metrics (Equation 1 of the paper).
//!
//! For a ULCP `⟨A, B⟩` the paper marks three points of the two threads'
//! timelines: `Time1`, the start of the segment preceding `A`; `Time2`, the
//! end of the segment following `A`; and `Time3`, the end of the segment
//! following `B`. Comparing those timestamps between the original replay and
//! the ULCP-free replay gives the pair's performance improvement:
//!
//! `ΔT_ULCP = Δ MAX{Time2, Time3} − Δ Time1`
//!
//! where `Δ` is "original minus ULCP-free".

use perfplay_detect::{GainSource, SectionCtx, Ulcp, UlcpAnalysis};
use perfplay_replay::ReplayResult;
use perfplay_trace::{CriticalSection, Time, Trace};
use serde::{Deserialize, Serialize};

/// The event indices whose completion times realise `Time1` and `Time2` for
/// one critical section (`Time3` is the other section's `Time2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentAnchors {
    /// Thread the section runs on.
    pub thread: usize,
    /// Event index whose completion time is the start of the precursor
    /// segment (`None` means the thread start, i.e. time zero).
    pub time1_index: Option<usize>,
    /// Event index whose completion time is the end of the successor segment.
    pub time2_index: usize,
}

/// Locates the precursor-start and successor-end anchors of a critical
/// section within its thread's event stream.
pub fn segment_anchors(trace: &Trace, section: &CriticalSection) -> SegmentAnchors {
    let ti = section.thread.index();
    let events = &trace.threads[ti].events;

    // Precursor segment starts right after the previous synchronization
    // event (lock acquire/release) before this section's acquire.
    let time1_index = events[..section.acquire_index]
        .iter()
        .rposition(|te| te.event.is_acquire() || te.event.is_release());

    // Successor segment ends just before the next lock acquisition after this
    // section's release (or at the thread's last event).
    let next_acquire = events[section.release_index + 1..]
        .iter()
        .position(|te| te.event.is_acquire())
        .map(|offset| section.release_index + 1 + offset);
    let time2_index = match next_acquire {
        Some(idx) if idx > section.release_index + 1 => idx - 1,
        Some(_) => section.release_index,
        None => events.len().saturating_sub(1),
    };

    SegmentAnchors {
        thread: ti,
        time1_index,
        time2_index,
    }
}

fn anchor_times(anchors: &SegmentAnchors, result: &ReplayResult) -> (Time, Time) {
    let times = &result.event_times[anchors.thread];
    let time1 = anchors
        .time1_index
        .and_then(|i| times.get(i).copied())
        .unwrap_or(Time::ZERO);
    let time2 = times
        .get(anchors.time2_index)
        .copied()
        .unwrap_or(Time::ZERO);
    (time1, time2)
}

/// The evaluated performance improvement of one ULCP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UlcpGain {
    /// The pair this gain belongs to.
    pub ulcp: Ulcp,
    /// `ΔT_ULCP` in nanoseconds; may be negative when the transformation did
    /// not help this particular pair.
    pub gain_ns: i64,
}

impl UlcpGain {
    /// The gain clamped at zero, as used for accumulation and ranking.
    pub fn clamped(&self) -> u64 {
        self.gain_ns.max(0) as u64
    }
}

/// Evaluates Equation 1 for one pair of critical sections, given the replay
/// of the original trace and the replay of the ULCP-free trace.
pub fn pair_gain_ns(
    trace: &Trace,
    first: &CriticalSection,
    second: &CriticalSection,
    original: &ReplayResult,
    ulcp_free: &ReplayResult,
) -> i64 {
    let anchors_a = segment_anchors(trace, first);
    let anchors_b = segment_anchors(trace, second);

    let (t1_orig, t2_orig) = anchor_times(&anchors_a, original);
    let (_, t3_orig) = anchor_times(&anchors_b, original);
    let (t1_free, t2_free) = anchor_times(&anchors_a, ulcp_free);
    let (_, t3_free) = anchor_times(&anchors_b, ulcp_free);

    let max_orig = t2_orig.max(t3_orig).as_nanos() as i64;
    let max_free = t2_free.max(t3_free).as_nanos() as i64;
    let delta_max = max_orig - max_free;
    let delta_t1 = t1_orig.as_nanos() as i64 - t1_free.as_nanos() as i64;
    delta_max - delta_t1
}

/// Evaluates Equation 1 for every ULCP, given the replay of the original
/// trace and the replay of the ULCP-free trace.
pub fn ulcp_gains(
    trace: &Trace,
    analysis: &UlcpAnalysis,
    original: &ReplayResult,
    ulcp_free: &ReplayResult,
) -> Vec<UlcpGain> {
    analysis
        .ulcps
        .iter()
        .map(|u| UlcpGain {
            ulcp: *u,
            gain_ns: pair_gain_ns(
                trace,
                analysis.section(u.first),
                analysis.section(u.second),
                original,
                ulcp_free,
            ),
        })
        .collect()
}

/// A [`GainSource`] evaluating Equation 1 at pair-emission time from the two
/// replays — the bridge that lets an aggregating detection pass (a
/// [`SiteAggregator`](perfplay_detect::SiteAggregator) sink) accumulate the
/// exact per-pair gains the materializing pipeline computes, without a pair
/// list ever existing.
#[derive(Debug, Clone, Copy)]
pub struct ReplayGains<'a> {
    trace: &'a Trace,
    original: &'a ReplayResult,
    ulcp_free: &'a ReplayResult,
}

impl<'a> ReplayGains<'a> {
    /// Wraps the original and ULCP-free replays of `trace`.
    pub fn new(trace: &'a Trace, original: &'a ReplayResult, ulcp_free: &'a ReplayResult) -> Self {
        ReplayGains {
            trace,
            original,
            ulcp_free,
        }
    }
}

impl GainSource for ReplayGains<'_> {
    fn pair_gain_ns(&self, _ulcp: &Ulcp, ctx: &SectionCtx<'_>) -> i64 {
        pair_gain_ns(
            self.trace,
            ctx.first,
            ctx.second,
            self.original,
            self.ulcp_free,
        )
    }
}

/// Splits the whole-program impact into the paper's two components:
/// performance degradation `T_pd = T_ut − T_uft` (directly measured from the
/// two replays) and resource waste `T_rw` (the CPU time threads burn waiting
/// on, or spinning behind, locks that the ULCP-free execution does not need).
///
/// The paper derives `T_rw` as `Σ ΔT_ULCP − T_pd`; summing Equation 1 over
/// all pairs double-counts heavily when thousands of dynamic ULCPs share the
/// same segments, so this reproduction measures the waste directly from the
/// two replays' per-thread lock-wait accounts instead. The per-pair Equation 1
/// gains are still what fusion and ranking (Algorithm 2, Equation 2) consume.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImpactSplit {
    /// Total time of the original replay (`T_ut`).
    pub original_time: Time,
    /// Total time of the ULCP-free replay (`T_uft`).
    pub ulcp_free_time: Time,
    /// Performance degradation `T_pd`.
    pub degradation: Time,
    /// Resource (CPU) waste `T_rw`.
    pub resource_waste: Time,
    /// Sum of the clamped per-pair Equation 1 gains (reported for
    /// completeness; not used for the normalized metrics).
    pub total_pair_gain: Time,
}

impl ImpactSplit {
    /// Computes the split from the two replays and the per-ULCP gains.
    pub fn compute(original: &ReplayResult, ulcp_free: &ReplayResult, gains: &[UlcpGain]) -> Self {
        // Saturating fold: equal to the saturating per-site accumulation an
        // aggregating detection pass performs, so both report paths agree
        // even when the summed gain overflows.
        let total_gain = gains
            .iter()
            .fold(0u64, |acc, g| acc.saturating_add(g.clamped()));
        Self::with_total_gain(original, ulcp_free, total_gain)
    }

    /// Computes the split from the two replays and a pre-accumulated total
    /// gain (the aggregate-table path, where per-pair gains never exist).
    pub fn with_total_gain(
        original: &ReplayResult,
        ulcp_free: &ReplayResult,
        total_gain_ns: u64,
    ) -> Self {
        let degradation = original.total_time - ulcp_free.total_time;
        let resource_waste = original
            .total_lock_wait()
            .saturating_sub(ulcp_free.total_lock_wait());
        ImpactSplit {
            original_time: original.total_time,
            ulcp_free_time: ulcp_free.total_time,
            degradation,
            resource_waste,
            total_pair_gain: Time::from_nanos(total_gain_ns),
        }
    }

    /// Normalized performance degradation (`T_pd / T_ut`), the quantity
    /// Figure 14 stacks.
    pub fn normalized_degradation(&self) -> f64 {
        self.degradation.ratio(self.original_time)
    }

    /// Normalized CPU waste per thread (`(T_rw / N) / T_ut`).
    pub fn normalized_waste_per_thread(&self, threads: usize) -> f64 {
        if threads == 0 {
            return 0.0;
        }
        (self.resource_waste / threads as u64).ratio(self.original_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_detect::Detector;
    use perfplay_program::ProgramBuilder;
    use perfplay_record::Recorder;
    use perfplay_replay::{ReplaySchedule, Replayer, UlcpFreeReplayer};
    use perfplay_sim::SimConfig;
    use perfplay_transform::Transformer;

    struct Fixture {
        trace: Trace,
        analysis: UlcpAnalysis,
        original: ReplayResult,
        free: ReplayResult,
    }

    fn fixture(threads: usize, iters: u32) -> Fixture {
        let mut b = ProgramBuilder::new("metrics-test");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("m.c", "reader", 1);
        for i in 0..threads {
            b.thread(format!("t{i}"), |t| {
                t.loop_n(iters, |l| {
                    l.compute_ns(200);
                    l.locked(lock, site, |cs| {
                        cs.read(x);
                        cs.compute_ns(400);
                    });
                    l.compute_ns(100);
                });
            });
        }
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        let analysis = Detector::default().analyze(&trace);
        let transformed = Transformer::default().transform(&trace, &analysis);
        let original = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        let free = UlcpFreeReplayer::default().replay(&transformed).unwrap();
        Fixture {
            trace,
            analysis,
            original,
            free,
        }
    }

    #[test]
    fn anchors_bracket_the_critical_section() {
        let f = fixture(2, 3);
        for s in &f.analysis.sections {
            let anchors = segment_anchors(&f.trace, s);
            assert_eq!(anchors.thread, s.thread.index());
            if let Some(t1) = anchors.time1_index {
                assert!(t1 < s.acquire_index);
            }
            assert!(anchors.time2_index >= s.release_index);
            assert!(anchors.time2_index < f.trace.threads[s.thread.index()].events.len());
        }
    }

    #[test]
    fn first_section_of_a_thread_anchors_time1_at_thread_start() {
        let f = fixture(2, 1);
        let first = f
            .analysis
            .sections
            .iter()
            .find(|s| s.thread.index() == 0)
            .unwrap();
        let anchors = segment_anchors(&f.trace, first);
        assert_eq!(anchors.time1_index, None);
    }

    #[test]
    fn read_read_contention_yields_positive_total_gain() {
        let f = fixture(2, 4);
        assert!(!f.analysis.ulcps.is_empty());
        let gains = ulcp_gains(&f.trace, &f.analysis, &f.original, &f.free);
        assert_eq!(gains.len(), f.analysis.ulcps.len());
        let total: u64 = gains.iter().map(UlcpGain::clamped).sum();
        assert!(total > 0, "removing read-read ULCPs should help");
    }

    #[test]
    fn impact_split_is_consistent() {
        let f = fixture(2, 4);
        let gains = ulcp_gains(&f.trace, &f.analysis, &f.original, &f.free);
        let split = ImpactSplit::compute(&f.original, &f.free, &gains);
        assert_eq!(split.original_time, f.original.total_time);
        assert_eq!(split.ulcp_free_time, f.free.total_time);
        assert!(split.degradation > Time::ZERO);
        assert!(split.normalized_degradation() > 0.0);
        assert!(split.normalized_degradation() < 1.0);
        assert!(split.normalized_waste_per_thread(2) >= 0.0);
        assert_eq!(split.normalized_waste_per_thread(0), 0.0);
    }

    #[test]
    fn gain_clamping_ignores_negative_gains() {
        let g = UlcpGain {
            ulcp: Ulcp {
                first: perfplay_trace::SectionId::new(0),
                second: perfplay_trace::SectionId::new(1),
                lock: perfplay_trace::LockId::new(0),
                kind: perfplay_detect::UlcpKind::ReadRead,
            },
            gain_ns: -50,
        };
        assert_eq!(g.clamped(), 0);
    }

    #[test]
    fn uncontended_program_has_negligible_degradation() {
        // One thread: there can be no inter-thread contention to remove.
        let f = fixture(1, 4);
        assert!(f.analysis.ulcps.is_empty());
        let gains = ulcp_gains(&f.trace, &f.analysis, &f.original, &f.free);
        let split = ImpactSplit::compute(&f.original, &f.free, &gains);
        // The only difference is the stripped lock overhead of the single
        // thread's own sections, a tiny fraction of the runtime.
        assert!(split.normalized_degradation() < 0.2);
    }
}
