//! The single-pass analysis pipeline and the multi-trace batch driver.
//!
//! [`analyze_plan`] runs the whole PerfPlay pipeline — identify → transform →
//! replay twice → report — with **one** detection pass and O(code sites)
//! detection output: the detector emits into a
//! [`PlanAggregator`](perfplay_detect::PlanAggregator), whose
//! [`DetectionPlan`] (edge table + benign pairs + per-site aggregate rows)
//! is everything the transformation, the ULCP-free replay admission and the
//! ranked report need. No pair vector exists at any point.
//!
//! [`analyze_batch`] is the paper's Table 1 sweep as one call: it analyzes N
//! recorded traces concurrently — reusing the detector's fork/absorb
//! work-queue discipline across traces — then fuses the per-trace aggregate
//! tables with the order-independent saturating merge
//! ([`SiteAggregates::merge`]) and emits one fused ranked report. Because
//! the merge is commutative and associative, the fused output is identical
//! to sequential per-trace analysis followed by an in-order merge.

use std::num::NonZeroUsize;
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use perfplay_detect::{
    BodyOverlapGain, DetectionPlan, Detector, DetectorConfig, GainSource,
    ParallelStreamingDetector, PlanAggregator, SiteAggregates, StreamingDetector, StreamingStats,
    UlcpBreakdown,
};
use perfplay_lint::{
    analyze_schedule, lint_chunk_file, lint_chunk_file_pipelined, lint_trace, Diagnostic,
    LintConfig,
};
use perfplay_replay::{
    ReplayConfig, ReplayError, ReplayResult, ReplaySchedule, Replayer, ScheduleKind,
    UlcpFreeReplayer,
};
use perfplay_trace::{ChunkFileReader, PipelinedChunkReader, RecoveryPolicy, StreamError, Trace};
use perfplay_transform::{TransformConfig, Transformer};

use crate::fusion::{fuse_aggregates, rank_groups, Recommendation};
use crate::report::PerfReport;

/// Errors produced by the single-pass pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// One of the two replays failed.
    Replay(ReplayError),
    /// Chunked (streaming) detection failed.
    Stream(StreamError),
    /// A pipeline stage panicked; the payload message is preserved. Only
    /// produced by the batch drivers, which isolate each trace with
    /// `catch_unwind` so one poisoned input cannot abort the sweep.
    Panic(String),
    /// The opt-in static preflight ([`PipelineConfig::preflight`]) found
    /// error-severity problems in the input trace/file or in the transformed
    /// schedule, and the pipeline refused to proceed. The diagnostics say
    /// exactly what and where.
    Preflight(Vec<Diagnostic>),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Replay(e) => write!(f, "pipeline replay failed: {e}"),
            PipelineError::Stream(e) => write!(f, "pipeline stream ingestion failed: {e}"),
            PipelineError::Panic(msg) => write!(f, "pipeline stage panicked: {msg}"),
            PipelineError::Preflight(diagnostics) => {
                write!(f, "preflight lint found {} error(s)", diagnostics.len())?;
                if let Some(first) = diagnostics.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ReplayError> for PipelineError {
    fn from(e: ReplayError) -> Self {
        PipelineError::Replay(e)
    }
}

impl From<StreamError> for PipelineError {
    fn from(e: StreamError) -> Self {
        PipelineError::Stream(e)
    }
}

/// The failure of one item of a batch run: which input failed, and how. The
/// other items' analyses are unaffected.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchItemError {
    /// Index of the failing trace (or chunk file) in the batch input.
    pub trace_index: usize,
    /// What went wrong.
    pub error: PipelineError,
}

impl std::fmt::Display for BatchItemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch item {}: {}", self.trace_index, self.error)
    }
}

impl std::error::Error for BatchItemError {}

/// Extracts a human-readable message from a `catch_unwind` payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs one trace through the pipeline with panic isolation: a panicking
/// stage yields [`PipelineError::Panic`] instead of unwinding the caller.
fn analyze_plan_caught(
    trace: &Trace,
    config: &PipelineConfig,
) -> Result<PlanAnalysis, PipelineError> {
    std::panic::catch_unwind(AssertUnwindSafe(|| analyze_plan(trace, config)))
        .unwrap_or_else(|payload| Err(PipelineError::Panic(panic_message(payload))))
}

/// Configuration of the single-pass pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// ULCP detector options (shared by the batch and streaming engines).
    pub detector: DetectorConfig,
    /// Cost model of both replays.
    pub replay: ReplayConfig,
    /// Trace transformation options.
    pub transform: TransformConfig,
    /// Whether the ULCP-free replay uses the dynamic locking strategy.
    pub use_dls: bool,
    /// Schedule of the original-trace replay (the paper uses ELSC).
    pub original_schedule: ScheduleKind,
    /// When set, detection streams the trace chunk-by-chunk with this chunk
    /// size (bounded pairing state); when `None`, the batch engine runs
    /// (honouring [`DetectorConfig::parallel`]).
    pub chunk_events: Option<usize>,
    /// Worker count for streaming detection (only meaningful with
    /// `chunk_events` set): `0` follows [`DetectorConfig::parallel`] (one
    /// worker per available core when set, the sequential engine otherwise);
    /// `1` forces the sequential engine; `n > 1` runs
    /// [`ParallelStreamingDetector`] with `n` sharded per-lock workers.
    /// Output is bit-identical either way.
    pub parallel_streams: usize,
    /// Decode-worker pool size for the pipelined chunk-file reader used
    /// when [`stream_workers`](Self::stream_workers) resolves to parallel
    /// detection: `0` sizes the pool from
    /// [`perfplay_trace::default_decode_workers`]; output is bit-identical
    /// for every value.
    pub decode_workers: usize,
    /// Opt-in static preflight: lint the input trace (or chunk file) before
    /// detection and the transformed schedule before the ULCP-free replay.
    /// Error-severity findings abort the run with
    /// [`PipelineError::Preflight`] instead of failing later inside a
    /// detector stream or as a stuck replay; warnings never block.
    pub preflight: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            detector: DetectorConfig::default(),
            replay: ReplayConfig::default(),
            transform: TransformConfig::default(),
            use_dls: true,
            original_schedule: ScheduleKind::ElscS,
            chunk_events: None,
            parallel_streams: 0,
            decode_workers: 0,
            preflight: false,
        }
    }
}

/// Fallback chunk size for the trace preflight when the pipeline itself
/// runs batch (non-streaming) detection and has no `chunk_events` to borrow.
const PREFLIGHT_CHUNK_EVENTS: usize = 4096;

/// Returns the error-severity findings of `report`, or `None` when it has
/// none (warnings never block a preflighted run).
fn preflight_errors(report: perfplay_lint::LintReport) -> Option<Vec<Diagnostic>> {
    if report.errors() == 0 {
        return None;
    }
    Some(
        report
            .diagnostics
            .into_iter()
            .filter(|d| d.severity == perfplay_lint::Severity::Error)
            .collect(),
    )
}

impl PipelineConfig {
    /// The resolved streaming worker count: `Some(n)` means parallel
    /// streaming detection with `n` workers, `None` means the sequential
    /// streaming engine.
    pub fn stream_workers(&self) -> Option<usize> {
        match self.parallel_streams {
            0 => self.detector.parallel.then(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            }),
            1 => None,
            n => Some(n),
        }
    }
}

/// Everything one single-pass pipeline run produced. The transformed trace
/// (which clones the original event log) is dropped as soon as the ULCP-free
/// replay finishes; its statistics live on in `report.transform_stats`.
#[derive(Debug, Clone)]
pub struct PlanAnalysis {
    /// The compact detection output that drove transform, replay and report.
    pub plan: DetectionPlan,
    /// Replay of the original trace.
    pub original_replay: ReplayResult,
    /// Replay of the ULCP-free trace.
    pub ulcp_free_replay: ReplayResult,
    /// The programmer-facing report, seeded from the plan's aggregate rows.
    pub report: PerfReport,
    /// Resident-state statistics of the detection pass when it streamed
    /// (`chunk_events` set); `None` for batch detection.
    pub streaming: Option<StreamingStats>,
}

/// Runs the single-pass pipeline with an explicit detection-time gain
/// source.
///
/// # Errors
///
/// Returns [`PipelineError`] if a replay fails or the chunked stream is
/// malformed (the in-memory adapter never is).
pub fn analyze_plan_with<G: GainSource + Clone + Send + Sync>(
    trace: &Trace,
    config: &PipelineConfig,
    gain: G,
) -> Result<PlanAnalysis, PipelineError> {
    if config.preflight {
        let chunk_events = config.chunk_events.unwrap_or(PREFLIGHT_CHUNK_EVENTS);
        if let Some(errors) = preflight_errors(lint_trace(trace, chunk_events)) {
            return Err(PipelineError::Preflight(errors));
        }
    }
    let (plan, streaming) = match config.chunk_events {
        Some(chunk_events) => {
            let sink = PlanAggregator::new(gain);
            let streamed = match config.stream_workers() {
                Some(workers) => ParallelStreamingDetector::with_workers(config.detector, workers)
                    .analyze_trace_with(trace, chunk_events, sink)?,
                None => StreamingDetector::new(DetectorConfig {
                    parallel: false,
                    ..config.detector
                })
                .analyze_trace_with(trace, chunk_events, sink)?,
            };
            let (plan, stats) = DetectionPlan::from_streaming(streamed);
            (plan, Some(stats))
        }
        None => (Detector::new(config.detector).plan(trace, gain), None),
    };

    let transformed = Transformer::new(config.transform).transform_from_plan(trace, &plan);
    if config.preflight {
        // A transform-introduced lock-order inversion (RULEs 2–4) is caught
        // here as a wait-graph cycle instead of as a stuck ULCP-free replay.
        let schedule_errors: Vec<Diagnostic> = analyze_schedule(&transformed);
        if !schedule_errors.is_empty() {
            return Err(PipelineError::Preflight(schedule_errors));
        }
    }
    let original_replay = Replayer::new(config.replay)
        .replay(trace, ReplaySchedule::for_kind(config.original_schedule))?;
    let ulcp_free_replay = UlcpFreeReplayer::new(config.replay)
        .with_dls(config.use_dls)
        .replay(&transformed)?;
    let mut report = PerfReport::from_plan(
        trace,
        &plan,
        &transformed,
        &original_replay,
        &ulcp_free_replay,
    );
    if let Some(stats) = &streaming {
        report = report.with_stream_gaps(stats.gaps, stats.events_lost);
    }
    Ok(PlanAnalysis {
        plan,
        original_replay,
        ulcp_free_replay,
        report,
        streaming,
    })
}

/// Runs the single-pass pipeline with the default detection-time gain proxy
/// ([`BodyOverlapGain`]).
///
/// # Errors
///
/// Same conditions as [`analyze_plan_with`].
pub fn analyze_plan(trace: &Trace, config: &PipelineConfig) -> Result<PlanAnalysis, PipelineError> {
    analyze_plan_with(trace, config, BodyOverlapGain)
}

/// The fused output of a multi-trace batch run. Failed traces are quarantined
/// in `failures`; the surviving traces' analyses fuse exactly as if the
/// failing inputs had never been passed in.
#[derive(Debug, Clone)]
pub struct BatchAnalysis {
    /// Per-trace single-pass analyses of the traces that succeeded, in input
    /// order. When `failures` is non-empty the original index of the k-th
    /// entry is the k-th input index *not* listed in `failures`.
    pub per_trace: Vec<PlanAnalysis>,
    /// One structured error per failing trace, in input order. Panics inside
    /// a per-trace pipeline stage surface here as [`PipelineError::Panic`].
    pub failures: Vec<BatchItemError>,
    /// The fused aggregate table across all surviving traces (saturating
    /// merge).
    pub fused_aggregates: SiteAggregates,
    /// Summed per-category breakdown across all surviving traces (saturating
    /// by construction of the per-trace counts; plain sums here).
    pub fused_breakdown: UlcpBreakdown,
    /// One ranked recommendation list seeded from the fused table — the
    /// Table 1 sweep's "which code region matters most overall" answer.
    pub recommendations: Vec<Recommendation>,
}

impl BatchAnalysis {
    /// Number of traces analyzed successfully.
    pub fn num_traces(&self) -> usize {
        self.per_trace.len()
    }

    /// Whether every input trace was analyzed successfully.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Relative opportunity of the top fused group.
    pub fn top_opportunity(&self) -> f64 {
        self.recommendations
            .first()
            .map(|r| r.opportunity)
            .unwrap_or(0.0)
    }
}

/// Analyzes N recorded traces and fuses their results into one ranked
/// report, running the per-trace pipelines concurrently over a work queue
/// (the same pop-the-next-unit discipline `DetectorConfig::parallel` uses
/// across locks, lifted to whole traces). Results are re-ordered by input
/// index and the aggregate merge is order-independent, so the output is
/// bit-identical to analyzing the traces sequentially and merging in order —
/// which [`analyze_batch_sequential`] does, as the executable spec.
///
/// A failing trace — replay error, malformed stream, or a panic anywhere in
/// its pipeline (isolated with `catch_unwind`) — becomes one
/// [`BatchItemError`] in [`BatchAnalysis::failures`] while the other N-1
/// traces complete and fuse normally.
pub fn analyze_batch(traces: &[Trace], config: &PipelineConfig) -> BatchAnalysis {
    let workers = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(traces.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<PlanAnalysis, PipelineError>>>> =
        Mutex::new((0..traces.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(trace) = traces.get(i) else {
                    break;
                };
                let result = analyze_plan_caught(trace, config);
                slots.lock().expect("batch slots lock")[i] = Some(result);
            });
        }
    });
    let results = slots
        .into_inner()
        .expect("batch slots lock")
        .into_iter()
        .map(|slot| slot.expect("every trace index was processed"));
    fuse_batch(results)
}

/// The sequential executable spec of [`analyze_batch`]: per-trace analysis
/// in input order, aggregate merge in input order, and the same per-trace
/// panic isolation (panic-for-panic equivalent with the concurrent path).
pub fn analyze_batch_sequential(traces: &[Trace], config: &PipelineConfig) -> BatchAnalysis {
    fuse_batch(traces.iter().map(|t| analyze_plan_caught(t, config)))
}

/// Splits per-trace outcomes into survivors and failures, then fuses the
/// survivors: merged aggregate table, summed breakdown, one ranked
/// recommendation list.
fn fuse_batch(results: impl Iterator<Item = Result<PlanAnalysis, PipelineError>>) -> BatchAnalysis {
    let mut per_trace = Vec::new();
    let mut failures = Vec::new();
    for (trace_index, result) in results.enumerate() {
        match result {
            Ok(analysis) => per_trace.push(analysis),
            Err(error) => failures.push(BatchItemError { trace_index, error }),
        }
    }
    let mut fused_aggregates = SiteAggregates::default();
    let mut fused_breakdown = UlcpBreakdown::default();
    for analysis in &per_trace {
        fused_aggregates.merge(&analysis.plan.aggregates);
        fused_breakdown.merge_totals(&analysis.plan.breakdown);
    }
    let recommendations = rank_groups(fuse_aggregates(&fused_aggregates));
    BatchAnalysis {
        per_trace,
        failures,
        fused_aggregates,
        fused_breakdown,
        recommendations,
    }
}

/// The detection-only analysis of one on-disk chunk stream: the plan's
/// aggregate rows and breakdown plus the streaming statistics (including gap
/// counts under a recovery policy). No trace is ever materialized and no
/// replay runs, so this scales to spill files far larger than memory.
#[derive(Debug, Clone)]
pub struct ChunkStreamAnalysis {
    /// Path of the chunk file this analysis came from.
    pub path: String,
    /// The compact detection output (aggregate rows, edges, breakdown).
    pub plan: DetectionPlan,
    /// Resident-state statistics, including `gaps` / `events_lost` recorded
    /// while recovering from corrupt chunks.
    pub stats: StreamingStats,
}

/// The fused output of a [`analyze_chunk_files`] sweep.
#[derive(Debug, Clone)]
pub struct ChunkBatchAnalysis {
    /// Per-file detection analyses of the files that succeeded, in input
    /// order.
    pub per_stream: Vec<ChunkStreamAnalysis>,
    /// One structured error per failing file, in input order
    /// (`trace_index` is the index into the input path list).
    pub failures: Vec<BatchItemError>,
    /// The fused aggregate table across all surviving files.
    pub fused_aggregates: SiteAggregates,
    /// Summed per-category breakdown across all surviving files.
    pub fused_breakdown: UlcpBreakdown,
    /// One ranked recommendation list seeded from the fused table.
    pub recommendations: Vec<Recommendation>,
}

impl ChunkBatchAnalysis {
    /// Total stream gaps recovered from across all surviving files.
    pub fn total_gaps(&self) -> usize {
        self.per_stream.iter().map(|s| s.stats.gaps).sum()
    }

    /// Total events lost to stream gaps across all surviving files.
    pub fn total_events_lost(&self) -> u64 {
        self.per_stream
            .iter()
            .map(|s| s.stats.events_lost)
            .fold(0, u64::saturating_add)
    }
}

/// Runs detection-only analysis over on-disk chunk files and fuses the
/// per-file aggregate tables into one ranked report — the batch sweep for
/// traces that were spilled at record time and never loaded back into
/// memory. Each file streams through [`StreamingDetector`] — or, with
/// [`PipelineConfig::parallel_streams`] resolving to more than one worker,
/// through [`ParallelStreamingDetector`] — under the given
/// [`RecoveryPolicy`]; a file that still fails (or panics a detector stage)
/// becomes one [`BatchItemError`] while the other files complete and fuse.
pub fn analyze_chunk_files<P: AsRef<Path>>(
    paths: &[P],
    config: &PipelineConfig,
    policy: RecoveryPolicy,
) -> ChunkBatchAnalysis {
    let mut per_stream = Vec::new();
    let mut failures = Vec::new();
    for (trace_index, path) in paths.iter().enumerate() {
        let path = path.as_ref().display().to_string();
        if config.preflight {
            // The preflight scan uses the same reader family as the
            // detection run that follows: pipelined when parallel.
            let report = match config.stream_workers() {
                Some(_) => {
                    lint_chunk_file_pipelined(&path, &LintConfig::default(), config.decode_workers)
                }
                None => lint_chunk_file(&path, &LintConfig::default()),
            };
            if let Some(errors) = preflight_errors(report) {
                failures.push(BatchItemError {
                    trace_index,
                    error: PipelineError::Preflight(errors),
                });
                continue;
            }
        }
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let sink = PlanAggregator::new(BodyOverlapGain);
            // The parallel detector gets the pipelined reader so framing,
            // decode, and detection overlap; the sequential engine keeps the
            // single-threaded reader (pipeline hand-off buys nothing there).
            // Both pairings yield bit-identical streams and reports.
            let streamed = match config.stream_workers() {
                Some(workers) => {
                    let mut reader = PipelinedChunkReader::with_options(
                        &path,
                        policy,
                        None,
                        config.decode_workers,
                    )?;
                    ParallelStreamingDetector::with_workers(config.detector, workers)
                        .analyze_with(&mut reader, sink)?
                }
                None => {
                    let mut reader = ChunkFileReader::with_policy(&path, policy)?;
                    StreamingDetector::new(DetectorConfig {
                        parallel: false,
                        ..config.detector
                    })
                    .analyze_with(&mut reader, sink)?
                }
            };
            let (plan, stats) = DetectionPlan::from_streaming(streamed);
            Ok((plan, stats))
        }))
        .unwrap_or_else(|payload| Err(PipelineError::Panic(panic_message(payload))));
        match outcome {
            Ok((plan, stats)) => per_stream.push(ChunkStreamAnalysis { path, plan, stats }),
            Err(error) => failures.push(BatchItemError { trace_index, error }),
        }
    }
    let mut fused_aggregates = SiteAggregates::default();
    let mut fused_breakdown = UlcpBreakdown::default();
    for analysis in &per_stream {
        fused_aggregates.merge(&analysis.plan.aggregates);
        fused_breakdown.merge_totals(&analysis.plan.breakdown);
    }
    let recommendations = rank_groups(fuse_aggregates(&fused_aggregates));
    ChunkBatchAnalysis {
        per_stream,
        failures,
        fused_aggregates,
        fused_breakdown,
        recommendations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;
    use perfplay_workloads::{random_workload, GeneratorConfig};

    fn record(seed: u64) -> Trace {
        let program = random_workload(
            seed,
            &GeneratorConfig {
                threads: 3,
                locks: 2,
                objects: 4,
                sections_per_thread: 8,
            },
        );
        Recorder::new(SimConfig::default())
            .record(&program)
            .unwrap()
            .trace
    }

    #[test]
    fn single_pass_report_matches_two_pass_aggregate_report() {
        use perfplay_detect::SiteAggregator;
        let trace = record(11);
        let config = PipelineConfig::default();
        let single = analyze_plan(&trace, &config).unwrap();

        // Two-pass flow: materialize the analysis for transform + replays,
        // then a second detection pass folds the same gain proxy into the
        // aggregate table.
        let analysis = Detector::new(config.detector).analyze(&trace);
        let transformed = Transformer::new(config.transform).transform(&trace, &analysis);
        let original = Replayer::new(config.replay)
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        let free = UlcpFreeReplayer::new(config.replay)
            .with_dls(config.use_dls)
            .replay(&transformed)
            .unwrap();
        let aggregated = Detector::new(config.detector)
            .analyze_with(&trace, SiteAggregator::new(BodyOverlapGain));
        let two_pass = PerfReport::from_aggregates(
            &trace,
            aggregated.breakdown,
            &aggregated.sink.finish(),
            &transformed,
            &original,
            &free,
        );

        assert_eq!(single.report, two_pass);
        assert_eq!(single.original_replay, original);
        assert_eq!(single.ulcp_free_replay, free);
    }

    #[test]
    fn streaming_pipeline_matches_batch_pipeline() {
        let trace = record(5);
        let batch = analyze_plan(&trace, &PipelineConfig::default()).unwrap();
        let streamed = analyze_plan(
            &trace,
            &PipelineConfig {
                chunk_events: Some(13),
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(streamed.plan, batch.plan);
        assert_eq!(streamed.report, batch.report);
        assert!(streamed.streaming.is_some());
        assert!(batch.streaming.is_none());
    }

    #[test]
    fn parallel_streaming_pipeline_matches_sequential_streaming_and_batch() {
        let trace = record(7);
        let batch = analyze_plan(&trace, &PipelineConfig::default()).unwrap();
        let sequential = analyze_plan(
            &trace,
            &PipelineConfig {
                chunk_events: Some(17),
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        for parallel_streams in [2, 3] {
            let parallel = analyze_plan(
                &trace,
                &PipelineConfig {
                    chunk_events: Some(17),
                    parallel_streams,
                    ..PipelineConfig::default()
                },
            )
            .unwrap();
            assert_eq!(parallel.plan, batch.plan);
            assert_eq!(parallel.report, sequential.report);
            let stats = parallel.streaming.unwrap();
            let seq_stats = sequential.streaming.unwrap();
            assert_eq!(stats.chunks, seq_stats.chunks);
            assert_eq!(stats.events, seq_stats.events);
            assert_eq!(stats.sections, seq_stats.sections);
        }
        // `detector.parallel` with the default knob resolves to the parallel
        // path too (one worker per core), same output.
        let flagged = analyze_plan(
            &trace,
            &PipelineConfig {
                chunk_events: Some(17),
                detector: DetectorConfig {
                    parallel: true,
                    ..DetectorConfig::default()
                },
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(flagged.plan, batch.plan);
        assert_eq!(flagged.report, sequential.report);
    }

    #[test]
    fn chunk_file_sweep_is_identical_under_parallel_streams() {
        use perfplay_record::spill_trace;

        let dir = std::env::temp_dir().join("perfplay-parallel-sweep-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for (i, seed) in [310u64, 311].iter().enumerate() {
            let trace = record(*seed);
            let path = dir.join(format!("psweep-{i}.chunks"));
            spill_trace(&trace, path.to_str().unwrap(), 16).unwrap();
            paths.push(path);
        }
        let sequential =
            analyze_chunk_files(&paths, &PipelineConfig::default(), RecoveryPolicy::Fail);
        let parallel = analyze_chunk_files(
            &paths,
            &PipelineConfig {
                parallel_streams: 2,
                ..PipelineConfig::default()
            },
            RecoveryPolicy::Fail,
        );
        assert!(sequential.failures.is_empty() && parallel.failures.is_empty());
        assert_eq!(sequential.fused_aggregates, parallel.fused_aggregates);
        assert_eq!(sequential.fused_breakdown, parallel.fused_breakdown);
        assert_eq!(sequential.recommendations, parallel.recommendations);
        for (s, p) in sequential.per_stream.iter().zip(&parallel.per_stream) {
            assert_eq!(s.plan, p.plan);
        }
        for p in &paths {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn concurrent_batch_equals_sequential_batch_plus_merge() {
        let traces: Vec<Trace> = (0..5).map(|i| record(100 + i)).collect();
        let config = PipelineConfig::default();
        let concurrent = analyze_batch(&traces, &config);
        let sequential = analyze_batch_sequential(&traces, &config);

        assert!(concurrent.is_complete());
        assert_eq!(concurrent.num_traces(), traces.len());
        assert_eq!(concurrent.fused_aggregates, sequential.fused_aggregates);
        assert_eq!(concurrent.fused_breakdown, sequential.fused_breakdown);
        assert_eq!(concurrent.recommendations, sequential.recommendations);
        for (c, s) in concurrent.per_trace.iter().zip(&sequential.per_trace) {
            assert_eq!(c.plan, s.plan);
            assert_eq!(c.report, s.report);
        }
        // The fused table is exactly the in-order merge of the per-trace
        // tables.
        let mut merged = SiteAggregates::default();
        for a in &sequential.per_trace {
            merged.merge(&a.plan.aggregates);
        }
        assert_eq!(merged, concurrent.fused_aggregates);
        // Fused totals are the sums of the per-trace totals (no saturation
        // at this scale).
        let pair_sum: u64 = sequential
            .per_trace
            .iter()
            .map(|a| a.plan.aggregates.total_pairs())
            .sum();
        assert_eq!(concurrent.fused_aggregates.total_pairs(), pair_sum);
        assert_eq!(
            concurrent.fused_breakdown.lock_acquisitions,
            sequential
                .per_trace
                .iter()
                .map(|a| a.plan.breakdown.lock_acquisitions)
                .sum::<usize>()
        );
    }

    #[test]
    fn batch_results_follow_input_order() {
        let traces: Vec<Trace> = (0..3).map(|i| record(40 + i)).collect();
        let batch = analyze_batch(&traces, &PipelineConfig::default());
        assert!(batch.failures.is_empty());
        assert_eq!(batch.per_trace.len(), 3);
        for (analysis, trace) in batch.per_trace.iter().zip(&traces) {
            assert_eq!(analysis.report.program, trace.meta.program);
            assert!(analysis.report.impact.original_time >= analysis.report.impact.ulcp_free_time);
        }
    }

    #[test]
    fn empty_batch_is_empty_not_an_error() {
        let batch = analyze_batch(&[], &PipelineConfig::default());
        assert!(batch.is_complete());
        assert_eq!(batch.num_traces(), 0);
        assert!(batch.fused_aggregates.is_empty());
        assert!(batch.recommendations.is_empty());
        assert_eq!(batch.top_opportunity(), 0.0);
    }

    /// A trace whose lock schedule names a thread that does not exist: once
    /// the grant before the corrupted one is released, the ELSC replay's
    /// targeted wake indexes the thread table out of bounds, so the
    /// per-trace pipeline panics (in release builds too). The corrupted
    /// grant is the first *repeat* grant of some lock, which guarantees a
    /// predecessor whose release reaches the wake.
    fn poisoned(seed: u64) -> Trace {
        let mut trace = record(seed);
        let mut seen = std::collections::BTreeSet::new();
        let repeat = trace
            .lock_schedule
            .iter()
            .position(|g| !seen.insert(g.lock))
            .expect("workload revisits a lock");
        trace.lock_schedule[repeat].thread = perfplay_trace::ThreadId::new(99);
        trace
    }

    /// Swaps in a no-op panic hook while `f` runs so intentionally poisoned
    /// traces don't spray backtraces into test output. Serialized because
    /// the hook is process-global.
    fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        static HOOK: Mutex<()> = Mutex::new(());
        let _guard = HOOK.lock().expect("panic hook lock");
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn poisoned_trace_becomes_a_batch_item_error_and_others_fuse() {
        let traces = vec![record(200), poisoned(201), record(202)];
        let batch = with_quiet_panics(|| analyze_batch(&traces, &PipelineConfig::default()));

        assert_eq!(batch.failures.len(), 1);
        assert_eq!(batch.failures[0].trace_index, 1);
        assert!(matches!(batch.failures[0].error, PipelineError::Panic(_)));
        assert_eq!(batch.per_trace.len(), 2);
        // The survivors fuse exactly as if the poisoned trace was never
        // passed in.
        let clean = analyze_batch(&[record(200), record(202)], &PipelineConfig::default());
        assert_eq!(batch.fused_aggregates, clean.fused_aggregates);
        assert_eq!(batch.fused_breakdown, clean.fused_breakdown);
        assert_eq!(batch.recommendations, clean.recommendations);
    }

    #[test]
    fn concurrent_and_sequential_paths_are_panic_for_panic_equivalent() {
        let traces = vec![poisoned(210), record(211), poisoned(212)];
        let config = PipelineConfig::default();
        let (concurrent, sequential) = with_quiet_panics(|| {
            (
                analyze_batch(&traces, &config),
                analyze_batch_sequential(&traces, &config),
            )
        });

        assert_eq!(concurrent.failures, sequential.failures);
        assert_eq!(
            concurrent
                .failures
                .iter()
                .map(|f| f.trace_index)
                .collect::<Vec<_>>(),
            vec![0, 2]
        );
        for f in &concurrent.failures {
            assert!(matches!(f.error, PipelineError::Panic(_)));
        }
        assert_eq!(concurrent.per_trace.len(), sequential.per_trace.len());
        assert_eq!(concurrent.fused_aggregates, sequential.fused_aggregates);
        assert_eq!(concurrent.recommendations, sequential.recommendations);
    }

    #[test]
    fn chunk_file_sweep_matches_in_memory_detection() {
        use perfplay_record::spill_trace;

        let dir = std::env::temp_dir().join("perfplay-chunk-sweep-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        let mut traces = Vec::new();
        for (i, seed) in [300u64, 301, 302].iter().enumerate() {
            let trace = record(*seed);
            let path = dir.join(format!("sweep-{i}.chunks"));
            spill_trace(&trace, path.to_str().unwrap(), 16).unwrap();
            paths.push(path);
            traces.push(trace);
        }

        let config = PipelineConfig::default();
        let sweep = analyze_chunk_files(&paths, &config, RecoveryPolicy::Fail);
        assert!(sweep.failures.is_empty());
        assert_eq!(sweep.per_stream.len(), 3);
        assert_eq!(sweep.total_gaps(), 0);
        assert_eq!(sweep.total_events_lost(), 0);

        // Per-file plans match in-memory detection; the fused table is the
        // in-order merge.
        let mut fused = SiteAggregates::default();
        for (analysis, trace) in sweep.per_stream.iter().zip(&traces) {
            let direct = Detector::new(config.detector).plan(trace, BodyOverlapGain);
            assert_eq!(analysis.plan, direct);
            fused.merge(&direct.aggregates);
        }
        assert_eq!(sweep.fused_aggregates, fused);

        let missing = dir.join("does-not-exist.chunks");
        let with_bad = [paths[0].clone(), missing];
        let partial = analyze_chunk_files(&with_bad, &config, RecoveryPolicy::Fail);
        assert_eq!(partial.per_stream.len(), 1);
        assert_eq!(partial.failures.len(), 1);
        assert_eq!(partial.failures[0].trace_index, 1);
        for p in &paths {
            let _ = std::fs::remove_file(p);
        }
    }
}
