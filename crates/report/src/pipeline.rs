//! The single-pass analysis pipeline and the multi-trace batch driver.
//!
//! [`analyze_plan`] runs the whole PerfPlay pipeline — identify → transform →
//! replay twice → report — with **one** detection pass and O(code sites)
//! detection output: the detector emits into a
//! [`PlanAggregator`](perfplay_detect::PlanAggregator), whose
//! [`DetectionPlan`] (edge table + benign pairs + per-site aggregate rows)
//! is everything the transformation, the ULCP-free replay admission and the
//! ranked report need. No pair vector exists at any point.
//!
//! [`analyze_batch`] is the paper's Table 1 sweep as one call: it analyzes N
//! recorded traces concurrently — reusing the detector's fork/absorb
//! work-queue discipline across traces — then fuses the per-trace aggregate
//! tables with the order-independent saturating merge
//! ([`SiteAggregates::merge`]) and emits one fused ranked report. Because
//! the merge is commutative and associative, the fused output is identical
//! to sequential per-trace analysis followed by an in-order merge.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use perfplay_detect::{
    BodyOverlapGain, DetectionPlan, Detector, DetectorConfig, GainSource, PlanAggregator,
    SiteAggregates, StreamingDetector, StreamingStats, UlcpBreakdown,
};
use perfplay_replay::{
    ReplayConfig, ReplayError, ReplayResult, ReplaySchedule, Replayer, ScheduleKind,
    UlcpFreeReplayer,
};
use perfplay_trace::{StreamError, Trace};
use perfplay_transform::{TransformConfig, Transformer};

use crate::fusion::{fuse_aggregates, rank_groups, Recommendation};
use crate::report::PerfReport;

/// Errors produced by the single-pass pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// One of the two replays failed.
    Replay(ReplayError),
    /// Chunked (streaming) detection failed.
    Stream(StreamError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Replay(e) => write!(f, "pipeline replay failed: {e}"),
            PipelineError::Stream(e) => write!(f, "pipeline stream ingestion failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ReplayError> for PipelineError {
    fn from(e: ReplayError) -> Self {
        PipelineError::Replay(e)
    }
}

impl From<StreamError> for PipelineError {
    fn from(e: StreamError) -> Self {
        PipelineError::Stream(e)
    }
}

/// Configuration of the single-pass pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// ULCP detector options (shared by the batch and streaming engines).
    pub detector: DetectorConfig,
    /// Cost model of both replays.
    pub replay: ReplayConfig,
    /// Trace transformation options.
    pub transform: TransformConfig,
    /// Whether the ULCP-free replay uses the dynamic locking strategy.
    pub use_dls: bool,
    /// Schedule of the original-trace replay (the paper uses ELSC).
    pub original_schedule: ScheduleKind,
    /// When set, detection streams the trace chunk-by-chunk with this chunk
    /// size (bounded pairing state); when `None`, the batch engine runs
    /// (honouring [`DetectorConfig::parallel`]).
    pub chunk_events: Option<usize>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            detector: DetectorConfig::default(),
            replay: ReplayConfig::default(),
            transform: TransformConfig::default(),
            use_dls: true,
            original_schedule: ScheduleKind::ElscS,
            chunk_events: None,
        }
    }
}

/// Everything one single-pass pipeline run produced. The transformed trace
/// (which clones the original event log) is dropped as soon as the ULCP-free
/// replay finishes; its statistics live on in `report.transform_stats`.
#[derive(Debug, Clone)]
pub struct PlanAnalysis {
    /// The compact detection output that drove transform, replay and report.
    pub plan: DetectionPlan,
    /// Replay of the original trace.
    pub original_replay: ReplayResult,
    /// Replay of the ULCP-free trace.
    pub ulcp_free_replay: ReplayResult,
    /// The programmer-facing report, seeded from the plan's aggregate rows.
    pub report: PerfReport,
    /// Resident-state statistics of the detection pass when it streamed
    /// (`chunk_events` set); `None` for batch detection.
    pub streaming: Option<StreamingStats>,
}

/// Runs the single-pass pipeline with an explicit detection-time gain
/// source.
///
/// # Errors
///
/// Returns [`PipelineError`] if a replay fails or the chunked stream is
/// malformed (the in-memory adapter never is).
pub fn analyze_plan_with<G: GainSource + Clone + Send + Sync>(
    trace: &Trace,
    config: &PipelineConfig,
    gain: G,
) -> Result<PlanAnalysis, PipelineError> {
    let (plan, streaming) = match config.chunk_events {
        Some(chunk_events) => {
            let streamed = StreamingDetector::new(config.detector).analyze_trace_with(
                trace,
                chunk_events,
                PlanAggregator::new(gain),
            )?;
            let (plan, stats) = DetectionPlan::from_streaming(streamed);
            (plan, Some(stats))
        }
        None => (Detector::new(config.detector).plan(trace, gain), None),
    };

    let transformed = Transformer::new(config.transform).transform_from_plan(trace, &plan);
    let original_replay = Replayer::new(config.replay)
        .replay(trace, ReplaySchedule::for_kind(config.original_schedule))?;
    let ulcp_free_replay = UlcpFreeReplayer::new(config.replay)
        .with_dls(config.use_dls)
        .replay(&transformed)?;
    let report = PerfReport::from_plan(
        trace,
        &plan,
        &transformed,
        &original_replay,
        &ulcp_free_replay,
    );
    Ok(PlanAnalysis {
        plan,
        original_replay,
        ulcp_free_replay,
        report,
        streaming,
    })
}

/// Runs the single-pass pipeline with the default detection-time gain proxy
/// ([`BodyOverlapGain`]).
///
/// # Errors
///
/// Same conditions as [`analyze_plan_with`].
pub fn analyze_plan(trace: &Trace, config: &PipelineConfig) -> Result<PlanAnalysis, PipelineError> {
    analyze_plan_with(trace, config, BodyOverlapGain)
}

/// The fused output of a multi-trace batch run.
#[derive(Debug, Clone)]
pub struct BatchAnalysis {
    /// Per-trace single-pass analyses, in input order.
    pub per_trace: Vec<PlanAnalysis>,
    /// The fused aggregate table across all traces (saturating merge).
    pub fused_aggregates: SiteAggregates,
    /// Summed per-category breakdown across all traces (saturating by
    /// construction of the per-trace counts; plain sums here).
    pub fused_breakdown: UlcpBreakdown,
    /// One ranked recommendation list seeded from the fused table — the
    /// Table 1 sweep's "which code region matters most overall" answer.
    pub recommendations: Vec<Recommendation>,
}

impl BatchAnalysis {
    /// Number of traces analyzed.
    pub fn num_traces(&self) -> usize {
        self.per_trace.len()
    }

    /// Relative opportunity of the top fused group.
    pub fn top_opportunity(&self) -> f64 {
        self.recommendations
            .first()
            .map(|r| r.opportunity)
            .unwrap_or(0.0)
    }
}

/// Analyzes N recorded traces and fuses their results into one ranked
/// report, running the per-trace pipelines concurrently over a work queue
/// (the same pop-the-next-unit discipline `DetectorConfig::parallel` uses
/// across locks, lifted to whole traces). Results are re-ordered by input
/// index and the aggregate merge is order-independent, so the output is
/// bit-identical to analyzing the traces sequentially and merging in order —
/// which [`analyze_batch_sequential`] does, as the executable spec.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing trace, if any.
pub fn analyze_batch(
    traces: &[Trace],
    config: &PipelineConfig,
) -> Result<BatchAnalysis, PipelineError> {
    let workers = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(traces.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<PlanAnalysis, PipelineError>>>> =
        Mutex::new((0..traces.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(trace) = traces.get(i) else {
                    break;
                };
                let result = analyze_plan(trace, config);
                slots.lock().expect("batch slots lock")[i] = Some(result);
            });
        }
    });
    let per_trace: Result<Vec<PlanAnalysis>, PipelineError> = slots
        .into_inner()
        .expect("batch slots lock")
        .into_iter()
        .map(|slot| slot.expect("every trace index was processed"))
        .collect();
    Ok(fuse_batch(per_trace?))
}

/// The sequential executable spec of [`analyze_batch`]: per-trace analysis
/// in input order, aggregate merge in input order.
///
/// # Errors
///
/// Returns the error of the first failing trace.
pub fn analyze_batch_sequential(
    traces: &[Trace],
    config: &PipelineConfig,
) -> Result<BatchAnalysis, PipelineError> {
    let per_trace: Result<Vec<PlanAnalysis>, PipelineError> =
        traces.iter().map(|t| analyze_plan(t, config)).collect();
    Ok(fuse_batch(per_trace?))
}

/// Fuses per-trace analyses: merged aggregate table, summed breakdown, one
/// ranked recommendation list.
fn fuse_batch(per_trace: Vec<PlanAnalysis>) -> BatchAnalysis {
    let mut fused_aggregates = SiteAggregates::default();
    let mut fused_breakdown = UlcpBreakdown::default();
    for analysis in &per_trace {
        fused_aggregates.merge(&analysis.plan.aggregates);
        fused_breakdown.merge_totals(&analysis.plan.breakdown);
    }
    let recommendations = rank_groups(fuse_aggregates(&fused_aggregates));
    BatchAnalysis {
        per_trace,
        fused_aggregates,
        fused_breakdown,
        recommendations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;
    use perfplay_workloads::{random_workload, GeneratorConfig};

    fn record(seed: u64) -> Trace {
        let program = random_workload(
            seed,
            &GeneratorConfig {
                threads: 3,
                locks: 2,
                objects: 4,
                sections_per_thread: 8,
            },
        );
        Recorder::new(SimConfig::default())
            .record(&program)
            .unwrap()
            .trace
    }

    #[test]
    fn single_pass_report_matches_two_pass_aggregate_report() {
        use perfplay_detect::SiteAggregator;
        let trace = record(11);
        let config = PipelineConfig::default();
        let single = analyze_plan(&trace, &config).unwrap();

        // Two-pass flow: materialize the analysis for transform + replays,
        // then a second detection pass folds the same gain proxy into the
        // aggregate table.
        let analysis = Detector::new(config.detector).analyze(&trace);
        let transformed = Transformer::new(config.transform).transform(&trace, &analysis);
        let original = Replayer::new(config.replay)
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        let free = UlcpFreeReplayer::new(config.replay)
            .with_dls(config.use_dls)
            .replay(&transformed)
            .unwrap();
        let aggregated = Detector::new(config.detector)
            .analyze_with(&trace, SiteAggregator::new(BodyOverlapGain));
        let two_pass = PerfReport::from_aggregates(
            &trace,
            aggregated.breakdown,
            &aggregated.sink.finish(),
            &transformed,
            &original,
            &free,
        );

        assert_eq!(single.report, two_pass);
        assert_eq!(single.original_replay, original);
        assert_eq!(single.ulcp_free_replay, free);
    }

    #[test]
    fn streaming_pipeline_matches_batch_pipeline() {
        let trace = record(5);
        let batch = analyze_plan(&trace, &PipelineConfig::default()).unwrap();
        let streamed = analyze_plan(
            &trace,
            &PipelineConfig {
                chunk_events: Some(13),
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(streamed.plan, batch.plan);
        assert_eq!(streamed.report, batch.report);
        assert!(streamed.streaming.is_some());
        assert!(batch.streaming.is_none());
    }

    #[test]
    fn concurrent_batch_equals_sequential_batch_plus_merge() {
        let traces: Vec<Trace> = (0..5).map(|i| record(100 + i)).collect();
        let config = PipelineConfig::default();
        let concurrent = analyze_batch(&traces, &config).unwrap();
        let sequential = analyze_batch_sequential(&traces, &config).unwrap();

        assert_eq!(concurrent.num_traces(), traces.len());
        assert_eq!(concurrent.fused_aggregates, sequential.fused_aggregates);
        assert_eq!(concurrent.fused_breakdown, sequential.fused_breakdown);
        assert_eq!(concurrent.recommendations, sequential.recommendations);
        for (c, s) in concurrent.per_trace.iter().zip(&sequential.per_trace) {
            assert_eq!(c.plan, s.plan);
            assert_eq!(c.report, s.report);
        }
        // The fused table is exactly the in-order merge of the per-trace
        // tables.
        let mut merged = SiteAggregates::default();
        for a in &sequential.per_trace {
            merged.merge(&a.plan.aggregates);
        }
        assert_eq!(merged, concurrent.fused_aggregates);
        // Fused totals are the sums of the per-trace totals (no saturation
        // at this scale).
        let pair_sum: u64 = sequential
            .per_trace
            .iter()
            .map(|a| a.plan.aggregates.total_pairs())
            .sum();
        assert_eq!(concurrent.fused_aggregates.total_pairs(), pair_sum);
        assert_eq!(
            concurrent.fused_breakdown.lock_acquisitions,
            sequential
                .per_trace
                .iter()
                .map(|a| a.plan.breakdown.lock_acquisitions)
                .sum::<usize>()
        );
    }

    #[test]
    fn batch_results_follow_input_order() {
        let traces: Vec<Trace> = (0..3).map(|i| record(40 + i)).collect();
        let batch = analyze_batch(&traces, &PipelineConfig::default()).unwrap();
        assert_eq!(batch.per_trace.len(), 3);
        for (analysis, trace) in batch.per_trace.iter().zip(&traces) {
            assert_eq!(analysis.report.program, trace.meta.program);
            assert!(analysis.report.impact.original_time >= analysis.report.impact.ulcp_free_time);
        }
    }

    #[test]
    fn empty_batch_is_empty_not_an_error() {
        let batch = analyze_batch(&[], &PipelineConfig::default()).unwrap();
        assert_eq!(batch.num_traces(), 0);
        assert!(batch.fused_aggregates.is_empty());
        assert!(batch.recommendations.is_empty());
        assert_eq!(batch.top_opportunity(), 0.0);
    }
}
