//! The final performance-debugging report PerfPlay hands to the programmer.

use perfplay_detect::{DetectionPlan, SiteAggregates, UlcpAnalysis, UlcpBreakdown};
use perfplay_replay::ReplayResult;
use perfplay_trace::{Trace, TraceStats};
use perfplay_transform::{TransformStats, TransformedTrace};
use serde::{Deserialize, Serialize};

use crate::fusion::{fuse_aggregates, fuse_ulcps, rank_groups, Recommendation};
use crate::metrics::{ulcp_gains, ImpactSplit};

/// The complete output of one PerfPlay analysis: ULCP breakdown, whole-program
/// impact, and the ranked list of code regions worth fixing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Program name from the trace metadata.
    pub program: String,
    /// Input description from the trace metadata.
    pub input: String,
    /// Number of threads recorded.
    pub threads: usize,
    /// Trace-level statistics (events, acquisitions, sites).
    pub trace_stats: TraceStats,
    /// ULCP category breakdown (Table 1 row).
    pub breakdown: UlcpBreakdown,
    /// Whole-program impact: degradation and resource waste.
    pub impact: ImpactSplit,
    /// Fused, ranked code-region recommendations (Equation 2 order).
    pub recommendations: Vec<Recommendation>,
    /// Number of benign-pair data-race warnings the transformation reported.
    pub race_warnings: usize,
    /// Statistics of the ULCP-free transformation.
    pub transform_stats: TransformStats,
    /// Lockset maintenance overhead fraction observed during the ULCP-free
    /// replay (with whatever DLS setting was used).
    pub lockset_overhead_fraction: f64,
    /// Number of stream gaps the ingestion layer recovered from (corrupt or
    /// skipped chunks). Zero for in-memory traces and clean streams; when
    /// non-zero the report is sound for the events that survived, not the
    /// full execution.
    pub stream_gaps: usize,
    /// Total events lost to those gaps, as reconciled against the stream
    /// trailer when one was readable.
    pub stream_events_lost: u64,
}

impl PerfReport {
    /// Assembles the report from the analysis pipeline's intermediate
    /// results.
    pub fn build(
        trace: &Trace,
        analysis: &UlcpAnalysis,
        transformed: &TransformedTrace,
        original_replay: &ReplayResult,
        ulcp_free_replay: &ReplayResult,
    ) -> Self {
        let gains = ulcp_gains(trace, analysis, original_replay, ulcp_free_replay);
        let impact = ImpactSplit::compute(original_replay, ulcp_free_replay, &gains);
        let recommendations = rank_groups(fuse_ulcps(analysis, &gains));
        PerfReport {
            program: trace.meta.program.clone(),
            input: trace.meta.input.clone(),
            threads: trace.num_threads(),
            trace_stats: TraceStats::of(trace),
            breakdown: analysis.breakdown,
            impact,
            recommendations,
            race_warnings: transformed.race_warnings.len(),
            transform_stats: transformed.stats(),
            lockset_overhead_fraction: ulcp_free_replay.lockset_overhead_fraction(),
            stream_gaps: 0,
            stream_events_lost: 0,
        }
    }

    /// Assembles the report from scan-time per-site aggregates instead of a
    /// materialized pair list.
    ///
    /// This is the O(code sites) counterpart of [`build`](Self::build): the
    /// detection pass ran with a
    /// [`SiteAggregator`](perfplay_detect::SiteAggregator) sink, so per-pair
    /// gains were folded into the aggregate rows at emission time and the
    /// fusion seeds come straight from the table
    /// ([`fuse_aggregates`](crate::fuse_aggregates)), skipping
    /// [`fuse_ulcps`](crate::fuse_ulcps)' re-grouping over every dynamic
    /// pair. When the aggregates were accumulated with
    /// [`ReplayGains`](crate::ReplayGains), the resulting report is
    /// identical to [`build`](Self::build)'s.
    pub fn from_aggregates(
        trace: &Trace,
        breakdown: UlcpBreakdown,
        aggregates: &SiteAggregates,
        transformed: &TransformedTrace,
        original_replay: &ReplayResult,
        ulcp_free_replay: &ReplayResult,
    ) -> Self {
        let impact = ImpactSplit::with_total_gain(
            original_replay,
            ulcp_free_replay,
            aggregates.total_gain_ns(),
        );
        let recommendations = rank_groups(fuse_aggregates(aggregates));
        PerfReport {
            program: trace.meta.program.clone(),
            input: trace.meta.input.clone(),
            threads: trace.num_threads(),
            trace_stats: TraceStats::of(trace),
            breakdown,
            impact,
            recommendations,
            race_warnings: transformed.race_warnings.len(),
            transform_stats: transformed.stats(),
            lockset_overhead_fraction: ulcp_free_replay.lockset_overhead_fraction(),
            stream_gaps: 0,
            stream_events_lost: 0,
        }
    }

    /// Assembles the report from a single-pass [`DetectionPlan`]: the
    /// breakdown and fusion seeds come straight out of the one detection
    /// pass that also fed the transformation, so the whole pipeline runs
    /// with O(code sites) detection output and no pair list.
    ///
    /// Equivalent to [`from_aggregates`](Self::from_aggregates) over the
    /// plan's parts; the accumulated gains are whatever detection-time
    /// [`GainSource`](perfplay_detect::GainSource) the plan's sink used
    /// (typically [`BodyOverlapGain`](perfplay_detect::BodyOverlapGain),
    /// since Equation 1 replay gains do not exist before the replays run).
    pub fn from_plan(
        trace: &Trace,
        plan: &DetectionPlan,
        transformed: &TransformedTrace,
        original_replay: &ReplayResult,
        ulcp_free_replay: &ReplayResult,
    ) -> Self {
        Self::from_aggregates(
            trace,
            plan.breakdown,
            &plan.aggregates,
            transformed,
            original_replay,
            ulcp_free_replay,
        )
    }

    /// Annotates the report with the stream gaps the ingestion layer
    /// recovered from. Returns `self` for builder-style chaining after
    /// [`from_plan`](Self::from_plan) when detection streamed from a file
    /// under a recovery policy.
    pub fn with_stream_gaps(mut self, gaps: usize, events_lost: u64) -> Self {
        self.stream_gaps = gaps;
        self.stream_events_lost = events_lost;
        self
    }

    /// Whether the underlying stream had recovered gaps — i.e. the numbers
    /// below describe the surviving events, not the full execution.
    pub fn is_gap_annotated(&self) -> bool {
        self.stream_gaps > 0
    }

    /// The most beneficial code-region recommendation, if any.
    pub fn top_recommendation(&self) -> Option<&Recommendation> {
        self.recommendations.first()
    }

    /// Number of fused (unique) ULCP code-region groups — the "grouped
    /// ULCPs" column of Table 2.
    pub fn grouped_ulcps(&self) -> usize {
        self.recommendations.len()
    }

    /// Relative opportunity of the top group — the `ULCP1.P` column of
    /// Table 2.
    pub fn top_opportunity(&self) -> f64 {
        self.top_recommendation()
            .map(|r| r.opportunity)
            .unwrap_or(0.0)
    }

    /// Normalized performance degradation (Figure 14's dark band).
    pub fn normalized_degradation(&self) -> f64 {
        self.impact.normalized_degradation()
    }

    /// Normalized CPU waste per thread (Figure 14's second band).
    pub fn normalized_waste_per_thread(&self) -> f64 {
        self.impact.normalized_waste_per_thread(self.threads)
    }

    /// Renders a human-readable report. The trace is needed to resolve code
    /// site identifiers back into file/function/line descriptions.
    pub fn render(&self, trace: &Trace) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "PerfPlay report — {} ({})", self.program, self.input);
        let _ = writeln!(
            out,
            "  threads: {}   dynamic lock acquisitions: {}",
            self.threads, self.breakdown.lock_acquisitions
        );
        let _ = writeln!(
            out,
            "  ULCPs: {} total  (NL {}, RR {}, DW {}, Benign {});  TLCP edges: {}",
            self.breakdown.total_ulcps(),
            self.breakdown.null_lock,
            self.breakdown.read_read,
            self.breakdown.disjoint_write,
            self.breakdown.benign,
            self.breakdown.tlcp_edges
        );
        let _ = writeln!(
            out,
            "  original {} -> ULCP-free {}  (degradation {:.2}%, CPU waste/thread {:.2}%)",
            self.impact.original_time,
            self.impact.ulcp_free_time,
            100.0 * self.normalized_degradation(),
            100.0 * self.normalized_waste_per_thread()
        );
        let _ = writeln!(
            out,
            "  race warnings: {}   lockset overhead: {:.2}%",
            self.race_warnings,
            100.0 * self.lockset_overhead_fraction
        );
        if self.is_gap_annotated() {
            let _ = writeln!(
                out,
                "  ! incomplete stream: {} gap(s), {} event(s) lost — results cover surviving events only",
                self.stream_gaps, self.stream_events_lost
            );
        }
        let _ = writeln!(out, "  recommendations ({} groups):", self.grouped_ulcps());
        for (rank, rec) in self.recommendations.iter().enumerate().take(10) {
            let describe = |region: &perfplay_trace::CodeRegion| {
                region
                    .iter()
                    .filter_map(|site| trace.sites.get(site))
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join("+")
            };
            let _ = writeln!(
                out,
                "    #{:<2} P={:>5.1}%  gain={:<12} pairs={:<6} {} <-> {}",
                rank + 1,
                rec.opportunity * 100.0,
                perfplay_trace::Time::from_nanos(rec.group.gain_ns).to_string(),
                rec.group.dynamic_pairs,
                describe(&rec.group.region_first),
                describe(&rec.group.region_second),
            );
        }
        out
    }

    /// Serializes the report to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_detect::Detector;
    use perfplay_program::ProgramBuilder;
    use perfplay_record::Recorder;
    use perfplay_replay::{ReplaySchedule, Replayer, UlcpFreeReplayer};
    use perfplay_sim::SimConfig;
    use perfplay_transform::Transformer;

    fn full_pipeline() -> (Trace, PerfReport) {
        let mut b = ProgramBuilder::new("report-test");
        b.input("unit");
        let lock = b.lock("cache_lock");
        let x = b.shared("cache", 0);
        let site_read = b.site("cache.c", "lookup", 10);
        let site_write = b.site("cache.c", "insert", 20);
        for i in 0..2 {
            b.thread(format!("t{i}"), |t| {
                t.loop_n(5, |l| {
                    l.locked(lock, site_read, |cs| {
                        cs.read(x);
                        cs.compute_ns(300);
                    });
                    l.compute_ns(200);
                });
                t.locked(lock, site_write, |cs| {
                    let v = cs.read_into(x);
                    cs.write_add(x, 1);
                    let _ = v;
                });
            });
        }
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;
        let analysis = Detector::default().analyze(&trace);
        let transformed = Transformer::default().transform(&trace, &analysis);
        let original = Replayer::default()
            .replay(&trace, ReplaySchedule::elsc())
            .unwrap();
        let free = UlcpFreeReplayer::default().replay(&transformed).unwrap();
        let report = PerfReport::build(&trace, &analysis, &transformed, &original, &free);
        (trace, report)
    }

    #[test]
    fn report_aggregates_the_pipeline() {
        let (_, report) = full_pipeline();
        assert_eq!(report.program, "report-test");
        assert_eq!(report.threads, 2);
        assert!(report.breakdown.total_ulcps() > 0);
        assert!(report.grouped_ulcps() >= 1);
        assert!(report.impact.original_time > report.impact.ulcp_free_time);
        assert!(report.normalized_degradation() > 0.0);
        assert!(report.top_opportunity() > 0.0);
        assert!(report.top_opportunity() <= 1.0);
    }

    #[test]
    fn opportunities_sum_to_one_when_gains_exist() {
        let (_, report) = full_pipeline();
        let total: f64 = report.recommendations.iter().map(|r| r.opportunity).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Descending order.
        for pair in report.recommendations.windows(2) {
            assert!(pair[0].group.gain_ns >= pair[1].group.gain_ns);
        }
    }

    #[test]
    fn render_mentions_the_program_and_code_sites() {
        let (trace, report) = full_pipeline();
        let text = report.render(&trace);
        assert!(text.contains("report-test"));
        assert!(text.contains("lookup"));
        assert!(text.contains("recommendations"));
        assert!(text.contains("ULCPs:"));
    }

    #[test]
    fn report_serializes_to_json_and_back() {
        let (_, report) = full_pipeline();
        let json = report.to_json();
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
