//! Wall-clock recording of real threads.
//!
//! The simulated [`Recorder`](crate::Recorder) is what the analysis pipeline
//! uses, because its traces are deterministic. This module demonstrates the
//! other half of the paper's design point: the recording API can wrap real
//! synchronization primitives (here `parking_lot::Mutex`) so that genuine
//! multi-threaded executions are captured with the same [`Trace`] format —
//! lock acquisitions, shared accesses attributed to code sites, and the
//! global lock-grant schedule.
//!
//! Timestamps come from a monotonic wall clock, so traces recorded this way
//! are *not* reproducible run-to-run; they are useful for inspecting the API
//! shape and for the lockset-overhead micro-benchmarks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use perfplay_trace::{
    CodeSite, CodeSiteId, Event, LockGrant, LockId, ObjectId, SiteTable, ThreadId, Time, Trace,
    TraceMeta, WriteOp,
};

/// Shared state of a wall-clock recording session.
#[derive(Debug)]
struct SessionState {
    program: String,
    epoch: Instant,
    sites: Mutex<SiteTable>,
    lock_names: Mutex<Vec<String>>,
    object_values: Mutex<Vec<(String, i64)>>,
    grant_seq: AtomicU64,
    schedule: Mutex<Vec<LockGrant>>,
    lock_cells: Mutex<Vec<Arc<Mutex<()>>>>,
}

impl SessionState {
    fn now(&self) -> Time {
        Time::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }
}

/// A wall-clock recording session over real threads.
///
/// ```
/// use perfplay_record::WallClockRecorder;
///
/// let recorder = WallClockRecorder::new("wallclock-demo");
/// let lock = recorder.mutex("counter_mutex");
/// let counter = recorder.shared("counter", 0);
/// let site = recorder.site("demo.rs", "increment", 12);
///
/// let trace = recorder.run(2, |worker| {
///     for _ in 0..3 {
///         let cs = worker.lock(&lock, site);
///         let v = cs.read(&counter);
///         cs.write_set(&counter, v + 1);
///     }
/// });
/// assert_eq!(trace.num_acquisitions(), 6);
/// assert!(trace.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct WallClockRecorder {
    state: Arc<SessionState>,
}

/// Handle to an instrumented mutex.
#[derive(Debug, Clone)]
pub struct RecMutex {
    id: LockId,
    cell: Arc<Mutex<()>>,
}

/// Handle to an instrumented shared variable.
#[derive(Debug, Clone)]
pub struct RecShared {
    id: ObjectId,
    cell: Arc<Mutex<i64>>,
}

impl WallClockRecorder {
    /// Starts a new recording session.
    pub fn new(program: impl Into<String>) -> Self {
        WallClockRecorder {
            state: Arc::new(SessionState {
                program: program.into(),
                epoch: Instant::now(),
                sites: Mutex::new(SiteTable::new()),
                lock_names: Mutex::new(Vec::new()),
                object_values: Mutex::new(Vec::new()),
                grant_seq: AtomicU64::new(0),
                schedule: Mutex::new(Vec::new()),
                lock_cells: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Declares an instrumented mutex.
    pub fn mutex(&self, name: impl Into<String>) -> RecMutex {
        let mut names = self.state.lock_names.lock();
        let mut cells = self.state.lock_cells.lock();
        let id = LockId::new(names.len() as u32);
        names.push(name.into());
        let cell = Arc::new(Mutex::new(()));
        cells.push(Arc::clone(&cell));
        RecMutex { id, cell }
    }

    /// Declares an instrumented shared variable with an initial value.
    pub fn shared(&self, name: impl Into<String>, init: i64) -> RecShared {
        let mut objects = self.state.object_values.lock();
        let id = ObjectId::new(objects.len() as u64);
        objects.push((name.into(), init));
        RecShared {
            id,
            cell: Arc::new(Mutex::new(init)),
        }
    }

    /// Interns a code site.
    pub fn site(&self, file: &str, function: &str, line: u32) -> CodeSiteId {
        self.state
            .sites
            .lock()
            .intern(CodeSite::new(file, function, line))
    }

    /// Spawns `num_threads` real threads running `body` and collects the
    /// recorded trace. The closure receives a per-thread [`RecWorker`].
    pub fn run<F>(&self, num_threads: usize, body: F) -> Trace
    where
        F: Fn(&RecWorker) + Send + Sync,
    {
        let mut per_thread_events: Vec<Vec<(Time, Event)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for i in 0..num_threads {
                let state = Arc::clone(&self.state);
                let body = &body;
                handles.push(scope.spawn(move || {
                    let worker = RecWorker {
                        thread: ThreadId::new(i as u32),
                        state,
                        events: Mutex::new(Vec::new()),
                    };
                    body(&worker);
                    worker.events.into_inner()
                }));
            }
            for handle in handles {
                per_thread_events.push(handle.join().expect("recorded worker panicked"));
            }
        });
        self.assemble(per_thread_events)
    }

    /// Like [`run`](Self::run), but additionally spills the recorded trace
    /// to `path` as a chunked trace file so it can be re-ingested by the
    /// streaming detector without re-assembly.
    ///
    /// Returns the trace together with the spill summary.
    pub fn run_chunked<F>(
        &self,
        num_threads: usize,
        path: impl AsRef<std::path::Path>,
        chunk_events: usize,
        body: F,
    ) -> (Trace, crate::ChunkedWriteSummary)
    where
        F: Fn(&RecWorker) + Send + Sync,
    {
        let trace = self.run(num_threads, body);
        let summary =
            crate::spill_trace(&trace, path, chunk_events).expect("chunked trace spill succeeds");
        (trace, summary)
    }

    fn assemble(&self, per_thread_events: Vec<Vec<(Time, Event)>>) -> Trace {
        let num_threads = per_thread_events.len();
        let mut trace = Trace::new(
            TraceMeta {
                program: self.state.program.clone(),
                num_threads,
                num_locks: self.state.lock_names.lock().len(),
                num_objects: self.state.object_values.lock().len(),
                input: "wall-clock".into(),
            },
            num_threads,
        );
        trace.sites = self.state.sites.lock().clone();
        for (i, events) in per_thread_events.into_iter().enumerate() {
            for (at, event) in events {
                trace.threads[i].push(at, event);
            }
            let finish = trace.threads[i].finish_time;
            trace.total_time = trace.total_time.max(finish);
        }
        let mut schedule = self.state.schedule.lock().clone();
        schedule.sort_by_key(|g| g.seq);
        trace.lock_schedule = schedule;
        trace
    }
}

/// Per-thread recording handle passed to the worker closure.
#[derive(Debug)]
pub struct RecWorker {
    thread: ThreadId,
    state: Arc<SessionState>,
    events: Mutex<Vec<(Time, Event)>>,
}

impl RecWorker {
    /// The thread id assigned to this worker.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    fn record(&self, event: Event) -> usize {
        let mut events = self.events.lock();
        events.push((self.state.now(), event));
        events.len() - 1
    }

    /// Records a computation segment of the given virtual cost (no actual
    /// delay is inserted).
    pub fn compute(&self, cost: Time) {
        self.record(Event::Compute { cost });
    }

    /// Acquires an instrumented mutex, recording the acquisition and its
    /// place in the global grant schedule. The returned guard records the
    /// release when dropped.
    pub fn lock<'a>(&'a self, mutex: &'a RecMutex, site: CodeSiteId) -> RecGuard<'a> {
        let guard = mutex.cell.lock();
        let event_index = self.record(Event::LockAcquire {
            lock: mutex.id,
            site,
        });
        let seq = self.state.grant_seq.fetch_add(1, Ordering::SeqCst);
        self.state.schedule.lock().push(LockGrant {
            seq,
            lock: mutex.id,
            thread: self.thread,
            event_index,
            at: self.state.now(),
        });
        RecGuard {
            worker: self,
            lock: mutex.id,
            _guard: guard,
        }
    }
}

/// Guard over an acquired instrumented mutex; provides the shared-memory
/// operations that are attributed to the enclosing critical section.
#[derive(Debug)]
pub struct RecGuard<'a> {
    worker: &'a RecWorker,
    lock: LockId,
    _guard: parking_lot::MutexGuard<'a, ()>,
}

impl RecGuard<'_> {
    /// Reads a shared variable inside the critical section.
    pub fn read(&self, shared: &RecShared) -> i64 {
        let value = *shared.cell.lock();
        self.worker.record(Event::Read {
            obj: shared.id,
            value,
        });
        value
    }

    /// Stores an absolute value into a shared variable.
    pub fn write_set(&self, shared: &RecShared, value: i64) {
        *shared.cell.lock() = value;
        self.worker.record(Event::Write {
            obj: shared.id,
            op: WriteOp::Set(value),
            value,
        });
    }

    /// Adds a delta to a shared variable.
    pub fn write_add(&self, shared: &RecShared, delta: i64) {
        let mut cell = shared.cell.lock();
        *cell = cell.wrapping_add(delta);
        let value = *cell;
        drop(cell);
        self.worker.record(Event::Write {
            obj: shared.id,
            op: WriteOp::Add(delta),
            value,
        });
    }
}

impl Drop for RecGuard<'_> {
    fn drop(&mut self) {
        self.worker.record(Event::LockRelease { lock: self.lock });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_trace::extract_critical_sections;

    #[test]
    fn records_balanced_critical_sections_from_real_threads() {
        let recorder = WallClockRecorder::new("wc-test");
        let lock = recorder.mutex("m");
        let counter = recorder.shared("c", 0);
        let site = recorder.site("wc.rs", "worker", 1);
        let trace = recorder.run(4, |worker| {
            for _ in 0..5 {
                worker.compute(Time::from_nanos(100));
                let cs = worker.lock(&lock, site);
                let v = cs.read(&counter);
                cs.write_set(&counter, v + 1);
            }
        });
        assert!(trace.validate().is_ok());
        assert_eq!(trace.num_threads(), 4);
        assert_eq!(trace.num_acquisitions(), 20);
        assert_eq!(trace.lock_schedule.len(), 20);
        let sections = extract_critical_sections(&trace);
        assert_eq!(sections.len(), 20);
        assert!(sections.iter().all(|s| !s.is_access_free()));
    }

    #[test]
    fn grant_schedule_is_a_permutation_of_acquisitions() {
        let recorder = WallClockRecorder::new("wc-sched");
        let lock = recorder.mutex("m");
        let x = recorder.shared("x", 0);
        let site = recorder.site("wc.rs", "bump", 2);
        let trace = recorder.run(3, |worker| {
            for _ in 0..7 {
                let cs = worker.lock(&lock, site);
                cs.write_add(&x, 1);
            }
        });
        let seqs: Vec<u64> = trace.lock_schedule.iter().map(|g| g.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        assert_eq!(seqs.len(), 21);
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn shared_updates_are_mutually_excluded() {
        let recorder = WallClockRecorder::new("wc-mutex");
        let lock = recorder.mutex("m");
        let x = recorder.shared("x", 0);
        let site = recorder.site("wc.rs", "inc", 3);
        let iterations = 50;
        let threads = 4;
        let trace = recorder.run(threads, |worker| {
            for _ in 0..iterations {
                let cs = worker.lock(&lock, site);
                let v = cs.read(&x);
                cs.write_set(&x, v + 1);
            }
        });
        // The final recorded write value must equal the total increment count.
        let final_value = trace
            .iter_events()
            .filter_map(|(_, _, te)| match te.event {
                Event::Write { value, .. } => Some(value),
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(final_value, (iterations * threads) as i64);
    }

    #[test]
    fn distinct_mutexes_and_objects_get_distinct_ids() {
        let recorder = WallClockRecorder::new("wc-ids");
        let a = recorder.mutex("a");
        let b = recorder.mutex("b");
        let x = recorder.shared("x", 1);
        let y = recorder.shared("y", 2);
        assert_ne!(a.id, b.id);
        assert_ne!(x.id, y.id);
    }
}
