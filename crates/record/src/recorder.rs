//! The simulated recorder: PerfPlay's recording phase over the deterministic
//! simulator.
//!
//! The paper's recorder (Section 5.1) must record *all* instructions and
//! memory accesses between lock and unlock operations; outside critical
//! sections it may record selectively (state deltas for system calls, library
//! calls and spin-loop bodies) to keep traces small and replay fast. The
//! [`Recorder`] mirrors that: [`RecordingMode::Complete`] keeps every event,
//! [`RecordingMode::Selective`] compresses runs of computation outside
//! critical sections into single [`Event::SkipRegion`] entries whose cost
//! equals the compressed events' cost, so replay timing is unchanged.

use perfplay_program::Program;
use perfplay_sim::{ExecutionResult, ExecutionTiming, Executor, SimConfig, SimError};
use perfplay_trace::{CodeSite, Event, ThreadTrace, Time, Trace};

/// How much of the execution the recorder keeps verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordingMode {
    /// Record every event (complete recording).
    #[default]
    Complete,
    /// Compress computation outside critical sections into state-delta
    /// [`Event::SkipRegion`] entries (selective recording, Section 5.1).
    Selective,
}

/// A recorded execution: the trace plus the timing and memory outcome of the
/// recording run.
#[derive(Debug, Clone)]
pub struct RecordedExecution {
    /// The recorded trace.
    pub trace: Trace,
    /// Timing of the recording run (the "original" performance the paper
    /// compares replays against).
    pub timing: ExecutionTiming,
    /// Final shared-memory contents of the recording run.
    pub final_memory: std::collections::BTreeMap<perfplay_trace::ObjectId, i64>,
}

/// PerfPlay's recording phase.
///
/// ```
/// use perfplay_program::ProgramBuilder;
/// use perfplay_record::{Recorder, RecordingMode};
/// use perfplay_sim::SimConfig;
///
/// let mut b = ProgramBuilder::new("rec-demo");
/// let lock = b.lock("m");
/// let x = b.shared("x", 0);
/// let site = b.site("demo.c", "work", 10);
/// b.thread("t0", |t| {
///     t.compute_us(2);
///     t.locked(lock, site, |cs| { cs.write_add(x, 1); });
/// });
/// let program = b.build();
/// let recording = Recorder::new(SimConfig::default())
///     .mode(RecordingMode::Selective)
///     .record(&program)?;
/// assert!(recording.trace.validate().is_ok());
/// # Ok::<(), perfplay_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    config: SimConfig,
    mode: RecordingMode,
}

impl Recorder {
    /// Creates a recorder with the given machine model.
    pub fn new(config: SimConfig) -> Self {
        Recorder {
            config,
            mode: RecordingMode::Complete,
        }
    }

    /// Sets the recording mode.
    pub fn mode(mut self, mode: RecordingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Executes the program on the simulator and records its trace.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the execution.
    pub fn record(&self, program: &Program) -> Result<RecordedExecution, SimError> {
        let ExecutionResult {
            trace,
            timing,
            final_memory,
        } = Executor::new(program, self.config).run()?;
        let trace = match self.mode {
            RecordingMode::Complete => trace,
            RecordingMode::Selective => selective_compress(trace),
        };
        Ok(RecordedExecution {
            trace,
            timing,
            final_memory,
        })
    }

    /// Records the program and spills the trace to `path` as a chunked
    /// trace file (see [`ChunkedWriter`](crate::ChunkedWriter)), so the
    /// detection pass can stream it instead of holding the whole event log.
    ///
    /// Returns the recording together with the spill summary.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors; panics on I/O failure (the callers are
    /// benches and tooling, where a missing artifact must be loud).
    pub fn record_chunked(
        &self,
        program: &Program,
        path: impl AsRef<std::path::Path>,
        chunk_events: usize,
    ) -> Result<(RecordedExecution, crate::ChunkedWriteSummary), SimError> {
        let recording = self.record(program)?;
        let summary = crate::spill_trace(&recording.trace, path, chunk_events)
            .expect("chunked trace spill succeeds");
        Ok((recording, summary))
    }
}

/// Compresses runs of `Compute` events that occur outside any critical
/// section into a single `SkipRegion` of the same total cost.
///
/// Events inside critical sections are never touched (the paper requires all
/// instructions and memory accesses between lock and unlock to be recorded),
/// and the lock-grant schedule stays valid because acquire-event indices are
/// remapped.
pub fn selective_compress(trace: Trace) -> Trace {
    let mut out = Trace::new(trace.meta.clone(), trace.threads.len());
    out.sites = trace.sites.clone();
    out.total_time = trace.total_time;

    // The synthetic code site used for compressed regions.
    let skip_site = out
        .sites
        .intern(CodeSite::new("<recorder>", "selective_skip", 0));

    // Remap (thread, old event index) -> new event index for acquires.
    let mut index_maps: Vec<Vec<Option<usize>>> = Vec::with_capacity(trace.threads.len());

    for (ti, tt) in trace.threads.iter().enumerate() {
        let mut new_thread = ThreadTrace::new(tt.thread);
        let mut index_map: Vec<Option<usize>> = vec![None; tt.events.len()];
        let mut depth = 0usize;
        let mut pending_cost = Time::ZERO;
        let mut pending_end = Time::ZERO;

        let flush =
            |new_thread: &mut ThreadTrace, pending_cost: &mut Time, pending_end: &mut Time| {
                if !pending_cost.is_zero() {
                    new_thread.push(
                        *pending_end,
                        Event::SkipRegion {
                            site: skip_site,
                            saved_cost: *pending_cost,
                        },
                    );
                    *pending_cost = Time::ZERO;
                    *pending_end = Time::ZERO;
                }
            };

        for (idx, te) in tt.events.iter().enumerate() {
            let compressible = depth == 0 && matches!(te.event, Event::Compute { .. });
            if compressible {
                pending_cost += te.event.intrinsic_cost();
                pending_end = te.at;
                continue;
            }
            flush(&mut new_thread, &mut pending_cost, &mut pending_end);
            match &te.event {
                Event::LockAcquire { .. } => depth += 1,
                Event::LockRelease { .. } => depth = depth.saturating_sub(1),
                _ => {}
            }
            index_map[idx] = Some(new_thread.events.len());
            new_thread.push(te.at, te.event.clone());
        }
        flush(&mut new_thread, &mut pending_cost, &mut pending_end);
        new_thread.finish_time = tt.finish_time;
        out.threads[ti] = new_thread;
        index_maps.push(index_map);
    }

    out.lock_schedule = trace
        .lock_schedule
        .iter()
        .filter_map(|g| {
            index_maps[g.thread.index()][g.event_index].map(|new_idx| perfplay_trace::LockGrant {
                event_index: new_idx,
                ..*g
            })
        })
        .collect();
    out
}

/// Location of a checkpoint marker within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointLocation {
    /// Checkpoint id.
    pub id: u32,
    /// Thread that emitted the marker.
    pub thread: perfplay_trace::ThreadId,
    /// Index of the marker event in that thread's stream.
    pub event_index: usize,
    /// Original timestamp of the marker.
    pub at: Time,
}

/// Finds every checkpoint marker in a trace, in timestamp order.
///
/// Checkpoints let programmers focus the replay-based debugging on a smaller
/// code region (Section 5.1).
pub fn checkpoints(trace: &Trace) -> Vec<CheckpointLocation> {
    let mut found = Vec::new();
    for (thread, idx, te) in trace.iter_events() {
        if let Event::Checkpoint { id } = te.event {
            found.push(CheckpointLocation {
                id,
                thread,
                event_index: idx,
                at: te.at,
            });
        }
    }
    found.sort_by_key(|c| (c.at, c.thread));
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_program::ProgramBuilder;
    use perfplay_trace::extract_critical_sections;

    fn demo_program() -> Program {
        let mut b = ProgramBuilder::new("record-demo");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("r.c", "work", 5);
        for i in 0..2 {
            b.thread(format!("t{i}"), |t| {
                t.compute_ns(100);
                t.compute_ns(200);
                t.checkpoint(7);
                t.locked(lock, site, |cs| {
                    cs.write_add(x, 1);
                    cs.compute_ns(50);
                });
                t.compute_ns(300);
            });
        }
        b.build()
    }

    #[test]
    fn complete_recording_matches_raw_execution() {
        let p = demo_program();
        let rec = Recorder::new(SimConfig::default()).record(&p).unwrap();
        let raw = Executor::new(&p, SimConfig::default()).run().unwrap();
        assert_eq!(rec.trace, raw.trace);
        assert_eq!(rec.timing, raw.timing);
        assert_eq!(rec.final_memory, raw.final_memory);
    }

    #[test]
    fn selective_recording_compresses_outside_critical_sections() {
        let p = demo_program();
        let complete = Recorder::new(SimConfig::default()).record(&p).unwrap();
        let selective = Recorder::new(SimConfig::default())
            .mode(RecordingMode::Selective)
            .record(&p)
            .unwrap();
        assert!(selective.trace.num_events() < complete.trace.num_events());
        assert!(selective.trace.validate().is_ok());
        // Critical-section contents are preserved.
        let cs_complete = extract_critical_sections(&complete.trace);
        let cs_selective = extract_critical_sections(&selective.trace);
        assert_eq!(cs_complete.len(), cs_selective.len());
        for (a, b) in cs_complete.iter().zip(&cs_selective) {
            assert_eq!(a.reads, b.reads);
            assert_eq!(a.writes, b.writes);
            assert_eq!(a.body_cost, b.body_cost);
        }
        // Total intrinsic cost per thread is preserved (replay timing parity).
        for (a, b) in complete.trace.threads.iter().zip(&selective.trace.threads) {
            assert_eq!(a.intrinsic_cost(), b.intrinsic_cost());
        }
        // The grant schedule survives the index remapping.
        assert_eq!(
            complete.trace.lock_schedule.len(),
            selective.trace.lock_schedule.len()
        );
    }

    #[test]
    fn checkpoints_are_located_in_time_order() {
        let p = demo_program();
        let rec = Recorder::new(SimConfig::default()).record(&p).unwrap();
        let cps = checkpoints(&rec.trace);
        assert_eq!(cps.len(), 2);
        assert!(cps.iter().all(|c| c.id == 7));
        assert!(cps[0].at <= cps[1].at);
    }

    #[test]
    fn selective_compression_is_idempotent_on_compressed_traces() {
        let p = demo_program();
        let selective = Recorder::new(SimConfig::default())
            .mode(RecordingMode::Selective)
            .record(&p)
            .unwrap();
        let twice = selective_compress(selective.trace.clone());
        assert_eq!(twice.num_events(), selective.trace.num_events());
    }

    #[test]
    fn recorder_propagates_simulation_errors() {
        let mut b = ProgramBuilder::new("bad");
        b.thread("t", |t| {
            t.read(perfplay_trace::ObjectId::new(3));
        });
        let p = b.build();
        assert!(Recorder::new(SimConfig::default()).record(&p).is_err());
    }
}
