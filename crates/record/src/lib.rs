//! # perfplay-record
//!
//! Recording front-end for the PerfPlay framework: turns program executions
//! into `perfplay-trace` traces.
//!
//! Two recorders are provided:
//!
//! * [`Recorder`] — the one the analysis pipeline uses. It executes a
//!   `perfplay-program` on the deterministic simulator and records the full
//!   event stream, optionally applying the paper's *selective recording*
//!   (compressing computation outside critical sections into state-delta
//!   skip events).
//! * [`WallClockRecorder`] — wraps real `parking_lot` mutexes and real
//!   threads, producing the same trace format from genuine concurrent
//!   executions. It demonstrates the recording API the paper's Pin tool
//!   exposes, and feeds the lockset-overhead micro-benchmarks.
//!
//! [`checkpoints`] locates checkpoint markers so that replay debugging can be
//! focused on a smaller region, mirroring Section 5.1 of the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chunked;
mod recorder;
mod wallclock;

pub use chunked::{
    convert_chunk_file, convert_chunk_file_pipelined, spill_trace, spill_trace_with_format,
    ChunkedWriteSummary, ChunkedWriter, ConvertSummary,
};
pub use recorder::{
    checkpoints, selective_compress, CheckpointLocation, RecordedExecution, Recorder, RecordingMode,
};
pub use wallclock::{RecGuard, RecMutex, RecShared, RecWorker, WallClockRecorder};
