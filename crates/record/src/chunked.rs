//! Chunked trace spilling: writing a recording to disk as time-windowed
//! chunks while it happens.
//!
//! [`ChunkedWriter`] is the producing half of the streaming ingestion path:
//! it accepts events thread by thread (in per-thread program order, the only
//! order a recorder naturally has) and emits [`TraceChunk`]s to a chunk file
//! — JSON-lines or binary PBIN, selected per [`ChunkFormat`] — as soon as a
//! time window is *complete*, i.e. once every still-active thread has
//! progressed past the window, so no earlier event can arrive. The resulting
//! file honours the chunk contract documented in `perfplay_trace::stream`
//! and is consumed by [`ChunkFileReader`](perfplay_trace::ChunkFileReader)
//! or reassembled with
//! [`read_chunked_trace`](perfplay_trace::read_chunked_trace).
//!
//! The writer's resident state is the set of events of the currently
//! incomplete window — bounded as long as threads make roughly comparable
//! time progress, independent of total trace length.
//!
//! [`convert_chunk_file`] translates an existing chunk file between the two
//! formats record by record, holding only one record in memory.

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;

use perfplay_trace::{
    ChunkFileHeader, ChunkFileRecord, ChunkFileTrailer, ChunkFormat, Event, LockGrant,
    RawChunkRecords, SiteTable, StreamError, ThreadId, ThreadSpan, Time, TimedEvent, Trace,
    TraceChunk, TraceMeta,
};

/// Summary of one finished chunked spill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkedWriteSummary {
    /// Chunks written.
    pub chunks: u64,
    /// Events written.
    pub events: u64,
    /// Bytes written to the file.
    pub bytes: u64,
}

#[derive(Debug, Default)]
struct ThreadBuffer {
    /// Index (in the thread's full stream) of `events.front()`.
    base_index: usize,
    events: VecDeque<TimedEvent>,
    /// Timestamp of the latest pushed event.
    latest: Option<Time>,
    finished: bool,
}

/// Incremental writer of a chunked trace file.
///
/// Events must be pushed in per-thread program order (non-decreasing
/// timestamps); grants in ascending grant time. Call
/// [`finish`](Self::finish) to flush the final window and write the trailer
/// — dropping the writer without finishing leaves a truncated file that the
/// reader will reject.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    out: W,
    format: ChunkFormat,
    /// Reused encode buffer: one record's bytes, whichever the format.
    scratch: Vec<u8>,
    chunk_events: usize,
    threads: Vec<ThreadBuffer>,
    grants: VecDeque<LockGrant>,
    buffered: usize,
    seq: u64,
    events_written: u64,
    bytes_written: u64,
    last_window_end: Option<Time>,
}

impl ChunkedWriter<std::io::BufWriter<std::fs::File>> {
    /// Creates a chunked trace file at `path` and writes its header. The
    /// format is picked by the path's extension (`.pbin` → binary, anything
    /// else → JSON-lines).
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be created or the header cannot be written.
    pub fn create(
        path: impl AsRef<Path>,
        meta: TraceMeta,
        num_threads: usize,
        sites: SiteTable,
        chunk_events: usize,
    ) -> std::io::Result<Self> {
        let format = ChunkFormat::for_path(&path);
        Self::create_with_format(path, meta, num_threads, sites, chunk_events, format)
    }

    /// Creates a chunked trace file at `path` in an explicit [`ChunkFormat`]
    /// and writes its header.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be created or the header cannot be written.
    pub fn create_with_format(
        path: impl AsRef<Path>,
        meta: TraceMeta,
        num_threads: usize,
        sites: SiteTable,
        chunk_events: usize,
        format: ChunkFormat,
    ) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        ChunkedWriter::with_format(
            std::io::BufWriter::new(file),
            meta,
            num_threads,
            sites,
            chunk_events,
            format,
        )
    }
}

impl<W: Write> ChunkedWriter<W> {
    /// Wraps an arbitrary writer, emitting the header record immediately in
    /// JSON-lines (the historical default for raw writers; use
    /// [`with_format`](Self::with_format) to pick).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn new(
        out: W,
        meta: TraceMeta,
        num_threads: usize,
        sites: SiteTable,
        chunk_events: usize,
    ) -> std::io::Result<Self> {
        Self::with_format(
            out,
            meta,
            num_threads,
            sites,
            chunk_events,
            ChunkFormat::Json,
        )
    }

    /// Wraps an arbitrary writer with an explicit [`ChunkFormat`], emitting
    /// the file prelude (binary only) and header record immediately.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn with_format(
        out: W,
        meta: TraceMeta,
        num_threads: usize,
        sites: SiteTable,
        chunk_events: usize,
        format: ChunkFormat,
    ) -> std::io::Result<Self> {
        let mut writer = ChunkedWriter {
            out,
            format,
            scratch: Vec::new(),
            chunk_events: chunk_events.max(1),
            threads: (0..num_threads).map(|_| ThreadBuffer::default()).collect(),
            grants: VecDeque::new(),
            buffered: 0,
            seq: 0,
            events_written: 0,
            bytes_written: 0,
            last_window_end: None,
        };
        let prelude = format.prelude();
        if !prelude.is_empty() {
            writer.bytes_written += prelude.len() as u64;
            writer.out.write_all(&prelude)?;
        }
        writer.write_record(&ChunkFileRecord::Header(ChunkFileHeader {
            meta,
            num_threads,
            sites,
        }))?;
        Ok(writer)
    }

    /// The on-disk format being written.
    pub fn format(&self) -> ChunkFormat {
        self.format
    }

    fn write_record(&mut self, record: &ChunkFileRecord) -> std::io::Result<()> {
        self.scratch.clear();
        self.format
            .encode_record(record, &mut self.scratch)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.bytes_written += self.scratch.len() as u64;
        self.out.write_all(&self.scratch)
    }

    /// Appends one event of a thread. Timestamps must be non-decreasing per
    /// thread.
    ///
    /// # Errors
    ///
    /// Propagates write failures from window flushes.
    pub fn push_event(&mut self, thread: ThreadId, at: Time, event: Event) -> std::io::Result<()> {
        let buffer = &mut self.threads[thread.index()];
        assert!(
            buffer.latest.is_none_or(|l| at >= l),
            "non-monotonic push on {thread}: {at} after {:?}",
            buffer.latest
        );
        assert!(!buffer.finished, "push after finish_thread on {thread}");
        buffer.latest = Some(at);
        buffer.events.push_back(TimedEvent::new(at, event));
        self.buffered += 1;
        if self.buffered >= self.chunk_events {
            self.flush_complete_window()?;
        }
        Ok(())
    }

    /// Appends a lock grant (ascending grant-time order).
    pub fn push_grant(&mut self, grant: LockGrant) {
        self.grants.push_back(grant);
    }

    /// Marks a thread as finished: it will push no more events and stops
    /// constraining window completion.
    pub fn finish_thread(&mut self, thread: ThreadId) {
        self.threads[thread.index()].finished = true;
    }

    /// Flushes the largest window that can no longer receive events: every
    /// unfinished thread has advanced past it. Returns without writing when
    /// no such window exists yet.
    fn flush_complete_window(&mut self) -> std::io::Result<()> {
        // The window must end strictly before the slowest active thread's
        // latest timestamp: that thread may still push more events *at* its
        // latest time (ties are allowed), and ties must never straddle a
        // chunk boundary.
        let mut bound: Option<Time> = None;
        for buffer in &self.threads {
            if buffer.finished {
                continue;
            }
            let Some(latest) = buffer.latest else {
                return Ok(()); // an active thread has not started yet
            };
            bound = Some(bound.map_or(latest, |b: Time| b.min(latest)));
        }
        let window_end = match bound {
            // All threads finished: flush everything that remains.
            None => self
                .threads
                .iter()
                .filter_map(|b| b.events.back().map(|e| e.at))
                .max(),
            Some(latest) => Some(Time::from_nanos(latest.as_nanos().saturating_sub(1))),
        };
        let Some(window_end) = window_end else {
            return Ok(()); // nothing buffered at all
        };
        if self.last_window_end.is_some_and(|prev| window_end <= prev) {
            return Ok(());
        }
        self.emit_window(window_end)
    }

    fn emit_window(&mut self, window_end: Time) -> std::io::Result<()> {
        let mut spans = Vec::new();
        for (ti, buffer) in self.threads.iter_mut().enumerate() {
            let take = buffer
                .events
                .iter()
                .take_while(|e| e.at <= window_end)
                .count();
            if take == 0 {
                continue;
            }
            let events: Vec<TimedEvent> = buffer.events.drain(..take).collect();
            let base_index = buffer.base_index;
            buffer.base_index += take;
            self.buffered -= take;
            spans.push(ThreadSpan {
                thread: ThreadId::new(ti as u32),
                base_index,
                events,
            });
        }
        let mut grants = Vec::new();
        while let Some(g) = self.grants.front() {
            if g.at > window_end {
                break;
            }
            grants.extend(self.grants.pop_front());
        }
        if spans.is_empty() && grants.is_empty() {
            return Ok(());
        }
        let chunk = TraceChunk {
            seq: self.seq,
            window_end,
            spans,
            grants,
        };
        self.seq += 1;
        self.events_written += chunk.num_events() as u64;
        self.last_window_end = Some(window_end);
        self.write_record(&ChunkFileRecord::Chunk(chunk))
    }

    /// Flushes everything still buffered, writes the trailer and returns the
    /// spill summary.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn finish(
        mut self,
        total_time: Time,
        finish_times: Vec<Time>,
    ) -> std::io::Result<ChunkedWriteSummary> {
        for buffer in &mut self.threads {
            buffer.finished = true;
        }
        if self.buffered > 0 || !self.grants.is_empty() {
            let window_end = self
                .threads
                .iter()
                .filter_map(|b| b.events.back().map(|e| e.at))
                .max()
                .unwrap_or(Time::MAX)
                .max(self.grants.back().map(|g| g.at).unwrap_or(Time::ZERO));
            self.emit_window(window_end)?;
        }
        let trailer = ChunkFileTrailer {
            total_time,
            finish_times,
            chunks: self.seq,
            events: self.events_written,
        };
        self.write_record(&ChunkFileRecord::Trailer(trailer))?;
        self.out.flush()?;
        Ok(ChunkedWriteSummary {
            chunks: self.seq,
            events: self.events_written,
            bytes: self.bytes_written,
        })
    }
}

/// Spills a complete in-memory trace to `path` as a chunked trace file,
/// streaming it through the windowing logic (events interleaved across
/// threads in time order, so windows flush as they complete). The format is
/// picked by the path's extension.
///
/// # Errors
///
/// Propagates write failures.
pub fn spill_trace(
    trace: &Trace,
    path: impl AsRef<Path>,
    chunk_events: usize,
) -> std::io::Result<ChunkedWriteSummary> {
    let format = ChunkFormat::for_path(&path);
    spill_trace_with_format(trace, path, chunk_events, format)
}

/// [`spill_trace`] with an explicit [`ChunkFormat`] instead of the
/// extension-based pick.
///
/// # Errors
///
/// Propagates write failures.
pub fn spill_trace_with_format(
    trace: &Trace,
    path: impl AsRef<Path>,
    chunk_events: usize,
    format: ChunkFormat,
) -> std::io::Result<ChunkedWriteSummary> {
    let mut writer = ChunkedWriter::create_with_format(
        path,
        trace.meta.clone(),
        trace.num_threads(),
        trace.sites.clone(),
        chunk_events,
        format,
    )?;
    // Threads with no events would otherwise block window completion
    // forever (their next timestamp is unknowable), degrading the writer to
    // one trace-sized window at finish().
    for tt in &trace.threads {
        if tt.events.is_empty() {
            writer.finish_thread(tt.thread);
        }
    }
    // Feed events in global time order (k-way merge over the per-thread
    // streams) so complete windows flush incrementally instead of
    // accumulating whole threads. Grants are interleaved at their own
    // timestamps so each lands in the chunk whose window covers it, exactly
    // like the in-memory `TraceChunks` adapter.
    let mut cursors = vec![0usize; trace.num_threads()];
    let mut grant_cursor = 0usize;
    loop {
        let mut next: Option<(Time, usize)> = None;
        for (ti, tt) in trace.threads.iter().enumerate() {
            if let Some(te) = tt.events.get(cursors[ti]) {
                if next.is_none_or(|(t, _)| te.at < t) {
                    next = Some((te.at, ti));
                }
            }
        }
        let Some((at, ti)) = next else { break };
        while grant_cursor < trace.lock_schedule.len() && trace.lock_schedule[grant_cursor].at <= at
        {
            writer.push_grant(trace.lock_schedule[grant_cursor]);
            grant_cursor += 1;
        }
        let te = &trace.threads[ti].events[cursors[ti]];
        writer.push_event(trace.threads[ti].thread, te.at, te.event.clone())?;
        cursors[ti] += 1;
        if cursors[ti] == trace.threads[ti].events.len() {
            writer.finish_thread(trace.threads[ti].thread);
        }
    }
    for grant in &trace.lock_schedule[grant_cursor..] {
        writer.push_grant(*grant);
    }
    writer.finish(
        trace.total_time,
        trace.threads.iter().map(|t| t.finish_time).collect(),
    )
}

/// Summary of one chunk-file format conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvertSummary {
    /// Source format (autodetected by magic bytes).
    pub from: ChunkFormat,
    /// Destination format.
    pub to: ChunkFormat,
    /// Records translated (header + chunks + trailer).
    pub records: u64,
    /// Chunk records among them.
    pub chunks: u64,
    /// Events carried by the translated chunks.
    pub events: u64,
    /// Bytes read from the source file.
    pub bytes_in: u64,
    /// Bytes written to the destination file.
    pub bytes_out: u64,
}

/// Translates a chunk file between formats, record by record: only one
/// record is resident at a time, so the conversion is chunk-bounded no
/// matter how large the file. The source format is autodetected by magic
/// bytes; `to` picks the destination format (`None` → by `dst`'s
/// extension). Records pass through verbatim — a converted file carries the
/// identical record stream.
///
/// # Errors
///
/// Fails on the first unreadable or unparseable source record (conversion
/// must not silently drop data; recover a corrupt file through
/// [`ChunkFileReader`](perfplay_trace::ChunkFileReader) first) and on any
/// write failure.
pub fn convert_chunk_file(
    src: impl AsRef<Path>,
    dst: impl AsRef<Path>,
    to: Option<ChunkFormat>,
) -> Result<ConvertSummary, StreamError> {
    let src_path = src.as_ref().display().to_string();
    let records = RawChunkRecords::open(&src)?;
    convert_records(src_path, records, dst, to)
}

/// [`convert_chunk_file`] through the pipelined scanner: source framing and
/// record decoding overlap with re-encoding and writing, which pays off on
/// multi-core machines for large jsonl sources. `decode_workers` of `0`
/// sizes the decode pool from [`perfplay_trace::default_decode_workers`].
/// The converted file is byte-identical to the sequential path's output.
///
/// # Errors
///
/// Same conditions as [`convert_chunk_file`], plus thread-spawn failures.
pub fn convert_chunk_file_pipelined(
    src: impl AsRef<Path>,
    dst: impl AsRef<Path>,
    to: Option<ChunkFormat>,
    decode_workers: usize,
) -> Result<ConvertSummary, StreamError> {
    let src_path = src.as_ref().display().to_string();
    let records = RawChunkRecords::open_pipelined(&src, None, decode_workers)?;
    convert_records(src_path, records, dst, to)
}

/// Shared translate-and-write loop behind both convert entry points.
fn convert_records(
    src_path: String,
    records: RawChunkRecords,
    dst: impl AsRef<Path>,
    to: Option<ChunkFormat>,
) -> Result<ConvertSummary, StreamError> {
    let from = records.format();
    let to = to.unwrap_or_else(|| ChunkFormat::for_path(&dst));
    let file = std::fs::File::create(&dst).map_err(StreamError::from)?;
    let mut out = std::io::BufWriter::new(file);
    let mut summary = ConvertSummary {
        from,
        to,
        records: 0,
        chunks: 0,
        events: 0,
        bytes_in: 0,
        bytes_out: 0,
    };
    let prelude = to.prelude();
    out.write_all(&prelude).map_err(StreamError::from)?;
    summary.bytes_out += prelude.len() as u64;
    let mut scratch = Vec::new();
    for raw in records {
        let record = raw.record.map_err(|e| StreamError::At {
            path: src_path.clone(),
            line: raw.line,
            offset: raw.offset,
            source: Box::new(e),
        })?;
        if let ChunkFileRecord::Chunk(chunk) = &record {
            summary.chunks += 1;
            summary.events += chunk.num_events() as u64;
        }
        summary.records += 1;
        summary.bytes_in += raw.bytes;
        scratch.clear();
        to.encode_record(&record, &mut scratch)?;
        out.write_all(&scratch).map_err(StreamError::from)?;
        summary.bytes_out += scratch.len() as u64;
    }
    out.flush().map_err(StreamError::from)?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use perfplay_program::ProgramBuilder;
    use perfplay_sim::SimConfig;
    use perfplay_trace::{read_chunked_trace, ChunkFileReader, EventSource};

    fn demo_trace() -> Trace {
        let mut b = ProgramBuilder::new("chunked-demo");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("c.c", "work", 3);
        for i in 0..3 {
            b.thread(format!("t{i}"), |t| {
                t.loop_n(5, |l| {
                    l.compute_ns(100);
                    l.locked(lock, site, |cs| {
                        cs.write_add(x, 1);
                    });
                    l.compute_ns(60);
                });
            });
        }
        Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("perfplay-chunked-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn spill_and_reassemble_roundtrips_the_trace() {
        let trace = demo_trace();
        let path = temp_path("roundtrip");
        for chunk_events in [1, 7, 64, 100_000] {
            let summary = spill_trace(&trace, &path, chunk_events).unwrap();
            assert_eq!(summary.events as usize, trace.num_events());
            assert!(summary.chunks >= 1);
            assert!(summary.bytes > 0);
            let back = read_chunked_trace(&path).unwrap();
            assert_eq!(back, trace);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incremental_spill_flushes_before_finish() {
        let trace = demo_trace();
        let path = temp_path("incremental");
        // Tiny windows: chunks must be written while events are still being
        // pushed, not hoarded until finish().
        let summary = spill_trace(&trace, &path, 8).unwrap();
        assert!(
            summary.chunks > 3,
            "expected multiple windows, got {}",
            summary.chunks
        );
        let mut reader = ChunkFileReader::open(&path).unwrap();
        let mut prev: Option<Time> = None;
        while let Some(chunk) = reader.next_chunk().unwrap() {
            if let Some(p) = prev {
                assert!(chunk.window_end > p);
            }
            for span in &chunk.spans {
                for te in &span.events {
                    assert!(te.at <= chunk.window_end);
                    if let Some(p) = prev {
                        assert!(te.at > p, "tie straddled a window boundary");
                    }
                }
            }
            prev = Some(chunk.window_end);
        }
        assert_eq!(
            reader.trailer().unwrap().events as usize,
            trace.num_events()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn grants_land_in_their_own_windows() {
        // Regression: grants used to be queued only after every event, so
        // intermediate chunks carried none and the final chunk carried the
        // whole schedule — diverging from the TraceChunks adapter.
        let trace = demo_trace();
        assert!(trace.lock_schedule.len() > 4);
        let path = temp_path("grants");
        let summary = spill_trace(&trace, &path, 16).unwrap();
        assert!(summary.chunks > 2);
        let mut reader = ChunkFileReader::open(&path).unwrap();
        let mut chunks_with_grants = 0;
        while let Some(chunk) = reader.next_chunk().unwrap() {
            for g in &chunk.grants {
                assert!(g.at <= chunk.window_end, "grant after its window");
            }
            if !chunk.grants.is_empty() {
                chunks_with_grants += 1;
            }
        }
        assert!(
            chunks_with_grants > 1,
            "grants must be spread across windows, not hoarded in the last"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_threads_do_not_block_window_flushing() {
        // Regression: a thread with zero events kept `latest == None`
        // forever, so no window could complete and the writer buffered the
        // whole trace until finish().
        let mut trace = demo_trace();
        let idle = perfplay_trace::ThreadTrace::new(ThreadId::new(trace.num_threads() as u32));
        trace.threads.push(idle);
        trace.meta.num_threads += 1;
        let path = temp_path("idlethread");
        let summary = spill_trace(&trace, &path, 8).unwrap();
        assert!(
            summary.chunks > 3,
            "windows must flush incrementally despite the idle thread, got {} chunks",
            summary.chunks
        );
        let back = read_chunked_trace(&path).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pbin_spill_and_reassemble_roundtrips_the_trace() {
        let trace = demo_trace();
        let path = temp_path("pbin-roundtrip").with_extension("pbin");
        for chunk_events in [1, 7, 64, 100_000] {
            let summary =
                spill_trace_with_format(&trace, &path, chunk_events, ChunkFormat::Pbin).unwrap();
            assert_eq!(summary.events as usize, trace.num_events());
            assert_eq!(
                summary.bytes,
                std::fs::metadata(&path).unwrap().len(),
                "summary bytes must equal the file size"
            );
            let reader = ChunkFileReader::open(&path).unwrap();
            assert_eq!(reader.format(), ChunkFormat::Pbin);
            let back = read_chunked_trace(&path).unwrap();
            assert_eq!(back, trace);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn extension_picks_the_format_and_magic_detection_overrides_it() {
        let trace = demo_trace();
        // A `.pbin` extension selects the binary writer...
        let pbin_path = temp_path("ext").with_extension("pbin");
        spill_trace(&trace, &pbin_path, 32).unwrap();
        let head = std::fs::read(&pbin_path).unwrap();
        assert_eq!(&head[0..4], b"PBIN");
        // ...and a binary file with a misleading extension is still read
        // correctly, because readers detect by magic, not name.
        let disguised = temp_path("disguised").with_extension("jsonl");
        std::fs::copy(&pbin_path, &disguised).unwrap();
        let back = read_chunked_trace(&disguised).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_file(&pbin_path).ok();
        std::fs::remove_file(&disguised).ok();
    }

    #[test]
    fn converted_files_carry_the_identical_record_stream() {
        let trace = demo_trace();
        let json_path = temp_path("convert-src").with_extension("jsonl");
        spill_trace(&trace, &json_path, 16).unwrap();
        let golden: Vec<ChunkFileRecord> = RawChunkRecords::open(&json_path)
            .unwrap()
            .map(|r| r.record.unwrap())
            .collect();

        // json -> pbin -> json: every hop preserves the record stream.
        let pbin_path = temp_path("convert-mid").with_extension("pbin");
        let s1 = convert_chunk_file(&json_path, &pbin_path, None).unwrap();
        assert_eq!((s1.from, s1.to), (ChunkFormat::Json, ChunkFormat::Pbin));
        assert_eq!(s1.events as usize, trace.num_events());
        assert_eq!(s1.bytes_out, std::fs::metadata(&pbin_path).unwrap().len());
        let mid: Vec<ChunkFileRecord> = RawChunkRecords::open(&pbin_path)
            .unwrap()
            .map(|r| r.record.unwrap())
            .collect();
        assert_eq!(mid, golden);

        let back_path = temp_path("convert-back").with_extension("jsonl");
        let s2 = convert_chunk_file(&pbin_path, &back_path, None).unwrap();
        assert_eq!((s2.from, s2.to), (ChunkFormat::Pbin, ChunkFormat::Json));
        let back: Vec<ChunkFileRecord> = RawChunkRecords::open(&back_path)
            .unwrap()
            .map(|r| r.record.unwrap())
            .collect();
        assert_eq!(back, golden);
        assert_eq!(read_chunked_trace(&back_path).unwrap(), trace);

        std::fs::remove_file(&json_path).ok();
        std::fs::remove_file(&pbin_path).ok();
        std::fs::remove_file(&back_path).ok();
    }

    #[test]
    fn convert_fails_on_corrupt_source_with_located_error() {
        let trace = demo_trace();
        let path = temp_path("convert-corrupt").with_extension("jsonl");
        spill_trace(&trace, &path, 16).unwrap();
        let mut content = std::fs::read_to_string(&path).unwrap();
        let mid = content.len() / 2;
        content.replace_range(mid..mid + 1, "\u{1}");
        std::fs::write(&path, content).unwrap();
        let out = temp_path("convert-corrupt-out").with_extension("pbin");
        let err = convert_chunk_file(&path, &out, None).unwrap_err();
        assert!(
            matches!(err, StreamError::At { .. }),
            "conversion error must carry file coordinates, got {err:?}"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn pbin_reader_rejects_truncated_files() {
        let trace = demo_trace();
        let path = temp_path("pbin-truncated").with_extension("pbin");
        spill_trace(&trace, &path, 16).unwrap();
        let content = std::fs::read(&path).unwrap();
        // Drop the final frame (the trailer) entirely.
        let marker = [0xF7u8, 0x50, 0x42, 0xF7];
        let last_frame = (0..content.len() - 3)
            .rev()
            .find(|&i| content[i..i + 4] == marker)
            .unwrap();
        std::fs::write(&path, &content[..last_frame]).unwrap();
        let mut reader = ChunkFileReader::open(&path).unwrap();
        let result = loop {
            match reader.next_chunk() {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        assert!(result.is_err(), "truncated pbin file must not end cleanly");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_rejects_truncated_files() {
        let trace = demo_trace();
        let path = temp_path("truncated");
        spill_trace(&trace, &path, 16).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let truncated: Vec<&str> = content.lines().collect();
        let without_trailer = truncated[..truncated.len() - 1].join("\n");
        std::fs::write(&path, without_trailer).unwrap();
        let mut reader = ChunkFileReader::open(&path).unwrap();
        let result = loop {
            match reader.next_chunk() {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        assert!(result.is_err(), "truncated file must not end cleanly");
        std::fs::remove_file(&path).ok();
    }
}
