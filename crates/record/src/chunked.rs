//! Chunked trace spilling: writing a recording to disk as time-windowed
//! chunks while it happens.
//!
//! [`ChunkedWriter`] is the producing half of the streaming ingestion path:
//! it accepts events thread by thread (in per-thread program order, the only
//! order a recorder naturally has) and emits [`TraceChunk`]s to a JSON-lines
//! file as soon as a time window is *complete* — i.e. once every still-active
//! thread has progressed past the window, so no earlier event can arrive. The
//! resulting file honours the chunk contract documented in
//! `perfplay_trace::stream` and is consumed by
//! [`ChunkFileReader`](perfplay_trace::ChunkFileReader) or reassembled with
//! [`read_chunked_trace`](perfplay_trace::read_chunked_trace).
//!
//! The writer's resident state is the set of events of the currently
//! incomplete window — bounded as long as threads make roughly comparable
//! time progress, independent of total trace length.

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;

use perfplay_trace::{
    ChunkFileHeader, ChunkFileRecord, ChunkFileTrailer, Event, LockGrant, SiteTable, ThreadId,
    ThreadSpan, Time, TimedEvent, Trace, TraceChunk, TraceMeta,
};

/// Summary of one finished chunked spill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkedWriteSummary {
    /// Chunks written.
    pub chunks: u64,
    /// Events written.
    pub events: u64,
    /// Bytes written to the file.
    pub bytes: u64,
}

#[derive(Debug, Default)]
struct ThreadBuffer {
    /// Index (in the thread's full stream) of `events.front()`.
    base_index: usize,
    events: VecDeque<TimedEvent>,
    /// Timestamp of the latest pushed event.
    latest: Option<Time>,
    finished: bool,
}

/// Incremental writer of a chunked trace file.
///
/// Events must be pushed in per-thread program order (non-decreasing
/// timestamps); grants in ascending grant time. Call
/// [`finish`](Self::finish) to flush the final window and write the trailer
/// — dropping the writer without finishing leaves a truncated file that the
/// reader will reject.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    out: W,
    chunk_events: usize,
    threads: Vec<ThreadBuffer>,
    grants: VecDeque<LockGrant>,
    buffered: usize,
    seq: u64,
    events_written: u64,
    bytes_written: u64,
    last_window_end: Option<Time>,
}

impl ChunkedWriter<std::io::BufWriter<std::fs::File>> {
    /// Creates a chunked trace file at `path` and writes its header.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be created or the header cannot be written.
    pub fn create(
        path: impl AsRef<Path>,
        meta: TraceMeta,
        num_threads: usize,
        sites: SiteTable,
        chunk_events: usize,
    ) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        ChunkedWriter::new(
            std::io::BufWriter::new(file),
            meta,
            num_threads,
            sites,
            chunk_events,
        )
    }
}

impl<W: Write> ChunkedWriter<W> {
    /// Wraps an arbitrary writer, emitting the header record immediately.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn new(
        out: W,
        meta: TraceMeta,
        num_threads: usize,
        sites: SiteTable,
        chunk_events: usize,
    ) -> std::io::Result<Self> {
        let mut writer = ChunkedWriter {
            out,
            chunk_events: chunk_events.max(1),
            threads: (0..num_threads).map(|_| ThreadBuffer::default()).collect(),
            grants: VecDeque::new(),
            buffered: 0,
            seq: 0,
            events_written: 0,
            bytes_written: 0,
            last_window_end: None,
        };
        writer.write_record(&ChunkFileRecord::Header(ChunkFileHeader {
            meta,
            num_threads,
            sites,
        }))?;
        Ok(writer)
    }

    fn write_record(&mut self, record: &ChunkFileRecord) -> std::io::Result<()> {
        let json = serde_json::to_string(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.0))?;
        self.bytes_written += json.len() as u64 + 1;
        self.out.write_all(json.as_bytes())?;
        self.out.write_all(b"\n")
    }

    /// Appends one event of a thread. Timestamps must be non-decreasing per
    /// thread.
    ///
    /// # Errors
    ///
    /// Propagates write failures from window flushes.
    pub fn push_event(&mut self, thread: ThreadId, at: Time, event: Event) -> std::io::Result<()> {
        let buffer = &mut self.threads[thread.index()];
        assert!(
            buffer.latest.is_none_or(|l| at >= l),
            "non-monotonic push on {thread}: {at} after {:?}",
            buffer.latest
        );
        assert!(!buffer.finished, "push after finish_thread on {thread}");
        buffer.latest = Some(at);
        buffer.events.push_back(TimedEvent::new(at, event));
        self.buffered += 1;
        if self.buffered >= self.chunk_events {
            self.flush_complete_window()?;
        }
        Ok(())
    }

    /// Appends a lock grant (ascending grant-time order).
    pub fn push_grant(&mut self, grant: LockGrant) {
        self.grants.push_back(grant);
    }

    /// Marks a thread as finished: it will push no more events and stops
    /// constraining window completion.
    pub fn finish_thread(&mut self, thread: ThreadId) {
        self.threads[thread.index()].finished = true;
    }

    /// Flushes the largest window that can no longer receive events: every
    /// unfinished thread has advanced past it. Returns without writing when
    /// no such window exists yet.
    fn flush_complete_window(&mut self) -> std::io::Result<()> {
        // The window must end strictly before the slowest active thread's
        // latest timestamp: that thread may still push more events *at* its
        // latest time (ties are allowed), and ties must never straddle a
        // chunk boundary.
        let mut bound: Option<Time> = None;
        for buffer in &self.threads {
            if buffer.finished {
                continue;
            }
            let Some(latest) = buffer.latest else {
                return Ok(()); // an active thread has not started yet
            };
            bound = Some(bound.map_or(latest, |b: Time| b.min(latest)));
        }
        let window_end = match bound {
            // All threads finished: flush everything that remains.
            None => self
                .threads
                .iter()
                .filter_map(|b| b.events.back().map(|e| e.at))
                .max(),
            Some(latest) => Some(Time::from_nanos(latest.as_nanos().saturating_sub(1))),
        };
        let Some(window_end) = window_end else {
            return Ok(()); // nothing buffered at all
        };
        if self.last_window_end.is_some_and(|prev| window_end <= prev) {
            return Ok(());
        }
        self.emit_window(window_end)
    }

    fn emit_window(&mut self, window_end: Time) -> std::io::Result<()> {
        let mut spans = Vec::new();
        for (ti, buffer) in self.threads.iter_mut().enumerate() {
            let take = buffer
                .events
                .iter()
                .take_while(|e| e.at <= window_end)
                .count();
            if take == 0 {
                continue;
            }
            let events: Vec<TimedEvent> = buffer.events.drain(..take).collect();
            let base_index = buffer.base_index;
            buffer.base_index += take;
            self.buffered -= take;
            spans.push(ThreadSpan {
                thread: ThreadId::new(ti as u32),
                base_index,
                events,
            });
        }
        let mut grants = Vec::new();
        while let Some(g) = self.grants.front() {
            if g.at > window_end {
                break;
            }
            grants.extend(self.grants.pop_front());
        }
        if spans.is_empty() && grants.is_empty() {
            return Ok(());
        }
        let chunk = TraceChunk {
            seq: self.seq,
            window_end,
            spans,
            grants,
        };
        self.seq += 1;
        self.events_written += chunk.num_events() as u64;
        self.last_window_end = Some(window_end);
        self.write_record(&ChunkFileRecord::Chunk(chunk))
    }

    /// Flushes everything still buffered, writes the trailer and returns the
    /// spill summary.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn finish(
        mut self,
        total_time: Time,
        finish_times: Vec<Time>,
    ) -> std::io::Result<ChunkedWriteSummary> {
        for buffer in &mut self.threads {
            buffer.finished = true;
        }
        if self.buffered > 0 || !self.grants.is_empty() {
            let window_end = self
                .threads
                .iter()
                .filter_map(|b| b.events.back().map(|e| e.at))
                .max()
                .unwrap_or(Time::MAX)
                .max(self.grants.back().map(|g| g.at).unwrap_or(Time::ZERO));
            self.emit_window(window_end)?;
        }
        let trailer = ChunkFileTrailer {
            total_time,
            finish_times,
            chunks: self.seq,
            events: self.events_written,
        };
        self.write_record(&ChunkFileRecord::Trailer(trailer))?;
        self.out.flush()?;
        Ok(ChunkedWriteSummary {
            chunks: self.seq,
            events: self.events_written,
            bytes: self.bytes_written,
        })
    }
}

/// Spills a complete in-memory trace to `path` as a chunked trace file,
/// streaming it through the windowing logic (events interleaved across
/// threads in time order, so windows flush as they complete).
///
/// # Errors
///
/// Propagates write failures.
pub fn spill_trace(
    trace: &Trace,
    path: impl AsRef<Path>,
    chunk_events: usize,
) -> std::io::Result<ChunkedWriteSummary> {
    let mut writer = ChunkedWriter::create(
        path,
        trace.meta.clone(),
        trace.num_threads(),
        trace.sites.clone(),
        chunk_events,
    )?;
    // Threads with no events would otherwise block window completion
    // forever (their next timestamp is unknowable), degrading the writer to
    // one trace-sized window at finish().
    for tt in &trace.threads {
        if tt.events.is_empty() {
            writer.finish_thread(tt.thread);
        }
    }
    // Feed events in global time order (k-way merge over the per-thread
    // streams) so complete windows flush incrementally instead of
    // accumulating whole threads. Grants are interleaved at their own
    // timestamps so each lands in the chunk whose window covers it, exactly
    // like the in-memory `TraceChunks` adapter.
    let mut cursors = vec![0usize; trace.num_threads()];
    let mut grant_cursor = 0usize;
    loop {
        let mut next: Option<(Time, usize)> = None;
        for (ti, tt) in trace.threads.iter().enumerate() {
            if let Some(te) = tt.events.get(cursors[ti]) {
                if next.is_none_or(|(t, _)| te.at < t) {
                    next = Some((te.at, ti));
                }
            }
        }
        let Some((at, ti)) = next else { break };
        while grant_cursor < trace.lock_schedule.len() && trace.lock_schedule[grant_cursor].at <= at
        {
            writer.push_grant(trace.lock_schedule[grant_cursor]);
            grant_cursor += 1;
        }
        let te = &trace.threads[ti].events[cursors[ti]];
        writer.push_event(trace.threads[ti].thread, te.at, te.event.clone())?;
        cursors[ti] += 1;
        if cursors[ti] == trace.threads[ti].events.len() {
            writer.finish_thread(trace.threads[ti].thread);
        }
    }
    for grant in &trace.lock_schedule[grant_cursor..] {
        writer.push_grant(*grant);
    }
    writer.finish(
        trace.total_time,
        trace.threads.iter().map(|t| t.finish_time).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use perfplay_program::ProgramBuilder;
    use perfplay_sim::SimConfig;
    use perfplay_trace::{read_chunked_trace, ChunkFileReader, EventSource};

    fn demo_trace() -> Trace {
        let mut b = ProgramBuilder::new("chunked-demo");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let site = b.site("c.c", "work", 3);
        for i in 0..3 {
            b.thread(format!("t{i}"), |t| {
                t.loop_n(5, |l| {
                    l.compute_ns(100);
                    l.locked(lock, site, |cs| {
                        cs.write_add(x, 1);
                    });
                    l.compute_ns(60);
                });
            });
        }
        Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("perfplay-chunked-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn spill_and_reassemble_roundtrips_the_trace() {
        let trace = demo_trace();
        let path = temp_path("roundtrip");
        for chunk_events in [1, 7, 64, 100_000] {
            let summary = spill_trace(&trace, &path, chunk_events).unwrap();
            assert_eq!(summary.events as usize, trace.num_events());
            assert!(summary.chunks >= 1);
            assert!(summary.bytes > 0);
            let back = read_chunked_trace(&path).unwrap();
            assert_eq!(back, trace);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incremental_spill_flushes_before_finish() {
        let trace = demo_trace();
        let path = temp_path("incremental");
        // Tiny windows: chunks must be written while events are still being
        // pushed, not hoarded until finish().
        let summary = spill_trace(&trace, &path, 8).unwrap();
        assert!(
            summary.chunks > 3,
            "expected multiple windows, got {}",
            summary.chunks
        );
        let mut reader = ChunkFileReader::open(&path).unwrap();
        let mut prev: Option<Time> = None;
        while let Some(chunk) = reader.next_chunk().unwrap() {
            if let Some(p) = prev {
                assert!(chunk.window_end > p);
            }
            for span in &chunk.spans {
                for te in &span.events {
                    assert!(te.at <= chunk.window_end);
                    if let Some(p) = prev {
                        assert!(te.at > p, "tie straddled a window boundary");
                    }
                }
            }
            prev = Some(chunk.window_end);
        }
        assert_eq!(
            reader.trailer().unwrap().events as usize,
            trace.num_events()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn grants_land_in_their_own_windows() {
        // Regression: grants used to be queued only after every event, so
        // intermediate chunks carried none and the final chunk carried the
        // whole schedule — diverging from the TraceChunks adapter.
        let trace = demo_trace();
        assert!(trace.lock_schedule.len() > 4);
        let path = temp_path("grants");
        let summary = spill_trace(&trace, &path, 16).unwrap();
        assert!(summary.chunks > 2);
        let mut reader = ChunkFileReader::open(&path).unwrap();
        let mut chunks_with_grants = 0;
        while let Some(chunk) = reader.next_chunk().unwrap() {
            for g in &chunk.grants {
                assert!(g.at <= chunk.window_end, "grant after its window");
            }
            if !chunk.grants.is_empty() {
                chunks_with_grants += 1;
            }
        }
        assert!(
            chunks_with_grants > 1,
            "grants must be spread across windows, not hoarded in the last"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_threads_do_not_block_window_flushing() {
        // Regression: a thread with zero events kept `latest == None`
        // forever, so no window could complete and the writer buffered the
        // whole trace until finish().
        let mut trace = demo_trace();
        let idle = perfplay_trace::ThreadTrace::new(ThreadId::new(trace.num_threads() as u32));
        trace.threads.push(idle);
        trace.meta.num_threads += 1;
        let path = temp_path("idlethread");
        let summary = spill_trace(&trace, &path, 8).unwrap();
        assert!(
            summary.chunks > 3,
            "windows must flush incrementally despite the idle thread, got {} chunks",
            summary.chunks
        );
        let back = read_chunked_trace(&path).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_rejects_truncated_files() {
        let trace = demo_trace();
        let path = temp_path("truncated");
        spill_trace(&trace, &path, 16).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let truncated: Vec<&str> = content.lines().collect();
        let without_trailer = truncated[..truncated.len() - 1].join("\n");
        std::fs::write(&path, without_trailer).unwrap();
        let mut reader = ChunkFileReader::open(&path).unwrap();
        let result = loop {
            match reader.next_chunk() {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        assert!(result.is_err(), "truncated file must not end cleanly");
        std::fs::remove_file(&path).ok();
    }
}
