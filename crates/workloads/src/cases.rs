//! Models of the paper's case-study bugs (Section 6.6) and of their fixes.
//!
//! * **#BUG 1** — the OpenLDAP spin-wait of Figure 4: worker threads
//!   repeatedly take `dbmp->mutex` only to read `dbmfp->ref`, burning CPU
//!   until a slow critical thread finally drops the reference. The fix the
//!   paper applies replaces the spin with a barrier.
//! * **#BUG 2** — the pbzip2 join of Figure 18: during the end stage every
//!   consumer repeatedly takes `mu` and the nested `muDone` just to read
//!   `fifo->empty` and `producerDone`, producing nested read-read ULCPs. The
//!   fix moves the responsibility to the producer (signal/wait), modelled
//!   here with a barrier hand-off.
//! * **MySQL #68573** — the query-cache `try_lock` of Figures 17/28: every
//!   SELECT holds `structure_guard_mutex` while it sleeps on a 50 ms timed
//!   wait, so concurrent SELECTs serialize on a lock nobody needs.

use perfplay_program::{Program, ProgramBuilder};
use perfplay_trace::Time;

use crate::profile::WorkloadConfig;

/// #BUG 1: the OpenLDAP `dbmfp->ref` spin-wait (Figure 4).
///
/// `threads - 1` workers spin on the shared reference count under
/// `dbmp->mutex`; the last thread performs the real work (scaled by the input
/// size) before releasing its reference.
pub fn bug1_openldap_spinwait(config: &WorkloadConfig) -> Program {
    let mut b = ProgramBuilder::new("openldap-bug1");
    b.input(config.input.label());
    let mutex = b.lock("dbmp->mutex");
    let refcount = b.shared("dbmfp->ref", 0);
    let spin_site = b.site("mp/mp_fopen.c", "wait_for_ref", 642);
    let release_site = b.site("mp/mp_fopen.c", "release_ref", 690);

    let work = Time::from_micros((60.0 * config.input.scale()).round().max(1.0) as u64);
    let waiters = config.threads.saturating_sub(1).max(1);
    for i in 0..waiters {
        b.thread(format!("waiter{i}"), |t| {
            t.spin_wait_shared(mutex, spin_site, refcount, 1, Time::from_nanos(250), 20_000);
            t.compute_us(2);
        });
    }
    b.thread("critical-thread", |t| {
        t.compute(work);
        t.locked(mutex, release_site, |cs| {
            cs.write_set(refcount, 1);
        });
    });
    b.build()
}

/// The fix for #BUG 1: the threads synchronize through a barrier instead of
/// spinning on the reference count.
pub fn bug1_fixed_barrier(config: &WorkloadConfig) -> Program {
    let mut b = ProgramBuilder::new("openldap-bug1-fixed");
    b.input(config.input.label());
    let barrier = b.barrier("ref_barrier", config.threads.max(2));
    let work = Time::from_micros((60.0 * config.input.scale()).round().max(1.0) as u64);
    let waiters = config.threads.saturating_sub(1).max(1);
    for i in 0..waiters {
        b.thread(format!("waiter{i}"), |t| {
            t.barrier(barrier);
            t.compute_us(2);
        });
    }
    b.thread("critical-thread", |t| {
        t.compute(work);
        t.barrier(barrier);
    });
    b.build()
}

/// #BUG 2: the pbzip2 producer/consumer join (Figure 18).
///
/// Consumers compress their share of blocks, then enter the end stage where
/// each loop iteration takes `mu` and the nested `muDone` just to check
/// `fifo->empty` and `producerDone`.
pub fn bug2_pbzip2_join(config: &WorkloadConfig) -> Program {
    let mut b = ProgramBuilder::new("pbzip2-bug2");
    b.input(config.input.label());
    let mu = b.lock("mu");
    let mu_done = b.lock("muDone");
    let fifo_count = b.shared("fifo->count", 0);
    let fifo_empty = b.shared("fifo->empty", 0);
    let producer_done = b.shared("producerDone", 0);
    let consume_site = b.site("pbzip2.cpp", "consumer_dequeue", 2109);
    let join_site = b.site("pbzip2.cpp", "consumer_join_check", 2122);
    let done_site = b.site("pbzip2.cpp", "syncGetProducerDone", 534);
    let produce_site = b.site("pbzip2.cpp", "producer_enqueue", 1850);
    let finish_site = b.site("pbzip2.cpp", "producer_finish", 1920);

    let blocks = (24.0 * config.input.scale()).round().max(2.0) as u32;
    let consumers = config.threads.saturating_sub(1).max(1);
    let blocks_per_consumer = (blocks / consumers as u32).max(1);

    for i in 0..consumers {
        b.thread(format!("consumer{i}"), |t| {
            // Normal consumption phase.
            t.loop_n(blocks_per_consumer, |l| {
                l.locked(mu, consume_site, |cs| {
                    let got = cs.read_into(fifo_count);
                    cs.write_add(fifo_count, -1);
                    let _ = got;
                });
                l.compute_us(3); // compress the block
            });
            // End stage: poll the two flags under nested locks until the
            // producer is done — the read-read ULCP of the paper.
            t.while_cond(
                perfplay_program::Cond::ne(perfplay_program::ValueSource::Shared(producer_done), 1),
                20_000,
                |poll| {
                    poll.locked(mu, join_site, |cs| {
                        cs.read(fifo_empty);
                        cs.locked(mu_done, done_site, |inner| {
                            inner.read(producer_done);
                        });
                    });
                    poll.compute_ns(300);
                },
            );
        });
    }
    b.thread("producer", |t| {
        t.loop_n(blocks, |l| {
            l.locked(mu, produce_site, |cs| {
                cs.write_add(fifo_count, 1);
            });
            l.compute_us(1); // read the next block from disk
        });
        t.locked(mu_done, finish_site, |cs| {
            cs.write_set(producer_done, 1);
        });
        t.locked(mu, finish_site, |cs| {
            cs.write_set(fifo_empty, 1);
        });
    });
    b.build()
}

/// The fix for #BUG 2: the producer takes responsibility for announcing the
/// end of the stream, and consumers exit through a single synchronization
/// point instead of polling the flags under two locks.
pub fn bug2_fixed_signal(config: &WorkloadConfig) -> Program {
    let mut b = ProgramBuilder::new("pbzip2-bug2-fixed");
    b.input(config.input.label());
    let mu = b.lock("mu");
    let join = b.barrier("join", config.threads.max(2));
    let fifo_count = b.shared("fifo->count", 0);
    let consume_site = b.site("pbzip2.cpp", "consumer_dequeue", 2109);
    let produce_site = b.site("pbzip2.cpp", "producer_enqueue", 1850);

    let blocks = (24.0 * config.input.scale()).round().max(2.0) as u32;
    let consumers = config.threads.saturating_sub(1).max(1);
    let blocks_per_consumer = (blocks / consumers as u32).max(1);

    for i in 0..consumers {
        b.thread(format!("consumer{i}"), |t| {
            t.loop_n(blocks_per_consumer, |l| {
                l.locked(mu, consume_site, |cs| {
                    let got = cs.read_into(fifo_count);
                    cs.write_add(fifo_count, -1);
                    let _ = got;
                });
                l.compute_us(3);
            });
            t.barrier(join);
        });
    }
    b.thread("producer", |t| {
        t.loop_n(blocks, |l| {
            l.locked(mu, produce_site, |cs| {
                cs.write_add(fifo_count, 1);
            });
            l.compute_us(1);
        });
        t.barrier(join);
    });
    b.build()
}

/// MySQL bug #68573: the query-cache `try_lock` holds `structure_guard_mutex`
/// across a timed wait, so concurrent SELECT statements serialize on the
/// cache lock and the intended 50 ms timeout stretches with the number of
/// threads.
pub fn mysql_68573_query_cache(config: &WorkloadConfig) -> Program {
    let mut b = ProgramBuilder::new("mysql-68573");
    b.input(config.input.label());
    let guard = b.lock("structure_guard_mutex");
    let cache_status = b.shared("COND_cache_status_changed", 0);
    let try_lock_site = b.site("sql_cache.cc", "Query_cache::try_lock", 1155);
    let select_site = b.site("sql_cache.cc", "send_result_to_client", 1210);
    let query_table = b.shared("query_cache_table", 3);

    let queries = (12.0 * config.input.scale()).round().max(1.0) as u32;
    // The paper's 50 ms timeout, scaled down by three orders of magnitude to
    // keep virtual runtimes small; the serialization shape is unchanged.
    let timeout_slice = Time::from_micros(5);

    for i in 0..config.threads {
        b.thread(format!("select{i}"), |t| {
            t.loop_n(queries, |l| {
                // try_lock: wait on the status change with the guard held.
                l.locked(guard, try_lock_site, |cs| {
                    cs.read(cache_status);
                    cs.compute(timeout_slice);
                });
                // Execute the statement without using the query cache.
                l.locked(guard, select_site, |cs| {
                    cs.read(query_table);
                    cs.compute_us(1);
                });
                l.compute_us(4);
            });
        });
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::InputSize;
    use perfplay_detect::{Detector, UlcpKind};
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;
    use perfplay_trace::Trace;

    fn record(program: &Program) -> Trace {
        Recorder::new(SimConfig::default())
            .record(program)
            .unwrap()
            .trace
    }

    fn config(threads: usize) -> WorkloadConfig {
        WorkloadConfig::new(threads, InputSize::SimMedium)
    }

    #[test]
    fn bug1_produces_read_read_ulcps_and_spin_waste() {
        let program = bug1_openldap_spinwait(&config(4));
        let recording = Recorder::new(SimConfig::default())
            .record(&program)
            .unwrap();
        let analysis = Detector::default().analyze(&recording.trace);
        assert!(analysis.breakdown.read_read > 10);
        // The spinning waiters burn CPU while the critical thread works.
        assert!(recording.timing.total_spin() > perfplay_trace::Time::from_micros(10));
    }

    #[test]
    fn bug1_fix_removes_the_ulcps() {
        let buggy = record(&bug1_openldap_spinwait(&config(4)));
        let fixed = record(&bug1_fixed_barrier(&config(4)));
        let buggy_ulcps = Detector::default().analyze(&buggy).breakdown.total_ulcps();
        let fixed_ulcps = Detector::default().analyze(&fixed).breakdown.total_ulcps();
        assert!(buggy_ulcps > 0);
        assert_eq!(fixed_ulcps, 0);
        assert!(fixed.num_acquisitions() < buggy.num_acquisitions());
    }

    #[test]
    fn bug2_produces_nested_read_read_ulcps() {
        let program = bug2_pbzip2_join(&config(4));
        let trace = record(&program);
        let analysis = Detector::default().analyze(&trace);
        assert!(analysis.breakdown.read_read > 0);
        // Nested sections exist: some critical section has depth > 0.
        assert!(analysis.sections.iter().any(|s| s.depth > 0));
        // And the producer's writes make some pairs truly conflict.
        assert!(analysis.breakdown.tlcp_edges > 0);
    }

    #[test]
    fn bug2_fix_reduces_lock_acquisitions_and_ulcps() {
        let buggy = record(&bug2_pbzip2_join(&config(4)));
        let fixed = record(&bug2_fixed_signal(&config(4)));
        assert!(fixed.num_acquisitions() < buggy.num_acquisitions());
        let buggy_rr = Detector::default().analyze(&buggy).breakdown.read_read;
        let fixed_rr = Detector::default().analyze(&fixed).breakdown.read_read;
        assert!(fixed_rr < buggy_rr);
    }

    #[test]
    fn mysql_68573_serializes_selects_on_the_guard_mutex() {
        let program = mysql_68573_query_cache(&config(4));
        let recording = Recorder::new(SimConfig::default())
            .record(&program)
            .unwrap();
        let analysis = Detector::default().analyze(&recording.trace);
        // The timed wait under the guard shows up as read-read ULCPs.
        assert!(analysis.breakdown.read_read > 0);
        assert!(analysis.ulcps.iter().any(|u| u.kind == UlcpKind::ReadRead));
        // Every SELECT thread spends most of its life waiting for the guard.
        let waiting: Vec<_> = recording
            .timing
            .per_thread
            .iter()
            .filter(|t| t.lock_wait > perfplay_trace::Time::from_micros(5))
            .collect();
        assert!(!waiting.is_empty());
    }

    #[test]
    fn case_programs_scale_with_input_size() {
        let small = record(&bug2_pbzip2_join(&WorkloadConfig::new(
            3,
            InputSize::SimSmall,
        )));
        let large = record(&bug2_pbzip2_join(&WorkloadConfig::new(
            3,
            InputSize::SimLarge,
        )));
        assert!(large.num_acquisitions() > small.num_acquisitions());
        assert!(large.total_time > small.total_time);
    }

    #[test]
    fn all_case_programs_validate() {
        let c = config(3);
        for program in [
            bug1_openldap_spinwait(&c),
            bug1_fixed_barrier(&c),
            bug2_pbzip2_join(&c),
            bug2_fixed_signal(&c),
            mysql_68573_query_cache(&c),
        ] {
            assert!(program.validate().is_ok(), "{} must validate", program.name);
        }
    }
}
