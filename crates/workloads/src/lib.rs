//! # perfplay-workloads
//!
//! Synthetic workload models for the PerfPlay reproduction.
//!
//! The paper evaluates PerfPlay on five real-world programs (OpenLDAP, MySQL,
//! pbzip2, TransmissionBT, HandBrake) and the PARSEC benchmark suite; none of
//! those can be linked into a Rust library, so this crate models each of them
//! as a `perfplay-program` whose *behaviour mix* (read-read, disjoint-write,
//! null-lock, benign and truly conflicting critical sections) follows the
//! application's Table 1 breakdown. See `DESIGN.md` for the substitution
//! argument and the scaling factors.
//!
//! * [`App`] — the sixteen application models, parameterized by thread count
//!   and [`InputSize`] (`simsmall` / `simmedium` / `simlarge`).
//! * [`cases`] — faithful models of the paper's case-study bugs (#BUG 1
//!   OpenLDAP spin-wait, #BUG 2 pbzip2 join, MySQL #68573) and of their
//!   fixes.
//! * [`random_workload`] — a seeded random program generator for
//!   property-based testing of the full pipeline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod apps;
pub mod cases;
mod generator;
mod profile;

pub use apps::App;
pub use generator::{random_workload, GeneratorConfig};
pub use profile::{
    build_lock_free_program, build_program, InputSize, Profile, SectionMix, WorkloadConfig,
};
