//! Random lock-program generator, used by property-based tests to exercise
//! the whole PerfPlay pipeline on inputs nobody hand-crafted.

use perfplay_program::{Program, ProgramBuilder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters of the random generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Number of threads to generate.
    pub threads: usize,
    /// Number of locks to declare.
    pub locks: usize,
    /// Number of shared objects to declare.
    pub objects: usize,
    /// Critical sections per thread.
    pub sections_per_thread: u32,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            threads: 3,
            locks: 2,
            objects: 4,
            sections_per_thread: 12,
        }
    }
}

impl GeneratorConfig {
    /// Average recorded events per generated critical section: acquire +
    /// release + ~1.4 in-section accesses + the pacing compute + the 30%
    /// outside read, plus the amortized thread exit. Calibrated against the
    /// recorder (see `event_target_lands_near_the_mark`).
    pub const EVENTS_PER_SECTION: f64 = 4.7;

    /// Shapes a workload so recording it produces roughly `target_events`
    /// events (within ~15%): the streaming-scale knob, used to build the
    /// >=10M-event traces the streaming detector is benchmarked on.
    pub fn for_event_target(
        threads: usize,
        locks: usize,
        objects: usize,
        target_events: u64,
    ) -> Self {
        let total_sections = (target_events as f64 / Self::EVENTS_PER_SECTION).ceil();
        let sections_per_thread = (total_sections / threads.max(1) as f64).ceil() as u32;
        GeneratorConfig {
            threads: threads.max(1),
            locks: locks.max(1),
            objects: objects.max(1),
            sections_per_thread: sections_per_thread.max(1),
        }
    }
}

/// Generates a random, structurally valid, deadlock-free lock program.
///
/// The generated sections mix reads, disjoint writes, benign writes and
/// read-modify-write conflicts; nested locks are never generated, so the
/// program always terminates and never deadlocks under the simulator.
pub fn random_workload(seed: u64, config: &GeneratorConfig) -> Program {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new(format!("random-{seed}"));
    b.input(format!("seed-{seed}"));

    let locks: Vec<_> = (0..config.locks.max(1))
        .map(|i| b.lock(format!("lock{i}")))
        .collect();
    let objects: Vec<_> = (0..config.objects.max(1))
        .map(|i| b.shared(format!("obj{i}"), rng.gen_range(0..4)))
        .collect();
    let sites: Vec<_> = (0..config.locks.max(1) * 3)
        .map(|i| b.site("random.c", format!("section{i}"), i as u32))
        .collect();

    for thread_index in 0..config.threads.max(1) {
        let locks = locks.clone();
        let objects = objects.clone();
        let sites = sites.clone();
        // Per-thread RNG so thread bodies are independent of iteration order.
        let mut trng = ChaCha8Rng::seed_from_u64(seed ^ (thread_index as u64).wrapping_mul(0x9e37));
        b.thread(format!("worker{thread_index}"), |t| {
            for _ in 0..config.sections_per_thread {
                let lock = locks[trng.gen_range(0..locks.len())];
                let site = sites[trng.gen_range(0..sites.len())];
                let obj = objects[trng.gen_range(0..objects.len())];
                let behaviour = trng.gen_range(0..5u32);
                t.locked(lock, site, |cs| match behaviour {
                    0 => {
                        cs.read(obj);
                    }
                    1 => {
                        cs.read(obj);
                        cs.read(objects[0]);
                    }
                    2 => {
                        cs.write_set(obj, 1);
                    }
                    3 => {
                        let v = cs.read_into(obj);
                        cs.write_add(obj, 1);
                        let _ = v;
                    }
                    _ => {
                        cs.compute_ns(50);
                    }
                });
                t.compute_ns(trng.gen_range(50..800));
                if trng.gen_bool(0.3) {
                    t.read(objects[trng.gen_range(0..objects.len())]);
                }
            }
        });
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_detect::Detector;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;

    #[test]
    fn generated_programs_validate_and_record() {
        for seed in 0..10 {
            let program = random_workload(seed, &GeneratorConfig::default());
            assert!(program.validate().is_ok(), "seed {seed}");
            let recording = Recorder::new(SimConfig::default())
                .record(&program)
                .unwrap();
            assert!(recording.trace.validate().is_ok(), "seed {seed}");
            let _ = Detector::default().analyze(&recording.trace);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_workload(7, &GeneratorConfig::default());
        let b = random_workload(7, &GeneratorConfig::default());
        assert_eq!(a, b);
        let c = random_workload(8, &GeneratorConfig::default());
        assert_ne!(a, c);
    }

    #[test]
    fn event_target_lands_near_the_mark() {
        let cfg = GeneratorConfig::for_event_target(4, 4, 32, 20_000);
        let program = random_workload(3, &cfg);
        let recording = Recorder::new(SimConfig::default())
            .record(&program)
            .unwrap();
        let events = recording.trace.num_events() as f64;
        assert!(
            (events - 20_000.0).abs() / 20_000.0 < 0.15,
            "target 20000, recorded {events}"
        );
    }

    #[test]
    fn config_controls_the_shape() {
        let cfg = GeneratorConfig {
            threads: 5,
            locks: 3,
            objects: 2,
            sections_per_thread: 4,
        };
        let program = random_workload(1, &cfg);
        assert_eq!(program.num_threads(), 5);
        assert_eq!(program.num_locks(), 3);
        assert_eq!(program.stats().static_critical_sections, 5 * 4);
    }
}
