//! Generic machinery for building synthetic application models.
//!
//! Every application in the paper's evaluation (Table 1) exhibits a different
//! *mix* of critical-section behaviours: how many sections are read-only,
//! write disjoint objects, turn out empty (null-locks), conflict benignly, or
//! truly conflict. A [`Profile`] captures that mix together with the coarse
//! shape of the program (locks, code sites, iteration counts, section and gap
//! costs); [`build_program`] expands it into a concrete `perfplay-program`
//! for a given thread count and input size.
//!
//! The absolute dynamic counts are scaled down roughly an order of magnitude
//! from the paper's Table 1 so the whole evaluation runs in seconds; the
//! *relative* mix per application and the ordering across applications are
//! preserved, which is what the reproduced tables and figures depend on.

use perfplay_program::{Cond, Program, ProgramBuilder, ValueSource};
use perfplay_trace::Time;

/// Input size of a workload, mirroring PARSEC's `simsmall` / `simmedium` /
/// `simlarge` convention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InputSize {
    /// Small input (half the baseline work).
    SimSmall,
    /// Medium input (the baseline).
    SimMedium,
    /// Large input (double the baseline work).
    SimLarge,
    /// Explicit scale factor relative to the baseline.
    Custom(f64),
}

impl InputSize {
    /// The work-scaling factor this input size applies to iteration counts.
    pub fn scale(self) -> f64 {
        match self {
            InputSize::SimSmall => 0.5,
            InputSize::SimMedium => 1.0,
            InputSize::SimLarge => 2.0,
            InputSize::Custom(f) => f.max(0.0),
        }
    }

    /// Name used in trace metadata and reports.
    pub fn label(self) -> String {
        match self {
            InputSize::SimSmall => "simsmall".into(),
            InputSize::SimMedium => "simmedium".into(),
            InputSize::SimLarge => "simlarge".into(),
            InputSize::Custom(f) => format!("custom-x{f:.2}"),
        }
    }
}

/// How a workload is instantiated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Input size.
    pub input: InputSize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            threads: 2,
            input: InputSize::SimLarge,
        }
    }
}

impl WorkloadConfig {
    /// Convenience constructor.
    pub fn new(threads: usize, input: InputSize) -> Self {
        WorkloadConfig { threads, input }
    }
}

/// Relative frequency of each critical-section behaviour in a profile.
/// Weights need not sum to anything particular; they are used round-robin
/// proportionally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SectionMix {
    /// Read-only critical sections (read-read ULCP fodder).
    pub read_read: u32,
    /// Sections writing thread-private shared objects under a shared lock
    /// (disjoint-write ULCPs).
    pub disjoint_write: u32,
    /// Sections whose guarded update never fires (null-locks).
    pub null_lock: u32,
    /// Sections performing redundant same-value stores (benign ULCPs).
    pub benign: u32,
    /// Sections with genuine read-modify-write conflicts (TLCPs).
    pub conflict: u32,
}

impl SectionMix {
    fn total(&self) -> u32 {
        self.read_read + self.disjoint_write + self.null_lock + self.benign + self.conflict
    }
}

/// The static description of one synthetic application.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Application name (used for the program and trace metadata).
    pub name: &'static str,
    /// Number of distinct application locks.
    pub locks: usize,
    /// Baseline critical sections per thread (scaled by the input size).
    pub sections_per_thread: u32,
    /// Behaviour mix.
    pub mix: SectionMix,
    /// Cost of a critical-section body.
    pub cs_cost: Time,
    /// Cost of the computation between critical sections.
    pub gap_cost: Time,
    /// Number of unlocked shared reads folded into each gap (gives the
    /// memory-order-enforcing replay scheme something to serialize).
    pub unlocked_reads: u32,
}

impl Profile {
    /// Expected dynamic lock acquisitions for a configuration (before
    /// conflict-free applications that never lock).
    pub fn expected_acquisitions(&self, config: &WorkloadConfig) -> usize {
        let per_thread = (self.sections_per_thread as f64 * config.input.scale()).round() as usize;
        per_thread * config.threads
    }
}

/// Expands a profile into a runnable program.
pub fn build_program(profile: &Profile, config: &WorkloadConfig) -> Program {
    let mut b = ProgramBuilder::new(profile.name);
    b.input(config.input.label());

    let locks: Vec<_> = (0..profile.locks.max(1))
        .map(|i| b.lock(format!("{}_lock{i}", profile.name)))
        .collect();

    // Shared state: a read-mostly table, a contended counter, per-thread
    // slots for disjoint writes, a redundant status flag, and a scratch
    // object read outside critical sections.
    let table = b.shared("table", 42);
    let counter = b.shared("counter", 0);
    let status = b.shared("status_flag", 1);
    let scratch = b.shared("scratch", 7);
    let slots: Vec<_> = (0..config.threads.max(1))
        .map(|i| b.shared(format!("slot{i}"), 0))
        .collect();

    // One code site per (lock, behaviour) pair keeps fusion interesting while
    // staying faithful to "many dynamic ULCPs per static site".
    let site_of = |b: &mut ProgramBuilder, lock_index: usize, kind: &str, line: u32| {
        b.site(
            format!("{}.c", profile.name),
            format!("{kind}_l{lock_index}"),
            line,
        )
    };
    let mut rr_sites = Vec::new();
    let mut dw_sites = Vec::new();
    let mut nl_sites = Vec::new();
    let mut bn_sites = Vec::new();
    let mut cf_sites = Vec::new();
    for li in 0..profile.locks.max(1) {
        rr_sites.push(site_of(&mut b, li, "read_table", 100 + li as u32));
        dw_sites.push(site_of(&mut b, li, "update_slot", 200 + li as u32));
        nl_sites.push(site_of(&mut b, li, "maybe_update", 300 + li as u32));
        bn_sites.push(site_of(&mut b, li, "set_status", 400 + li as u32));
        cf_sites.push(site_of(&mut b, li, "bump_counter", 500 + li as u32));
    }

    let per_thread = ((profile.sections_per_thread as f64) * config.input.scale())
        .round()
        .max(1.0) as u32;
    let mix_total = profile.mix.total().max(1);
    let cs_cost = profile.cs_cost;
    let gap_cost = profile.gap_cost;

    for (thread_index, &slot) in slots.iter().enumerate().take(config.threads) {
        let mix = profile.mix;
        let num_locks = locks.len();
        let locks = locks.clone();
        let rr_sites = rr_sites.clone();
        let dw_sites = dw_sites.clone();
        let nl_sites = nl_sites.clone();
        let bn_sites = bn_sites.clone();
        let cf_sites = cf_sites.clone();
        let unlocked_reads = profile.unlocked_reads;
        b.thread(format!("{}-worker{}", profile.name, thread_index), |t| {
            // A local flag that is always false drives the null-lock branch.
            let guard = t.local();
            t.set_local(guard, 0);
            for i in 0..per_thread {
                // Pick the behaviour for this iteration proportionally to the
                // mix. All threads walk the locks in the same order, the way
                // real applications contend on the same hot lock at the same
                // program phase.
                let slot_in_mix = (i * 7 + thread_index as u32 * 3) % mix_total;
                let lock_index = (i as usize) % num_locks;
                let lock = locks[lock_index];

                if slot_in_mix < mix.read_read {
                    t.locked(lock, rr_sites[lock_index], |cs| {
                        cs.read(table);
                        cs.compute(cs_cost);
                    });
                } else if slot_in_mix < mix.read_read + mix.disjoint_write {
                    t.locked(lock, dw_sites[lock_index], |cs| {
                        cs.write_add(slot, 1);
                        cs.compute(cs_cost);
                    });
                } else if slot_in_mix < mix.read_read + mix.disjoint_write + mix.null_lock {
                    t.locked(lock, nl_sites[lock_index], |cs| {
                        cs.if_then(Cond::eq(ValueSource::Local(guard), 1), |then| {
                            then.write_add(counter, 1);
                        });
                        cs.compute(cs_cost);
                    });
                } else if slot_in_mix
                    < mix.read_read + mix.disjoint_write + mix.null_lock + mix.benign
                {
                    t.locked(lock, bn_sites[lock_index], |cs| {
                        cs.write_set(status, 1);
                        cs.compute(cs_cost);
                    });
                } else {
                    t.locked(lock, cf_sites[lock_index], |cs| {
                        let observed = cs.read_into(counter);
                        cs.write_add(counter, 1);
                        cs.if_then(Cond::ge(ValueSource::Local(observed), i64::MAX), |then| {
                            then.compute_ns(1);
                        });
                        cs.compute(cs_cost);
                    });
                }

                // Gap: thread-local work plus a few unlocked shared reads.
                t.compute(gap_cost);
                for _ in 0..unlocked_reads {
                    t.read(scratch);
                }
            }
        });
    }
    b.build()
}

/// A lock-free profile expansion used by applications that essentially do not
/// synchronize (blackscholes, swaptions in the paper): pure data-parallel
/// computation with a handful of token lock acquisitions.
pub fn build_lock_free_program(
    name: &'static str,
    config: &WorkloadConfig,
    token_sections: u32,
    work: Time,
) -> Program {
    let mut b = ProgramBuilder::new(name);
    b.input(config.input.label());
    let lock = b.lock(format!("{name}_init_lock"));
    let data = b.shared("input_data", 1);
    let site = b.site(format!("{name}.c"), "init", 10);
    let scaled = ((work.as_nanos() as f64) * config.input.scale()).round() as u64;
    for thread_index in 0..config.threads {
        b.thread(format!("{name}-worker{thread_index}"), |t| {
            for _ in 0..token_sections {
                t.locked(lock, site, |cs| {
                    cs.read(data);
                });
            }
            t.compute(Time::from_nanos(scaled));
        });
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_detect::Detector;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;

    fn sample_profile() -> Profile {
        Profile {
            name: "sample",
            locks: 2,
            sections_per_thread: 26,
            mix: SectionMix {
                read_read: 5,
                disjoint_write: 3,
                null_lock: 1,
                benign: 3,
                conflict: 1,
            },
            cs_cost: Time::from_nanos(300),
            gap_cost: Time::from_nanos(500),
            unlocked_reads: 2,
        }
    }

    #[test]
    fn input_size_scaling() {
        assert_eq!(InputSize::SimSmall.scale(), 0.5);
        assert_eq!(InputSize::SimMedium.scale(), 1.0);
        assert_eq!(InputSize::SimLarge.scale(), 2.0);
        assert_eq!(InputSize::Custom(3.5).scale(), 3.5);
        assert_eq!(InputSize::Custom(-1.0).scale(), 0.0);
        assert_eq!(InputSize::SimLarge.label(), "simlarge");
        assert!(InputSize::Custom(2.0).label().contains("2.00"));
    }

    #[test]
    fn build_program_validates_and_scales_with_input() {
        let profile = sample_profile();
        let small = build_program(&profile, &WorkloadConfig::new(2, InputSize::SimSmall));
        let large = build_program(&profile, &WorkloadConfig::new(2, InputSize::SimLarge));
        assert!(small.validate().is_ok());
        assert!(large.validate().is_ok());
        assert!(large.stats().static_critical_sections > small.stats().static_critical_sections);
        assert_eq!(small.num_threads(), 2);
    }

    #[test]
    fn expected_acquisitions_matches_recorded_trace() {
        let profile = sample_profile();
        let config = WorkloadConfig::new(2, InputSize::SimMedium);
        let program = build_program(&profile, &config);
        let recording = Recorder::new(SimConfig::default())
            .record(&program)
            .unwrap();
        assert_eq!(
            recording.trace.num_acquisitions(),
            profile.expected_acquisitions(&config)
        );
    }

    #[test]
    fn mix_produces_all_four_ulcp_categories_and_tlcps() {
        let profile = sample_profile();
        let config = WorkloadConfig::new(2, InputSize::SimMedium);
        let program = build_program(&profile, &config);
        let trace = Recorder::new(SimConfig::default())
            .record(&program)
            .unwrap()
            .trace;
        let analysis = Detector::default().analyze(&trace);
        assert!(analysis.breakdown.read_read > 0);
        assert!(analysis.breakdown.disjoint_write > 0);
        assert!(analysis.breakdown.null_lock > 0);
        assert!(analysis.breakdown.benign > 0);
        assert!(analysis.breakdown.tlcp_edges > 0);
    }

    #[test]
    fn lock_free_program_has_minimal_synchronization() {
        let config = WorkloadConfig::new(4, InputSize::SimMedium);
        let program =
            build_lock_free_program("blackscholes_like", &config, 0, Time::from_micros(50));
        assert!(program.validate().is_ok());
        let trace = Recorder::new(SimConfig::default())
            .record(&program)
            .unwrap()
            .trace;
        assert_eq!(trace.num_acquisitions(), 0);
        let analysis = Detector::default().analyze(&trace);
        assert_eq!(analysis.breakdown.total_ulcps(), 0);
    }

    #[test]
    fn more_threads_mean_more_acquisitions() {
        let profile = sample_profile();
        let two = profile.expected_acquisitions(&WorkloadConfig::new(2, InputSize::SimMedium));
        let eight = profile.expected_acquisitions(&WorkloadConfig::new(8, InputSize::SimMedium));
        assert_eq!(eight, two * 4);
    }
}
