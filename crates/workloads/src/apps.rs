//! Synthetic models of the applications evaluated in the paper: the five
//! real-world programs (OpenLDAP, MySQL, pbzip2, TransmissionBT, HandBrake)
//! and the PARSEC benchmarks.
//!
//! Each model is a [`Profile`] whose behaviour mix is derived from the
//! application's Table 1 row: the proportions of read-read, disjoint-write,
//! null-lock and benign critical sections follow the paper's measured
//! breakdown, while the absolute dynamic counts are scaled down (documented
//! in `DESIGN.md`) so that the full evaluation runs in seconds.

use perfplay_program::Program;
use perfplay_trace::Time;

use crate::profile::{build_lock_free_program, build_program, Profile, SectionMix, WorkloadConfig};

/// The applications of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum App {
    /// OpenLDAP directory server (DirectoryMark-style search load).
    OpenLdap,
    /// MySQL database server (mysqlslap-style query load).
    Mysql,
    /// pbzip2 parallel compressor.
    Pbzip2,
    /// TransmissionBT BitTorrent client.
    TransmissionBt,
    /// HandBrake video transcoder.
    HandBrake,
    /// PARSEC blackscholes.
    Blackscholes,
    /// PARSEC bodytrack.
    Bodytrack,
    /// PARSEC canneal.
    Canneal,
    /// PARSEC dedup.
    Dedup,
    /// PARSEC facesim.
    Facesim,
    /// PARSEC ferret.
    Ferret,
    /// PARSEC fluidanimate.
    Fluidanimate,
    /// PARSEC streamcluster.
    Streamcluster,
    /// PARSEC swaptions.
    Swaptions,
    /// PARSEC vips.
    Vips,
    /// PARSEC x264.
    X264,
}

impl App {
    /// All applications in Table 1 order.
    pub const ALL: [App; 16] = [
        App::OpenLdap,
        App::Mysql,
        App::Pbzip2,
        App::TransmissionBt,
        App::HandBrake,
        App::Blackscholes,
        App::Bodytrack,
        App::Canneal,
        App::Dedup,
        App::Facesim,
        App::Ferret,
        App::Fluidanimate,
        App::Streamcluster,
        App::Swaptions,
        App::Vips,
        App::X264,
    ];

    /// The five real-world programs.
    pub const REAL_WORLD: [App; 5] = [
        App::OpenLdap,
        App::Mysql,
        App::Pbzip2,
        App::TransmissionBt,
        App::HandBrake,
    ];

    /// The PARSEC benchmarks (all except freqmine, which the paper skips).
    pub const PARSEC: [App; 11] = [
        App::Blackscholes,
        App::Bodytrack,
        App::Canneal,
        App::Dedup,
        App::Facesim,
        App::Ferret,
        App::Fluidanimate,
        App::Streamcluster,
        App::Swaptions,
        App::Vips,
        App::X264,
    ];

    /// The applications reported in Table 2 (grouped ULCP code regions).
    pub const TABLE2: [App; 10] = [
        App::OpenLdap,
        App::Mysql,
        App::Pbzip2,
        App::TransmissionBt,
        App::HandBrake,
        App::Blackscholes,
        App::Bodytrack,
        App::Facesim,
        App::Fluidanimate,
        App::Swaptions,
    ];

    /// Application name as the paper spells it.
    pub fn name(self) -> &'static str {
        match self {
            App::OpenLdap => "openldap",
            App::Mysql => "mysql",
            App::Pbzip2 => "pbzip2",
            App::TransmissionBt => "transmissionBT",
            App::HandBrake => "handbrake",
            App::Blackscholes => "blackscholes",
            App::Bodytrack => "bodytrack",
            App::Canneal => "canneal",
            App::Dedup => "dedup",
            App::Facesim => "facesim",
            App::Ferret => "ferret",
            App::Fluidanimate => "fluidanimate",
            App::Streamcluster => "streamcluster",
            App::Swaptions => "swaptions",
            App::Vips => "vips",
            App::X264 => "x264",
        }
    }

    /// The "LOC" column of Table 1 (static source size of the real
    /// application being modelled).
    pub fn loc(self) -> &'static str {
        match self {
            App::OpenLdap => "392K",
            App::Mysql => "1,132K",
            App::Pbzip2 => "5K",
            App::TransmissionBt => "79K",
            App::HandBrake => "1,070K",
            App::Blackscholes => "812",
            App::Bodytrack => "10K",
            App::Canneal => "4K",
            App::Dedup => "3.6K",
            App::Facesim => "29K",
            App::Ferret => "9.7K",
            App::Fluidanimate => "1.4K",
            App::Streamcluster => "1.3K",
            App::Swaptions => "1.5K",
            App::Vips => "3.2K",
            App::X264 => "40.3K",
        }
    }

    /// The "Size" column of Table 1 (binary code size of the real
    /// application being modelled).
    pub fn code_size(self) -> &'static str {
        match self {
            App::OpenLdap => "6M",
            App::Mysql => "22M",
            App::Pbzip2 => "1M",
            App::TransmissionBt => "4M",
            App::HandBrake => "3M",
            App::Blackscholes => "204K",
            App::Bodytrack => "9.0M",
            App::Canneal => "628K",
            App::Dedup => "156K",
            App::Facesim => "4.8K",
            App::Ferret => "316K",
            App::Fluidanimate => "72K",
            App::Streamcluster => "44K",
            App::Swaptions => "152K",
            App::Vips => "17M",
            App::X264 => "2.4M",
        }
    }

    /// The synthetic profile behind this application, or `None` for the
    /// essentially lock-free applications.
    pub fn profile(self) -> Option<Profile> {
        let p = |locks, sections, mix, cs_ns, gap_ns, unlocked| Profile {
            name: self.name(),
            locks,
            sections_per_thread: sections,
            mix,
            cs_cost: Time::from_nanos(cs_ns),
            gap_cost: Time::from_nanos(gap_ns),
            unlocked_reads: unlocked,
        };
        let mix = |rr, dw, nl, benign, conflict| SectionMix {
            read_read: rr,
            disjoint_write: dw,
            null_lock: nl,
            benign,
            conflict,
        };
        // Mix proportions are tuned so that the *pair-level* category counts
        // (what Table 1 actually reports) follow each application's ratio:
        // read-read pairs grow with rr², disjoint-write pairs also pick up
        // the rr×dw and benign×dw cross terms, benign pairs grow with
        // benign², and null-lock pairs with nl×everything.
        match self {
            // Real-world programs.
            App::OpenLdap => Some(p(4, 92, mix(65, 10, 2, 1, 3), 450, 900, 2)),
            App::Mysql => Some(p(3, 105, mix(71, 10, 1, 2, 2), 500, 800, 2)),
            App::Pbzip2 => Some(p(2, 64, mix(58, 20, 1, 2, 3), 650, 1_200, 3)),
            App::TransmissionBt => Some(p(2, 18, mix(34, 14, 3, 8, 6), 400, 2_000, 2)),
            App::HandBrake => Some(p(8, 150, mix(62, 20, 1, 5, 8), 350, 700, 2)),
            // PARSEC.
            App::Blackscholes => None,
            App::Bodytrack => Some(p(8, 160, mix(69, 8, 0, 3, 5), 300, 500, 3)),
            App::Canneal => Some(p(2, 9, mix(0, 0, 0, 0, 1), 300, 4_000, 4)),
            App::Dedup => Some(p(6, 150, mix(57, 20, 4, 3, 4), 400, 600, 2)),
            App::Facesim => Some(p(6, 120, mix(52, 20, 4, 1, 9), 1_500, 800, 2)),
            App::Ferret => Some(p(6, 80, mix(18, 12, 1, 40, 6), 400, 700, 2)),
            App::Fluidanimate => Some(p(16, 250, mix(71, 20, 1, 1, 2), 150, 250, 1)),
            App::Streamcluster => Some(p(1, 10, mix(0, 0, 0, 0, 1), 300, 3_000, 4)),
            App::Swaptions => Some(p(1, 3, mix(0, 0, 0, 0, 1), 200, 8_000, 2)),
            App::Vips => Some(p(10, 180, mix(75, 9, 2, 1, 2), 250, 450, 2)),
            App::X264 => Some(p(8, 140, mix(78, 4, 10, 2, 3), 300, 600, 2)),
        }
    }

    /// Builds the runnable program model for this application.
    pub fn build(self, config: &WorkloadConfig) -> Program {
        match self.profile() {
            Some(profile) => build_program(&profile, config),
            None => build_lock_free_program(self.name(), config, 0, Time::from_micros(80)),
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::InputSize;
    use perfplay_detect::Detector;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;

    #[test]
    fn every_app_builds_a_valid_program() {
        let config = WorkloadConfig::new(2, InputSize::SimSmall);
        for app in App::ALL {
            let program = app.build(&config);
            assert!(program.validate().is_ok(), "{app} must validate");
            assert_eq!(program.num_threads(), 2);
            assert_eq!(program.name, app.name());
        }
    }

    #[test]
    fn app_groupings_are_consistent() {
        assert_eq!(App::ALL.len(), 16);
        assert_eq!(App::REAL_WORLD.len() + App::PARSEC.len(), 16);
        assert_eq!(App::TABLE2.len(), 10);
        for app in App::REAL_WORLD {
            assert!(App::ALL.contains(&app));
        }
        assert_eq!(App::OpenLdap.to_string(), "openldap");
        assert!(!App::Mysql.loc().is_empty());
        assert!(!App::Mysql.code_size().is_empty());
    }

    #[test]
    fn lock_free_apps_show_no_ulcps() {
        let config = WorkloadConfig::new(2, InputSize::SimSmall);
        for app in [
            App::Blackscholes,
            App::Canneal,
            App::Streamcluster,
            App::Swaptions,
        ] {
            let trace = Recorder::new(SimConfig::default())
                .record(&app.build(&config))
                .unwrap()
                .trace;
            let analysis = Detector::default().analyze(&trace);
            assert_eq!(
                analysis.breakdown.total_ulcps(),
                0,
                "{app} should be ULCP-free"
            );
        }
    }

    #[test]
    fn read_heavy_apps_are_dominated_by_read_read_ulcps() {
        let config = WorkloadConfig::new(2, InputSize::SimSmall);
        for app in [
            App::OpenLdap,
            App::Mysql,
            App::Bodytrack,
            App::Fluidanimate,
            App::Vips,
        ] {
            let trace = Recorder::new(SimConfig::default())
                .record(&app.build(&config))
                .unwrap()
                .trace;
            let analysis = Detector::default().analyze(&trace);
            let b = analysis.breakdown;
            assert!(b.total_ulcps() > 0, "{app} should have ULCPs");
            assert!(
                b.read_read >= b.disjoint_write,
                "{app}: RR {} should dominate DW {}",
                b.read_read,
                b.disjoint_write
            );
        }
    }

    #[test]
    fn ferret_is_dominated_by_benign_pairs_like_the_paper() {
        let config = WorkloadConfig::new(2, InputSize::SimSmall);
        let trace = Recorder::new(SimConfig::default())
            .record(&App::Ferret.build(&config))
            .unwrap()
            .trace;
        let analysis = Detector::default().analyze(&trace);
        let b = analysis.breakdown;
        assert!(b.benign > b.read_read, "ferret: benign should dominate");
    }

    #[test]
    fn x264_has_the_largest_null_lock_share_of_the_real_mixes() {
        let config = WorkloadConfig::new(2, InputSize::SimSmall);
        let breakdown_of = |app: App| {
            let trace = Recorder::new(SimConfig::default())
                .record(&app.build(&config))
                .unwrap()
                .trace;
            Detector::default().analyze(&trace).breakdown
        };
        let x264 = breakdown_of(App::X264);
        let vips = breakdown_of(App::Vips);
        assert!(x264.null_lock > vips.null_lock);
    }

    #[test]
    fn acquisition_counts_preserve_relative_ordering() {
        let config = WorkloadConfig::new(2, InputSize::SimMedium);
        let acq = |app: App| {
            Recorder::new(SimConfig::default())
                .record(&app.build(&config))
                .unwrap()
                .trace
                .num_acquisitions()
        };
        // fluidanimate is the most lock-intensive PARSEC benchmark in the
        // paper; swaptions and canneal the least.
        let fluid = acq(App::Fluidanimate);
        let body = acq(App::Bodytrack);
        let swap = acq(App::Swaptions);
        let canneal = acq(App::Canneal);
        assert!(fluid > body);
        assert!(body > canneal);
        assert!(canneal > swap);
    }
}
