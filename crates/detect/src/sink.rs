//! Sink-based pair emission: where detection output goes.
//!
//! Every detection engine in this crate — the batch [`Detector`] (sequential
//! and `DetectorConfig::parallel`), the [`StreamingDetector`] and the naive
//! [`reference_analyze`] — emits each classified pair through a [`UlcpSink`]
//! instead of pushing into a hard-wired `Vec`. The sink decides what to keep:
//!
//! * [`CollectPairs`] materializes every [`Ulcp`] and [`CausalEdge`],
//!   reproducing the historical [`UlcpAnalysis`] bit-for-bit. Memory is
//!   O(pairs) — on dense traces the pair list dwarfs every other term
//!   (153M pairs on the 12M-event acceptance workload).
//! * [`SiteAggregator`] folds each pair at emission time into a
//!   per-(first-site, second-site, kind) aggregate with saturating counts and
//!   gains — the seeds of the report layer's Algorithm 2 fusion — keeping
//!   memory O(code sites) regardless of how many dynamic pairs the scan
//!   classifies.
//!
//! Emission order is engine-specific (the streaming engine emits in delivery
//! order, the batch engines in canonical order); [`UlcpSink::seal`] runs once
//! at the end of every analysis so order-sensitive sinks can restore the
//! canonical `(lock, first, second-thread, second)` order. Order-insensitive
//! sinks (saturating-add folds are commutative and associative) ignore it.
//!
//! [`Detector`]: crate::Detector
//! [`StreamingDetector`]: crate::StreamingDetector
//! [`reference_analyze`]: crate::reference_analyze
//! [`UlcpAnalysis`]: crate::UlcpAnalysis

use std::collections::BTreeMap;

use perfplay_trace::{CodeSiteId, CriticalSection, SectionId, ThreadId, Time};
use serde::{Deserialize, Serialize};

use crate::kinds::UlcpKind;
use crate::pairing::{CausalEdge, Ulcp, UlcpBreakdown};

/// The classification context of one emitted pair: borrowed views of the two
/// critical sections, so sinks can attribute the pair (code sites, costs,
/// threads) without a section-table lookup of their own.
#[derive(Debug, Clone, Copy)]
pub struct SectionCtx<'a> {
    /// The earlier critical section of the pair.
    pub first: &'a CriticalSection,
    /// The later critical section of the pair.
    pub second: &'a CriticalSection,
}

/// Consumer of the detection engines' pair stream.
///
/// Engines call [`emit`](Self::emit) for every ULCP and
/// [`emit_edge`](Self::emit_edge) for every causal edge (TLCP), then
/// [`seal`](Self::seal) exactly once when the scan is complete. The parallel
/// batch engine additionally builds one shard per lock with
/// [`fork`](Self::fork) and merges them back — in ascending lock order, so
/// the merged output is deterministic — with [`absorb`](Self::absorb).
pub trait UlcpSink {
    /// Receives one unnecessary lock contention pair.
    fn emit(&mut self, ulcp: Ulcp, ctx: &SectionCtx<'_>);

    /// Receives one pair together with the second section's thread, which
    /// the caller already knows without a section-table access. The default
    /// forwards to [`emit`](Self::emit) and ignores the thread; sinks that
    /// capture it at emission time (to build the canonical sort key later)
    /// override this so the per-pair hot path never touches the section
    /// rows. Implementations must behave exactly like `emit` — the thread
    /// is `ctx.second.thread`, passed separately purely as an optimization.
    fn emit_threaded(&mut self, ulcp: Ulcp, second_thread: ThreadId, ctx: &SectionCtx<'_>) {
        let _ = second_thread;
        self.emit(ulcp, ctx);
    }

    /// Receives one causal edge (true lock contention pair).
    fn emit_edge(&mut self, edge: CausalEdge, ctx: &SectionCtx<'_>);

    /// Creates an empty sink of the same kind (carrying this sink's
    /// configuration) for one parallel shard.
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Merges a shard produced by [`fork`](Self::fork) into this sink.
    /// Shards are absorbed in ascending lock order, each holding its pairs in
    /// emission order, so order-preserving sinks reconstruct the exact
    /// sequential output.
    fn absorb(&mut self, shard: Self)
    where
        Self: Sized;

    /// Renumbers recorded section ids after the streaming engine compacts
    /// never-closed placeholder sections away. `remap[old.index()]` is the
    /// new id, or `None` for a dropped section (dropped sections are never
    /// part of an emitted pair). The default is a no-op for sinks that do not
    /// retain section ids.
    fn remap_sections(&mut self, remap: &[Option<SectionId>]) {
        let _ = remap;
    }

    /// Called exactly once when the scan is complete, with the final section
    /// table. Sinks that guarantee the canonical output order restore it
    /// here; the default is a no-op.
    fn seal(&mut self, sections: &[CriticalSection]) {
        let _ = sections;
    }

    /// Number of entries the sink currently holds resident — pairs for a
    /// collecting sink, table rows for an aggregating one. The streaming
    /// engine samples this for its peak-memory accounting.
    fn resident_entries(&self) -> usize;
}

/// Two sinks fed side by side — e.g. an aggregator plus an edge collector.
impl<A: UlcpSink, B: UlcpSink> UlcpSink for (A, B) {
    fn emit(&mut self, ulcp: Ulcp, ctx: &SectionCtx<'_>) {
        self.0.emit(ulcp, ctx);
        self.1.emit(ulcp, ctx);
    }

    fn emit_threaded(&mut self, ulcp: Ulcp, second_thread: ThreadId, ctx: &SectionCtx<'_>) {
        self.0.emit_threaded(ulcp, second_thread, ctx);
        self.1.emit_threaded(ulcp, second_thread, ctx);
    }

    fn emit_edge(&mut self, edge: CausalEdge, ctx: &SectionCtx<'_>) {
        self.0.emit_edge(edge, ctx);
        self.1.emit_edge(edge, ctx);
    }

    fn fork(&self) -> Self {
        (self.0.fork(), self.1.fork())
    }

    fn absorb(&mut self, shard: Self) {
        self.0.absorb(shard.0);
        self.1.absorb(shard.1);
    }

    fn remap_sections(&mut self, remap: &[Option<SectionId>]) {
        self.0.remap_sections(remap);
        self.1.remap_sections(remap);
    }

    fn seal(&mut self, sections: &[CriticalSection]) {
        self.0.seal(sections);
        self.1.seal(sections);
    }

    fn resident_entries(&self) -> usize {
        self.0.resident_entries() + self.1.resident_entries()
    }
}

/// The materializing sink: collects every pair and edge, reproducing the
/// historical `UlcpAnalysis` vectors bit-identically. Memory is O(pairs).
#[derive(Debug, Clone, Default)]
pub struct CollectPairs {
    /// All unnecessary lock contention pairs, in canonical order after
    /// [`seal`](UlcpSink::seal).
    pub ulcps: Vec<Ulcp>,
    /// All causal edges, in canonical order after [`seal`](UlcpSink::seal).
    pub edges: Vec<CausalEdge>,
}

impl UlcpSink for CollectPairs {
    fn emit(&mut self, ulcp: Ulcp, _ctx: &SectionCtx<'_>) {
        self.ulcps.push(ulcp);
    }

    fn emit_edge(&mut self, edge: CausalEdge, _ctx: &SectionCtx<'_>) {
        self.edges.push(edge);
    }

    fn fork(&self) -> Self {
        CollectPairs::default()
    }

    fn absorb(&mut self, shard: Self) {
        self.ulcps.extend(shard.ulcps);
        self.edges.extend(shard.edges);
    }

    fn remap_sections(&mut self, remap: &[Option<SectionId>]) {
        let map = |id: SectionId| remap[id.index()].expect("paired section survives compaction");
        for u in &mut self.ulcps {
            u.first = map(u.first);
            u.second = map(u.second);
        }
        for e in &mut self.edges {
            e.from = map(e.from);
            e.to = map(e.to);
        }
    }

    /// Restores the canonical order: ascending lock, then the first section's
    /// timing index, then the candidate's thread, then the candidate's timing
    /// index. The batch engines already emit in exactly this order, so for
    /// them the sort is a detected-sorted-run no-op; the streaming engine
    /// emits in delivery order and relies on it.
    fn seal(&mut self, sections: &[CriticalSection]) {
        self.ulcps.sort_unstable_by_key(|u| {
            (u.lock, u.first, sections[u.second.index()].thread, u.second)
        });
        self.edges
            .sort_unstable_by_key(|e| (e.lock, e.from, sections[e.to.index()].thread, e.to));
    }

    fn resident_entries(&self) -> usize {
        self.ulcps.len() + self.edges.len()
    }
}

/// A per-pair performance-gain evaluator, consulted by [`SiteAggregator`] at
/// emission time. Must be a pure function of the pair and its sections, so
/// aggregation stays order-independent.
pub trait GainSource {
    /// The gain attributed to one pair, in nanoseconds. Negative gains are
    /// clamped at zero before accumulation, mirroring the report layer's
    /// treatment of Equation 1 gains.
    fn pair_gain_ns(&self, ulcp: &Ulcp, ctx: &SectionCtx<'_>) -> i64;
}

/// Attributes no gain to any pair: the aggregator degenerates to pure
/// per-site pair counting (the Table 1 shape).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoGain;

impl GainSource for NoGain {
    fn pair_gain_ns(&self, _ulcp: &Ulcp, _ctx: &SectionCtx<'_>) -> i64 {
        0
    }
}

/// A detection-time gain proxy: the smaller of the two section bodies, i.e.
/// the serialization the pair could at most have cost if the two bodies had
/// otherwise run fully in parallel. Needs no replay, so a detection-only run
/// can still rank site pairs by optimization opportunity.
#[derive(Debug, Clone, Copy, Default)]
pub struct BodyOverlapGain;

impl GainSource for BodyOverlapGain {
    fn pair_gain_ns(&self, _ulcp: &Ulcp, ctx: &SectionCtx<'_>) -> i64 {
        let overlap: Time = ctx.first.body_cost.min(ctx.second.body_cost);
        i64::try_from(overlap.as_nanos()).unwrap_or(i64::MAX)
    }
}

/// One row of the aggregate table: every dynamic ULCP of one kind between one
/// (unordered) pair of code sites, collapsed into a count and a gain sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteAggregate {
    /// The smaller code site of the pair (sites are normalized so
    /// `site_first <= site_second`, matching the report layer's fusion
    /// seeds).
    pub site_first: CodeSiteId,
    /// The larger code site of the pair.
    pub site_second: CodeSiteId,
    /// The ULCP category.
    pub kind: UlcpKind,
    /// Dynamic pairs folded into this row (saturating).
    pub dynamic_pairs: u64,
    /// Accumulated clamped gain in nanoseconds (saturating).
    pub gain_ns: u64,
}

/// One row of the edge aggregate table: every causal edge between one
/// (unordered) pair of code sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeAggregate {
    /// The smaller code site of the pair.
    pub site_first: CodeSiteId,
    /// The larger code site of the pair.
    pub site_second: CodeSiteId,
    /// Causal edges folded into this row (saturating).
    pub edges: u64,
}

/// The finished output of a [`SiteAggregator`] run: the per-site ULCP and
/// edge tables in ascending key order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteAggregates {
    /// Per-(site, site, kind) ULCP aggregates, ascending key order.
    pub ulcps: Vec<SiteAggregate>,
    /// Per-(site, site) causal-edge aggregates, ascending key order.
    pub edges: Vec<EdgeAggregate>,
}

impl SiteAggregates {
    /// Total dynamic ULCPs across all rows (saturating).
    pub fn total_pairs(&self) -> u64 {
        self.ulcps
            .iter()
            .fold(0u64, |acc, a| acc.saturating_add(a.dynamic_pairs))
    }

    /// Total accumulated gain across all rows (saturating).
    pub fn total_gain_ns(&self) -> u64 {
        self.ulcps
            .iter()
            .fold(0u64, |acc, a| acc.saturating_add(a.gain_ns))
    }

    /// Number of rows across both tables.
    pub fn len(&self) -> usize {
        self.ulcps.len() + self.edges.len()
    }

    /// Returns true if no pair or edge was ever aggregated.
    pub fn is_empty(&self) -> bool {
        self.ulcps.is_empty() && self.edges.is_empty()
    }

    /// Fuses another aggregate table into this one with saturating addition,
    /// keeping ascending key order. Saturating add is commutative and
    /// associative, so merging N tables yields the identical result in any
    /// order — the property the multi-trace batch driver relies on to fuse
    /// concurrently-analyzed traces deterministically.
    pub fn merge(&mut self, other: &SiteAggregates) {
        let mut ulcps: BTreeMap<(CodeSiteId, CodeSiteId, UlcpKind), PairCell> = BTreeMap::new();
        for row in self.ulcps.iter().chain(&other.ulcps) {
            let cell = ulcps
                .entry((row.site_first, row.site_second, row.kind))
                .or_default();
            cell.pairs = cell.pairs.saturating_add(row.dynamic_pairs);
            cell.gain_ns = cell.gain_ns.saturating_add(row.gain_ns);
        }
        let mut edges: BTreeMap<(CodeSiteId, CodeSiteId), u64> = BTreeMap::new();
        for row in self.edges.iter().chain(&other.edges) {
            let count = edges.entry((row.site_first, row.site_second)).or_default();
            *count = count.saturating_add(row.edges);
        }
        self.ulcps = ulcps
            .into_iter()
            .map(|((site_first, site_second, kind), cell)| SiteAggregate {
                site_first,
                site_second,
                kind,
                dynamic_pairs: cell.pairs,
                gain_ns: cell.gain_ns,
            })
            .collect();
        self.edges = edges
            .into_iter()
            .map(|((site_first, site_second), edges)| EdgeAggregate {
                site_first,
                site_second,
                edges,
            })
            .collect();
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PairCell {
    pairs: u64,
    gain_ns: u64,
}

/// The aggregating sink: folds each emitted pair into a per-(first-site,
/// second-site, kind) row at emission time, keeping memory O(code sites)
/// instead of O(pairs).
///
/// Counts and gains accumulate with saturating addition, which is commutative
/// and associative (the result is `min(true sum, u64::MAX)`), so the
/// aggregate is independent of emission order — the batch, parallel and
/// streaming engines all produce the identical table.
#[derive(Debug, Clone, Default)]
pub struct SiteAggregator<G: GainSource = NoGain> {
    gain: G,
    pairs: BTreeMap<(CodeSiteId, CodeSiteId, UlcpKind), PairCell>,
    edges: BTreeMap<(CodeSiteId, CodeSiteId), u64>,
}

/// Unordered site-pair key, normalized exactly as the report layer's fusion
/// seeds are.
fn site_key(ctx: &SectionCtx<'_>) -> (CodeSiteId, CodeSiteId) {
    let (a, b) = (ctx.first.site, ctx.second.site);
    if a.raw() <= b.raw() {
        (a, b)
    } else {
        (b, a)
    }
}

impl<G: GainSource> SiteAggregator<G> {
    /// Creates an aggregator using the given gain source.
    pub fn new(gain: G) -> Self {
        SiteAggregator {
            gain,
            pairs: BTreeMap::new(),
            edges: BTreeMap::new(),
        }
    }

    /// Consumes the aggregator into its finished tables.
    pub fn finish(self) -> SiteAggregates {
        SiteAggregates {
            ulcps: self
                .pairs
                .into_iter()
                .map(|((site_first, site_second, kind), cell)| SiteAggregate {
                    site_first,
                    site_second,
                    kind,
                    dynamic_pairs: cell.pairs,
                    gain_ns: cell.gain_ns,
                })
                .collect(),
            edges: self
                .edges
                .into_iter()
                .map(|((site_first, site_second), edges)| EdgeAggregate {
                    site_first,
                    site_second,
                    edges,
                })
                .collect(),
        }
    }
}

impl<G: GainSource + Clone> UlcpSink for SiteAggregator<G> {
    fn emit(&mut self, ulcp: Ulcp, ctx: &SectionCtx<'_>) {
        let (site_first, site_second) = site_key(ctx);
        let gain = self.gain.pair_gain_ns(&ulcp, ctx).max(0) as u64;
        let cell = self
            .pairs
            .entry((site_first, site_second, ulcp.kind))
            .or_default();
        cell.pairs = cell.pairs.saturating_add(1);
        cell.gain_ns = cell.gain_ns.saturating_add(gain);
    }

    fn emit_edge(&mut self, _edge: CausalEdge, ctx: &SectionCtx<'_>) {
        let key = site_key(ctx);
        let count = self.edges.entry(key).or_default();
        *count = count.saturating_add(1);
    }

    fn fork(&self) -> Self {
        SiteAggregator::new(self.gain.clone())
    }

    fn absorb(&mut self, shard: Self) {
        for (key, cell) in shard.pairs {
            let mine = self.pairs.entry(key).or_default();
            mine.pairs = mine.pairs.saturating_add(cell.pairs);
            mine.gain_ns = mine.gain_ns.saturating_add(cell.gain_ns);
        }
        for (key, count) in shard.edges {
            let mine = self.edges.entry(key).or_default();
            *mine = mine.saturating_add(count);
        }
    }

    fn resident_entries(&self) -> usize {
        self.pairs.len() + self.edges.len()
    }
}

/// The result of running a detection engine into a caller-supplied sink: the
/// section table, the per-category breakdown (which every engine maintains
/// independently of the sink), and the sink itself.
#[derive(Debug, Clone)]
pub struct SinkAnalysis<S> {
    /// Every dynamic critical section, indexed by `SectionId::index`.
    pub sections: Vec<CriticalSection>,
    /// Per-category pair counts.
    pub breakdown: UlcpBreakdown,
    /// The sink, holding whatever it retained of the pair stream.
    pub sink: S,
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_trace::{Footprint, LockId, ThreadId};

    fn section(id: u32, thread: u32, site: u32, body_ns: u64) -> CriticalSection {
        CriticalSection {
            id: SectionId::new(id),
            thread: ThreadId::new(thread),
            lock: LockId::new(0),
            site: CodeSiteId::new(site),
            acquire_index: 0,
            release_index: 1,
            enter_time: Time::from_nanos(u64::from(id) * 10),
            exit_time: Time::from_nanos(u64::from(id) * 10 + 5),
            reads: Footprint::new(),
            writes: Footprint::new(),
            accesses: Vec::new(),
            body_cost: Time::from_nanos(body_ns),
            depth: 0,
        }
    }

    fn ulcp(first: u32, second: u32, kind: UlcpKind) -> Ulcp {
        Ulcp {
            first: SectionId::new(first),
            second: SectionId::new(second),
            lock: LockId::new(0),
            kind,
        }
    }

    #[test]
    fn aggregator_normalizes_site_pairs_and_saturates() {
        let a = section(0, 0, 7, 100);
        let b = section(1, 1, 3, 40);
        let mut agg = SiteAggregator::new(BodyOverlapGain);
        // Emit the same site pair in both orientations; they must land in
        // one row keyed (3, 7).
        agg.emit(
            ulcp(0, 1, UlcpKind::ReadRead),
            &SectionCtx {
                first: &a,
                second: &b,
            },
        );
        agg.emit(
            ulcp(1, 0, UlcpKind::ReadRead),
            &SectionCtx {
                first: &b,
                second: &a,
            },
        );
        let out = agg.finish();
        assert_eq!(out.ulcps.len(), 1);
        let row = &out.ulcps[0];
        assert_eq!(row.site_first, CodeSiteId::new(3));
        assert_eq!(row.site_second, CodeSiteId::new(7));
        assert_eq!(row.dynamic_pairs, 2);
        assert_eq!(row.gain_ns, 80, "min(100, 40) twice");
        assert_eq!(out.total_pairs(), 2);
        assert_eq!(out.total_gain_ns(), 80);
    }

    #[test]
    fn aggregator_gain_accumulation_saturates() {
        struct Huge;
        impl GainSource for Huge {
            fn pair_gain_ns(&self, _: &Ulcp, _: &SectionCtx<'_>) -> i64 {
                i64::MAX
            }
        }
        impl Clone for Huge {
            fn clone(&self) -> Self {
                Huge
            }
        }
        let a = section(0, 0, 1, 0);
        let b = section(1, 1, 1, 0);
        let ctx = SectionCtx {
            first: &a,
            second: &b,
        };
        let mut agg = SiteAggregator::new(Huge);
        for _ in 0..3 {
            agg.emit(ulcp(0, 1, UlcpKind::Benign), &ctx);
        }
        let out = agg.finish();
        assert_eq!(out.ulcps[0].gain_ns, u64::MAX);
        assert_eq!(out.total_gain_ns(), u64::MAX);
    }

    #[test]
    fn aggregator_absorb_matches_single_sink() {
        let secs: Vec<_> = (0..4)
            .map(|i| section(i, i % 2, i % 3, 10 * u64::from(i + 1)))
            .collect();
        let emit_all = |sink: &mut SiteAggregator<BodyOverlapGain>, lo: usize, hi: usize| {
            for i in lo..hi {
                for j in (i + 1)..hi {
                    let ctx = SectionCtx {
                        first: &secs[i],
                        second: &secs[j],
                    };
                    sink.emit(ulcp(i as u32, j as u32, UlcpKind::NullLock), &ctx);
                    sink.emit_edge(
                        CausalEdge {
                            from: secs[i].id,
                            to: secs[j].id,
                            lock: LockId::new(0),
                        },
                        &ctx,
                    );
                }
            }
        };
        let mut single = SiteAggregator::new(BodyOverlapGain);
        emit_all(&mut single, 0, 4);

        let mut merged = SiteAggregator::new(BodyOverlapGain);
        let mut shard_a = merged.fork();
        let mut shard_b = merged.fork();
        emit_all(&mut shard_a, 0, 4);
        // Split differently: re-emit nothing into b, everything into a —
        // then also test a genuine split.
        emit_all(&mut shard_b, 0, 0);
        merged.absorb(shard_a);
        merged.absorb(shard_b);
        assert_eq!(single.finish(), merged.finish());
    }

    #[test]
    fn tuple_sink_feeds_both_components() {
        let a = section(0, 0, 1, 5);
        let b = section(1, 1, 2, 5);
        let ctx = SectionCtx {
            first: &a,
            second: &b,
        };
        let mut sink = (CollectPairs::default(), SiteAggregator::new(NoGain));
        sink.emit(ulcp(0, 1, UlcpKind::ReadRead), &ctx);
        sink.emit_edge(
            CausalEdge {
                from: a.id,
                to: b.id,
                lock: LockId::new(0),
            },
            &ctx,
        );
        assert_eq!(sink.0.ulcps.len(), 1);
        assert_eq!(sink.0.edges.len(), 1);
        assert_eq!(sink.resident_entries(), 2 + 2);
        let sections = vec![a, b];
        sink.seal(&sections);
        let aggregates = sink.1.finish();
        assert_eq!(aggregates.ulcps.len(), 1);
        assert_eq!(aggregates.edges.len(), 1);
        assert!(!aggregates.is_empty());
        assert_eq!(aggregates.len(), 2);
    }

    #[test]
    fn collect_pairs_seal_restores_canonical_order() {
        // Emit out of order (as the streaming engine may) and seal.
        let secs = vec![
            section(0, 0, 1, 5),
            section(1, 1, 2, 5),
            section(2, 1, 2, 5),
        ];
        let mut sink = CollectPairs::default();
        let ctx02 = SectionCtx {
            first: &secs[0],
            second: &secs[2],
        };
        let ctx01 = SectionCtx {
            first: &secs[0],
            second: &secs[1],
        };
        sink.emit(ulcp(0, 2, UlcpKind::ReadRead), &ctx02);
        sink.emit(ulcp(0, 1, UlcpKind::ReadRead), &ctx01);
        sink.seal(&secs);
        assert_eq!(sink.ulcps[0].second, SectionId::new(1));
        assert_eq!(sink.ulcps[1].second, SectionId::new(2));
    }
}
