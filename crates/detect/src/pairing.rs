//! Pairing of critical sections into ULCPs and TLCP causal edges.
//!
//! The matching procedure follows Section 3.1 of the paper: every critical
//! section is compared, per other thread, against the later critical sections
//! protected by the same lock in timing-index order ("sequential searching");
//! non-conflicting pairs encountered on the way are ULCPs, and the first true
//! contention found per thread ends the search and yields the causal edge
//! RULE 1 keeps in the ULCP-free topology.
//!
//! The engine is *snapshot-free*: instead of cloning a full shadow-memory
//! snapshot per critical section (O(sections x objects) memory), one
//! [`LastWriteIndex`] is built per trace and the reversed-replay benign check
//! fetches the footprint values it needs lazily in O(log E) each. Locks are
//! independent, so [`DetectorConfig::parallel`] fans the per-lock searches
//! out across OS threads; per-lock results are merged back in ascending lock
//! order, keeping the output bit-identical to the sequential path.

use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

use perfplay_trace::{
    extract_critical_sections, sections_by_lock, CriticalSection, LockId, SectionId, Trace,
};
use serde::{Deserialize, Serialize};

use crate::classify::classify_pair;
use crate::kinds::{PairClass, UlcpKind};
use crate::shadow::LastWriteIndex;
use crate::sink::{CollectPairs, SectionCtx, SinkAnalysis, UlcpSink};

/// One unnecessary lock contention pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ulcp {
    /// The earlier critical section of the pair (by original timing).
    pub first: SectionId,
    /// The later critical section of the pair.
    pub second: SectionId,
    /// The lock both sections are protected by.
    pub lock: LockId,
    /// The ULCP category.
    pub kind: UlcpKind,
}

/// A causal edge between two truly conflicting critical sections (a TLCP),
/// kept by RULE 1 when the ULCP-free topology is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CausalEdge {
    /// Source node (earlier section).
    pub from: SectionId,
    /// Destination node (later section).
    pub to: SectionId,
    /// The lock that made the two sections contend.
    pub lock: LockId,
}

/// Per-category ULCP counts for one application — one row of Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UlcpBreakdown {
    /// Dynamic lock acquisitions in the trace (the "# Locks" column).
    pub lock_acquisitions: usize,
    /// Null-lock ULCPs.
    pub null_lock: usize,
    /// Read-read ULCPs.
    pub read_read: usize,
    /// Disjoint-write ULCPs.
    pub disjoint_write: usize,
    /// Benign ULCPs.
    pub benign: usize,
    /// True lock contention pairs (causal edges retained).
    pub tlcp_edges: usize,
}

impl UlcpBreakdown {
    /// Total number of ULCPs across all categories.
    pub fn total_ulcps(&self) -> usize {
        self.null_lock + self.read_read + self.disjoint_write + self.benign
    }

    /// Count for a specific category.
    pub fn count(&self, kind: UlcpKind) -> usize {
        match kind {
            UlcpKind::NullLock => self.null_lock,
            UlcpKind::ReadRead => self.read_read,
            UlcpKind::DisjointWrite => self.disjoint_write,
            UlcpKind::Benign => self.benign,
        }
    }

    pub(crate) fn add(&mut self, kind: UlcpKind) {
        match kind {
            UlcpKind::NullLock => self.null_lock += 1,
            UlcpKind::ReadRead => self.read_read += 1,
            UlcpKind::DisjointWrite => self.disjoint_write += 1,
            UlcpKind::Benign => self.benign += 1,
        }
    }

    /// Sums every field of another *whole-trace* breakdown into this one —
    /// the fused Table 1 row of the multi-trace batch driver. Unlike the
    /// per-lock shard merge, `lock_acquisitions` accumulates too: each input
    /// is a complete trace's count.
    pub fn merge_totals(&mut self, other: &UlcpBreakdown) {
        self.lock_acquisitions += other.lock_acquisitions;
        self.merge_pair_counts(other);
    }

    /// Accumulates another breakdown's pair counts into this one.
    /// `lock_acquisitions` is a whole-trace property, not a per-lock count,
    /// and is deliberately not summed.
    pub(crate) fn merge_pair_counts(&mut self, other: &UlcpBreakdown) {
        self.null_lock += other.null_lock;
        self.read_read += other.read_read;
        self.disjoint_write += other.disjoint_write;
        self.benign += other.benign;
        self.tlcp_edges += other.tlcp_edges;
    }
}

/// Configuration of the ULCP detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Refine conflicting pairs with the reversed-replay benign check
    /// (Section 3.1). Disabling this is the ablation the bench harness
    /// exposes: every conflict becomes a TLCP.
    pub use_reversed_replay: bool,
    /// Optional cap on how many candidate pairs are *classified* per
    /// (section, other-thread) search before the search gives up. `None`
    /// scans until the first TLCP as the paper describes.
    ///
    /// The cap counts classifications actually performed: a TLCP discovered
    /// by the cap-th classification is still recorded (the search would have
    /// stopped there anyway); only candidates *beyond* the cap go unseen.
    pub max_scan_per_thread: Option<usize>,
    /// Fan the independent per-lock searches out across OS threads. Results
    /// are merged deterministically (ascending lock order, original search
    /// order within each lock), so output is bit-identical to the
    /// sequential path.
    ///
    /// How each engine composes with this flag:
    ///
    /// | entry point | `parallel: false` | `parallel: true` |
    /// |---|---|---|
    /// | [`Detector::analyze`] / `analyze_with` | sequential per-lock loop | per-lock work-queue fan-out |
    /// | [`StreamingDetector::analyze`](crate::StreamingDetector::analyze) (+ `analyze_trace`) | sequential engine | delegates to [`ParallelStreamingDetector`](crate::ParallelStreamingDetector) (one worker per core) |
    /// | [`StreamingDetector::analyze_with`](crate::StreamingDetector::analyze_with) (+ `analyze_trace_with`) | sequential engine | [`StreamError::Config`](perfplay_trace::StreamError::Config) — the sink is not required to be `Send`; call the parallel detector directly |
    /// | [`ParallelStreamingDetector`](crate::ParallelStreamingDetector) | ignored — always parallel; worker count from the constructor | ignored |
    pub parallel: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            use_reversed_replay: true,
            max_scan_per_thread: None,
            parallel: false,
        }
    }
}

/// The result of ULCP identification over one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct UlcpAnalysis {
    /// Every dynamic critical section, indexed by [`SectionId::index`].
    pub sections: Vec<CriticalSection>,
    /// All unnecessary lock contention pairs found.
    pub ulcps: Vec<Ulcp>,
    /// All causal edges (true contention pairs) found.
    pub edges: Vec<CausalEdge>,
    /// Per-category counts.
    pub breakdown: UlcpBreakdown,
}

impl UlcpAnalysis {
    /// Returns the critical section for an id.
    pub fn section(&self, id: SectionId) -> &CriticalSection {
        &self.sections[id.index()]
    }

    /// Groups the ULCPs by the lock that produced them.
    pub fn ulcps_by_lock(&self) -> BTreeMap<LockId, Vec<&Ulcp>> {
        let mut map: BTreeMap<LockId, Vec<&Ulcp>> = BTreeMap::new();
        for u in &self.ulcps {
            map.entry(u.lock).or_default().push(u);
        }
        map
    }
}

/// PerfPlay's ULCP identification stage.
#[derive(Debug, Clone, Default)]
pub struct Detector {
    config: DetectorConfig,
}

impl Detector {
    /// Creates a detector with the given configuration.
    pub fn new(config: DetectorConfig) -> Self {
        Detector { config }
    }

    /// Identifies all ULCPs and causal edges in a recorded trace,
    /// materializing every pair. Equivalent to
    /// [`analyze_with`](Self::analyze_with) into a
    /// [`CollectPairs`](crate::CollectPairs) sink.
    pub fn analyze(&self, trace: &Trace) -> UlcpAnalysis {
        let SinkAnalysis {
            sections,
            breakdown,
            sink,
        } = self.analyze_with(trace, CollectPairs::default());
        UlcpAnalysis {
            sections,
            ulcps: sink.ulcps,
            edges: sink.edges,
            breakdown,
        }
    }

    /// Identifies all ULCPs and causal edges in a recorded trace, emitting
    /// every pair through the caller's sink.
    ///
    /// The sink must be `Send + Sync` because `DetectorConfig::parallel`
    /// forks one shard per lock across worker threads; shards are absorbed
    /// back in ascending lock order, so an order-preserving sink sees the
    /// exact sequential emission order and the output is bit-identical to
    /// the sequential path.
    pub fn analyze_with<S: UlcpSink + Send + Sync>(
        &self,
        trace: &Trace,
        mut sink: S,
    ) -> SinkAnalysis<S> {
        let sections = extract_critical_sections(trace);
        // The index only feeds the reversed-replay benign check; in the
        // ablation mode (`use_reversed_replay: false`) no state is ever
        // consulted, so skip the O(E log E) build entirely.
        let index = if self.config.use_reversed_replay {
            LastWriteIndex::build(trace)
        } else {
            LastWriteIndex::default()
        };
        let by_lock = sections_by_lock(&sections);
        let locks: Vec<(LockId, Vec<&CriticalSection>)> = by_lock.into_iter().collect();

        let mut breakdown = UlcpBreakdown {
            lock_acquisitions: trace.num_acquisitions(),
            ..UlcpBreakdown::default()
        };
        if self.config.parallel && locks.len() > 1 {
            // Ascending lock order (BTreeMap order preserved in `locks`);
            // within a lock the search order itself is deterministic, so the
            // absorbed output matches the sequential path exactly.
            for (shard, shard_breakdown) in self.analyze_locks_parallel(&locks, &index, &sink) {
                sink.absorb(shard);
                breakdown.merge_pair_counts(&shard_breakdown);
            }
        } else {
            for (lock, lock_sections) in &locks {
                analyze_lock_into(
                    *lock,
                    lock_sections,
                    &index,
                    self.config,
                    &mut sink,
                    &mut breakdown,
                );
            }
        }
        sink.seal(&sections);

        SinkAnalysis {
            sections,
            breakdown,
            sink,
        }
    }

    /// Fans the per-lock searches out over a shared work queue of lock
    /// indices. Per-lock cost is wildly skewed on real workloads (one guard
    /// mutex often dominates), so workers pop the next lock instead of being
    /// handed a fixed chunk — a hot lock occupies one worker while the rest
    /// drain the remainder. Each index is processed exactly once, so sorting
    /// the collected `(index, shard)` pairs restores the deterministic
    /// ascending-lock order.
    fn analyze_locks_parallel<S: UlcpSink + Send + Sync>(
        &self,
        locks: &[(LockId, Vec<&CriticalSection>)],
        index: &LastWriteIndex,
        sink: &S,
    ) -> Vec<(S, UlcpBreakdown)> {
        let workers = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(locks.len());
        let next = AtomicUsize::new(0);
        let config = self.config;
        let mut collected: Vec<(usize, S, UlcpBreakdown)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some((lock, lock_sections)) = locks.get(i) else {
                                break;
                            };
                            let mut shard = sink.fork();
                            let mut shard_breakdown = UlcpBreakdown::default();
                            analyze_lock_into(
                                *lock,
                                lock_sections,
                                index,
                                config,
                                &mut shard,
                                &mut shard_breakdown,
                            );
                            local.push((i, shard, shard_breakdown));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("detector worker never panics"))
                .collect()
        });
        collected.sort_unstable_by_key(|entry| entry.0);
        collected
            .into_iter()
            .map(|(_, shard, breakdown)| (shard, breakdown))
            .collect()
    }
}

/// Runs the sequential-search pairing for one lock's critical sections,
/// emitting every classified pair into the sink.
fn analyze_lock_into<S: UlcpSink>(
    lock: LockId,
    lock_sections: &[&CriticalSection],
    index: &LastWriteIndex,
    config: DetectorConfig,
    sink: &mut S,
    breakdown: &mut UlcpBreakdown,
) {
    // Per-thread lists, preserving timing order.
    let mut per_thread: BTreeMap<_, Vec<&CriticalSection>> = BTreeMap::new();
    for s in lock_sections {
        per_thread.entry(s.thread).or_default().push(s);
    }
    for current in lock_sections {
        let state_before = index.state_before(current.enter_time);
        for (other_thread, others) in &per_thread {
            if *other_thread == current.thread {
                continue;
            }
            // `scanned` counts classifications performed; the cap stops the
            // search *before* classifying candidate `cap + 1`, never after a
            // classification whose result is still pending — so a TLCP found
            // exactly at the cap is recorded, not dropped. The counter stays
            // explicit (not `enumerate`) because "classifications performed"
            // is the unit the cap is defined in.
            //
            // Per-thread lists are in timing-index (id) order, so the later
            // candidates start at a binary-searchable boundary; a linear
            // `filter` re-scan here is O(list) per (section, thread) pair
            // and dominated whole-trace analysis on few-lock workloads.
            let start = others.partition_point(|s| s.id <= current.id);
            let mut scanned = 0usize;
            #[allow(clippy::explicit_counter_loop)]
            for candidate in &others[start..] {
                if config.max_scan_per_thread.is_some_and(|cap| scanned >= cap) {
                    break;
                }
                let class = classify_pair(
                    current,
                    candidate,
                    &state_before,
                    config.use_reversed_replay,
                );
                scanned += 1;
                let ctx = SectionCtx {
                    first: current,
                    second: candidate,
                };
                match class {
                    PairClass::Tlcp => {
                        sink.emit_edge(
                            CausalEdge {
                                from: current.id,
                                to: candidate.id,
                                lock,
                            },
                            &ctx,
                        );
                        breakdown.tlcp_edges += 1;
                        break;
                    }
                    PairClass::Ulcp(kind) => {
                        breakdown.add(kind);
                        sink.emit(
                            Ulcp {
                                first: current.id,
                                second: candidate.id,
                                lock,
                                kind,
                            },
                            &ctx,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_program::ProgramBuilder;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;

    fn record(build: impl FnOnce(&mut ProgramBuilder)) -> Trace {
        let mut b = ProgramBuilder::new("detect-test");
        build(&mut b);
        Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace
    }

    #[test]
    fn read_read_workload_produces_read_read_ulcps() {
        let trace = record(|b| {
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("rr.c", "reader", 1);
            for i in 0..2 {
                b.thread(format!("t{i}"), |t| {
                    t.loop_n(3, |l| {
                        l.locked(lock, site, |cs| {
                            cs.read(x);
                            cs.compute_ns(100);
                        });
                        l.compute_ns(50);
                    });
                });
            }
        });
        let analysis = Detector::default().analyze(&trace);
        assert_eq!(analysis.breakdown.lock_acquisitions, 6);
        assert!(analysis.breakdown.read_read > 0);
        assert_eq!(analysis.breakdown.tlcp_edges, 0);
        assert_eq!(analysis.breakdown.null_lock, 0);
        assert_eq!(analysis.breakdown.total_ulcps(), analysis.ulcps.len());
        // All pairs are cross-thread and ordered by id.
        for u in &analysis.ulcps {
            assert!(u.first < u.second);
            assert_ne!(
                analysis.section(u.first).thread,
                analysis.section(u.second).thread
            );
        }
    }

    #[test]
    fn conflicting_workload_produces_tlcp_edges_not_ulcps() {
        let trace = record(|b| {
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("w.c", "writer", 1);
            for i in 0..2 {
                b.thread(format!("t{i}"), |t| {
                    t.locked(lock, site, |cs| {
                        let v = cs.read_into(x);
                        cs.write_set(x, 1);
                        // Use the local so the read is meaningful.
                        cs.if_then(
                            perfplay_program::Cond::eq(perfplay_program::ValueSource::Local(v), 99),
                            |then| {
                                then.compute_ns(1);
                            },
                        );
                    });
                });
            }
        });
        let analysis = Detector::default().analyze(&trace);
        assert_eq!(analysis.breakdown.tlcp_edges, 1);
        assert_eq!(analysis.breakdown.total_ulcps(), 0);
        assert_eq!(analysis.edges.len(), 1);
        assert!(analysis.edges[0].from < analysis.edges[0].to);
    }

    #[test]
    fn null_lock_workload_is_classified_null() {
        let trace = record(|b| {
            let lock = b.lock("m");
            let _x = b.shared("x", 0);
            let site = b.site("nl.c", "maybe_update", 1);
            for i in 0..2 {
                b.thread(format!("t{i}"), |t| {
                    t.loop_n(2, |l| {
                        // The branch on a local that is always 0 means the
                        // shared update never happens: a null-lock.
                        l.locked(lock, site, |cs| {
                            cs.compute_ns(40);
                        });
                        l.compute_ns(10);
                    });
                });
            }
        });
        let analysis = Detector::default().analyze(&trace);
        assert!(analysis.breakdown.null_lock > 0);
        assert_eq!(analysis.breakdown.tlcp_edges, 0);
    }

    #[test]
    fn disjoint_writes_under_one_lock_are_detected() {
        let trace = record(|b| {
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let y = b.shared("y", 0);
            let site_a = b.site("dw.c", "update_x", 1);
            let site_b = b.site("dw.c", "update_y", 2);
            b.thread("tx", |t| {
                t.locked(lock, site_a, |cs| {
                    cs.write_add(x, 1);
                });
            });
            b.thread("ty", |t| {
                t.locked(lock, site_b, |cs| {
                    cs.write_add(y, 1);
                });
            });
        });
        let analysis = Detector::default().analyze(&trace);
        assert_eq!(analysis.breakdown.disjoint_write, 1);
        assert_eq!(analysis.breakdown.tlcp_edges, 0);
    }

    #[test]
    fn benign_redundant_writes_need_reversed_replay() {
        let build = |b: &mut ProgramBuilder| {
            let lock = b.lock("m");
            let flag = b.shared("done", 0);
            let site = b.site("bw.c", "set_done", 1);
            for i in 0..2 {
                b.thread(format!("t{i}"), |t| {
                    t.locked(lock, site, |cs| {
                        cs.write_set(flag, 1);
                    });
                });
            }
        };
        let trace = record(build);
        let with_rr = Detector::default().analyze(&trace);
        assert_eq!(with_rr.breakdown.benign, 1);
        assert_eq!(with_rr.breakdown.tlcp_edges, 0);

        let without_rr = Detector::new(DetectorConfig {
            use_reversed_replay: false,
            ..DetectorConfig::default()
        })
        .analyze(&trace);
        assert_eq!(without_rr.breakdown.benign, 0);
        assert_eq!(without_rr.breakdown.tlcp_edges, 1);
    }

    #[test]
    fn tlcp_stops_the_sequential_search() {
        // Thread 1 performs: read-only CS, then a writing CS, then another
        // read-only CS. Thread 0 performs one read-only CS before all of them.
        // The search from thread 0's section must stop at the writing CS, so
        // the trailing read-only CS does not form a ULCP with it.
        let trace = record(|b| {
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("seq.c", "f", 1);
            b.thread("t0", |t| {
                t.locked(lock, site, |cs| {
                    cs.read(x);
                });
                t.compute_us(50);
            });
            b.thread("t1", |t| {
                t.compute_us(5);
                t.locked(lock, site, |cs| {
                    cs.read(x);
                });
                t.locked(lock, site, |cs| {
                    cs.write_add(x, 1);
                    cs.read(x);
                });
                t.locked(lock, site, |cs| {
                    cs.read(x);
                });
            });
        });
        let analysis = Detector::default().analyze(&trace);
        // t0's section pairs with t1's first read-only section (ULCP), then
        // hits the writing section (TLCP edge) and stops.
        let t0_first = analysis
            .sections
            .iter()
            .find(|s| s.thread == perfplay_trace::ThreadId::new(0))
            .unwrap()
            .id;
        let ulcps_from_t0: Vec<_> = analysis
            .ulcps
            .iter()
            .filter(|u| u.first == t0_first)
            .collect();
        assert_eq!(ulcps_from_t0.len(), 1);
        let edges_from_t0: Vec<_> = analysis
            .edges
            .iter()
            .filter(|e| e.from == t0_first)
            .collect();
        assert_eq!(edges_from_t0.len(), 1);
    }

    #[test]
    fn scan_cap_limits_pairs() {
        let build = |b: &mut ProgramBuilder| {
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("cap.c", "reader", 1);
            b.thread("t0", |t| {
                t.locked(lock, site, |cs| {
                    cs.read(x);
                });
                t.compute_us(100);
            });
            b.thread("t1", |t| {
                t.compute_us(10);
                t.loop_n(6, |l| {
                    l.locked(lock, site, |cs| {
                        cs.read(x);
                    });
                });
            });
        };
        let trace = record(build);
        let unlimited = Detector::default().analyze(&trace);
        let capped = Detector::new(DetectorConfig {
            max_scan_per_thread: Some(2),
            ..DetectorConfig::default()
        })
        .analyze(&trace);
        assert!(capped.breakdown.total_ulcps() < unlimited.breakdown.total_ulcps());
    }

    #[test]
    fn scan_cap_still_records_tlcp_found_at_the_cap_boundary() {
        // Thread 1's sections (after thread 0's): [read-only, writer, ...].
        // With cap = 2 the second classification is the conflicting pair —
        // the cap must not swallow that edge (the historical off-by-one
        // risk), while cap = 1 stops before ever seeing the writer.
        let build = |b: &mut ProgramBuilder| {
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("capedge.c", "f", 1);
            b.thread("t0", |t| {
                t.locked(lock, site, |cs| {
                    cs.read(x);
                });
                t.compute_us(100);
            });
            b.thread("t1", |t| {
                t.compute_us(10);
                t.locked(lock, site, |cs| {
                    cs.read(x);
                });
                t.locked(lock, site, |cs| {
                    cs.write_add(x, 1);
                    cs.read(x);
                });
                t.locked(lock, site, |cs| {
                    cs.read(x);
                });
            });
        };
        let trace = record(build);

        let at_cap = Detector::new(DetectorConfig {
            max_scan_per_thread: Some(2),
            ..DetectorConfig::default()
        })
        .analyze(&trace);
        let t0_first = at_cap
            .sections
            .iter()
            .find(|s| s.thread == perfplay_trace::ThreadId::new(0))
            .unwrap()
            .id;
        assert_eq!(
            at_cap.edges.iter().filter(|e| e.from == t0_first).count(),
            1,
            "TLCP classified exactly at the cap must be recorded"
        );
        assert_eq!(
            at_cap.ulcps.iter().filter(|u| u.first == t0_first).count(),
            1
        );

        let below_cap = Detector::new(DetectorConfig {
            max_scan_per_thread: Some(1),
            ..DetectorConfig::default()
        })
        .analyze(&trace);
        assert_eq!(
            below_cap
                .edges
                .iter()
                .filter(|e| e.from == t0_first)
                .count(),
            0,
            "cap = 1 stops the search before the writer is ever classified"
        );
        assert_eq!(
            below_cap
                .ulcps
                .iter()
                .filter(|u| u.first == t0_first)
                .count(),
            1
        );
    }

    #[test]
    fn parallel_analysis_is_bit_identical_to_sequential() {
        let trace = record(|b| {
            let locks: Vec<_> = (0..4).map(|i| b.lock(format!("l{i}"))).collect();
            let objs: Vec<_> = (0..4).map(|i| b.shared(format!("o{i}"), 0)).collect();
            let site = b.site("par.c", "worker", 1);
            for i in 0..3 {
                let locks = locks.clone();
                let objs = objs.clone();
                b.thread(format!("t{i}"), |t| {
                    for k in 0..4 {
                        t.locked(locks[k], site, |cs| {
                            if k % 2 == 0 {
                                cs.read(objs[k]);
                            } else {
                                cs.write_add(objs[k], 1);
                            }
                            cs.compute_ns(30);
                        });
                        t.compute_ns(20);
                    }
                });
            }
        });
        let sequential = Detector::default().analyze(&trace);
        let parallel = Detector::new(DetectorConfig {
            parallel: true,
            ..DetectorConfig::default()
        })
        .analyze(&trace);
        assert_eq!(sequential.breakdown, parallel.breakdown);
        assert_eq!(sequential.ulcps, parallel.ulcps);
        assert_eq!(sequential.edges, parallel.edges);
        assert_eq!(sequential.sections, parallel.sections);
    }

    #[test]
    fn parallel_matches_sequential_on_a_skewed_hot_lock() {
        // One guard mutex takes almost every section (the common real-world
        // shape); the work-queue fan-out must still merge deterministically.
        let trace = record(|b| {
            let hot = b.lock("guard");
            let cold = b.lock("side");
            let x = b.shared("x", 0);
            let y = b.shared("y", 0);
            let site = b.site("skew.c", "worker", 1);
            for i in 0..3 {
                b.thread(format!("t{i}"), |t| {
                    t.loop_n(8, |l| {
                        l.locked(hot, site, |cs| {
                            cs.read(x);
                            if i == 0 {
                                cs.write_add(x, 1);
                            }
                        });
                        l.compute_ns(15);
                    });
                    t.locked(cold, site, |cs| {
                        cs.read(y);
                    });
                });
            }
        });
        let sequential = Detector::default().analyze(&trace);
        let parallel = Detector::new(DetectorConfig {
            parallel: true,
            ..DetectorConfig::default()
        })
        .analyze(&trace);
        assert_eq!(sequential.breakdown, parallel.breakdown);
        assert_eq!(sequential.ulcps, parallel.ulcps);
        assert_eq!(sequential.edges, parallel.edges);
    }

    #[test]
    fn ulcps_by_lock_groups_pairs() {
        let trace = record(|b| {
            let l0 = b.lock("a");
            let l1 = b.lock("b");
            let x = b.shared("x", 0);
            let y = b.shared("y", 0);
            let s0 = b.site("g.c", "fa", 1);
            let s1 = b.site("g.c", "fb", 2);
            for i in 0..2 {
                b.thread(format!("t{i}"), |t| {
                    t.locked(l0, s0, |cs| {
                        cs.read(x);
                    });
                    t.locked(l1, s1, |cs| {
                        cs.read(y);
                    });
                });
            }
        });
        let analysis = Detector::default().analyze(&trace);
        let grouped = analysis.ulcps_by_lock();
        assert_eq!(grouped.len(), 2);
        assert!(grouped.values().all(|v| v.len() == 1));
    }
}
