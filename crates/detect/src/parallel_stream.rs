//! Parallel streaming detection: sharded per-lock workers over a decoded
//! chunk pipeline.
//!
//! [`StreamingDetector`](crate::StreamingDetector) consumes the stream on one
//! thread; [`ParallelStreamingDetector`] splits the same incremental
//! Algorithm 1 state machine into a pipeline:
//!
//! ```text
//!   EventSource ──> decoder (calling thread)
//!                     │  validates the chunk contract, extracts sections,
//!                     │  assigns ids, slot-maps the shadow-memory log
//!                     ▼
//!        bounded channel per worker (backpressure: peak state stays
//!                     │            bounded by chunk size)
//!                     ▼
//!   N workers, each owning the locks with `lock.index() % N == worker`:
//!     horizon-pruned history, pairing cursors, eager retirement —
//!     emitting into per-lock forked `UlcpSink` shards
//!                     │
//!                     ▼
//!   merge: shards absorbed in ascending-lock order, sections assembled
//!   by id, compaction remap, seal — bit-identical to sequential streaming
//! ```
//!
//! Locks are independent (no pair ever spans two locks), so routing whole
//! locks to workers partitions the pairing exactly. Every worker receives
//! every decoded chunk window (it needs the shared-memory log and the window
//! horizon) but only the placeholders and closed sections of its own locks.
//! Determinism comes from three facts: ids are assigned by the decoder in
//! the global `(enter_time, thread, acquire_index)` order before routing;
//! within one lock the delivery order (ascending id) is preserved verbatim;
//! and shards merge through the existing [`UlcpSink::fork`]/
//! [`UlcpSink::absorb`] discipline in ascending-lock order before one final
//! [`UlcpSink::seal`]. The equivalence is property-tested in
//! `tests/streaming_equivalence.rs` and unit-tested below.
//!
//! Gap handling lives entirely in the decoder: a [`StreamGap`] only relaxes
//! the per-thread contiguity check for the next span, so workers never see
//! it — detection over the surviving chunks is exactly detection over the
//! trace with the lost events removed, as in the sequential engine.
//!
//! Beyond the thread fan-out, workers classify through a two-word fast path:
//! every closed section carries a [`PairKey`] (its read/write
//! [`Footprint::summary`] words), and the null-lock / read-read tests are
//! *exact* on summaries while a zero summary-AND proves disjoint writes —
//! so the overwhelming majority of pairs never touch the section bodies.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::num::NonZeroUsize;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;

use perfplay_trace::{
    CodeSiteId, CriticalSection, Event, EventSource, Footprint, LockId, MemAccess, ObjectId,
    SectionId, StreamError, StreamGap, StreamItem, ThreadId, Time, Trace, TraceChunk, TraceChunks,
    TraceError,
};

use crate::classify::classify_pair;
use crate::kinds::{PairClass, UlcpKind};
use crate::pairing::{CausalEdge, DetectorConfig, Ulcp, UlcpAnalysis, UlcpBreakdown};
use crate::shadow::StartState;
use crate::sink::{SectionCtx, UlcpSink};
use crate::streaming::{StreamingAnalysis, StreamingSinkAnalysis, StreamingStats};

/// How many decoded chunk windows may sit in each worker's channel before
/// the decoder blocks. Small by design: the backpressure is what keeps peak
/// live state bounded by the chunk size instead of the stream length.
const CHANNEL_DEPTH: usize = 2;

fn worker_died() -> StreamError {
    StreamError::Io("parallel streaming worker terminated unexpectedly".into())
}

// ---------------------------------------------------------------------------
// Wire types: what the decoder hands each worker.
// ---------------------------------------------------------------------------

/// One shadow-memory log entry: `(completion time, object slot, value,
/// is_write)`. Objects are slot-mapped by the decoder so workers replay the
/// log with dense-vector indexing instead of map lookups.
type MemEntry = (Time, u32, i64, bool);

/// A section announced at id-assignment time, before its release arrived.
struct Placeholder {
    id: SectionId,
    thread: ThreadId,
    lock: LockId,
    site: CodeSiteId,
    acquire_index: usize,
    enter_time: Time,
    depth: usize,
}

/// A section whose release arrived: everything needed to fill the output
/// row. The access vectors are moved, never cloned — the decoder gives up
/// ownership and the worker builds the footprints in place.
struct ClosedWire {
    id: SectionId,
    thread: ThreadId,
    lock: LockId,
    release_index: usize,
    exit_time: Time,
    reads: Vec<ObjectId>,
    writes: Vec<ObjectId>,
    accesses: Vec<MemAccess>,
    body_cost: Time,
}

/// One decoded chunk window, as seen by one worker: the shared (`Arc`ed)
/// memory log plus the placeholders and closures routed to this worker's
/// lock shard.
struct Packet {
    window_end: Time,
    mem: Arc<Vec<MemEntry>>,
    new_objects: Arc<Vec<ObjectId>>,
    /// Threads that exited in this window (first transition only).
    exited: Vec<ThreadId>,
    placeholders: Vec<Placeholder>,
    closed: Vec<ClosedWire>,
}

enum Msg {
    Chunk(Packet),
    /// Clean end of stream. A channel disconnect *without* this message
    /// means the decoder aborted; the worker discards its state.
    Finish,
}

// ---------------------------------------------------------------------------
// Worker-side history: the pruned shadow-memory log, slot-indexed.
// ---------------------------------------------------------------------------

/// Multiplicative hasher for the object→slot maps. They are hit once per
/// shared-memory event, and SipHash's flooding resistance buys nothing
/// there — object ids come from the recorded program, not an adversary.
/// One odd-constant multiply with a high-bit fold spreads the dense id
/// space uniformly at a fraction of SipHash's cost.
#[derive(Debug, Default, Clone, Copy)]
struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let h = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

type IdBuildHasher = std::hash::BuildHasherDefault<IdHasher>;

#[derive(Debug, Default, Clone)]
struct SlotLog {
    /// `(completion time, resulting value)` of retained writes, time order.
    writes: VecDeque<(Time, i64)>,
    /// First read ever observed (initial-value anchor); never pruned.
    first_read: Option<(Time, i64)>,
}

/// Same pruning contract as the sequential engine's `StreamingHistory`, but
/// slot-indexed: the decoder maps every `ObjectId` to a dense `u32` once,
/// so the replay and every prune walk are vector operations.
#[derive(Debug, Default)]
struct SlotHistory {
    logs: Vec<SlotLog>,
    slot_of: HashMap<ObjectId, u32, IdBuildHasher>,
    entries: usize,
}

impl SlotHistory {
    fn add_objects(&mut self, new_objects: &[ObjectId]) {
        for &obj in new_objects {
            let slot = self.logs.len() as u32;
            self.slot_of.insert(obj, slot);
            self.logs.push(SlotLog::default());
        }
    }

    fn record(&mut self, entry: MemEntry) {
        let (at, slot, value, is_write) = entry;
        let log = &mut self.logs[slot as usize];
        if is_write {
            log.writes.push_back((at, value));
            self.entries += 1;
        } else if log.first_read.is_none() {
            log.first_read = Some((at, value));
        }
    }

    /// Same contract as `LastWriteIndex::value_before`: the last write
    /// completing strictly before `at`, else the first read strictly before
    /// `at`, else `None`.
    fn value_before(&self, obj: ObjectId, at: Time) -> Option<i64> {
        let &slot = self.slot_of.get(&obj)?;
        let log = &self.logs[slot as usize];
        let idx = log.writes.partition_point(|&(t, _)| t < at);
        if idx > 0 {
            return Some(log.writes[idx - 1].1);
        }
        match log.first_read {
            Some((t, v)) if t < at => Some(v),
            _ => None,
        }
    }

    /// Drops every write that can no longer be an answer: a write is dead
    /// once a *later* write also precedes the horizon.
    fn prune(&mut self, horizon: Time) {
        for log in &mut self.logs {
            while log.writes.len() >= 2 && log.writes[1].0 < horizon {
                log.writes.pop_front();
                self.entries -= 1;
            }
        }
    }
}

/// Lazy [`StartState`] view over the pruned history at one virtual time.
struct SlotStateBefore<'a> {
    history: &'a SlotHistory,
    at: Time,
}

impl StartState for SlotStateBefore<'_> {
    fn value(&self, obj: ObjectId) -> i64 {
        self.history.value_before(obj, self.at).unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// The summary-word fast path.
// ---------------------------------------------------------------------------

/// The two [`Footprint::summary`] words of a closed section. An empty
/// footprint has summary `0` and every non-empty footprint has a non-zero
/// summary, so the null-lock and read-read tests below are *exact*; the
/// disjoint-write test is sound (zero AND proves disjointness) and falls
/// back to the full classifier on collisions.
#[derive(Debug, Clone, Copy, Default)]
struct PairKey {
    reads: u64,
    writes: u64,
}

/// Dense per-section hot-path metadata, parallel to the worker's section
/// table: the summary words plus the global id and thread — everything pair
/// emission needs, in 24 bytes. The sweep classifies and emits hundreds of
/// millions of pairs; reading these packed rows instead of the ~200-byte
/// [`CriticalSection`] rows keeps the per-pair path out of DRAM.
#[derive(Debug, Clone, Copy)]
struct SecMeta {
    key: PairKey,
    id: SectionId,
    thread: ThreadId,
}

/// Classifies a pair from the summary words alone when possible. Checks run
/// in the same order as `classify_by_sets`, so a `Some` answer is exactly
/// the answer the full classifier would give.
#[inline]
fn fast_classify(a: PairKey, b: PairKey) -> Option<PairClass> {
    // Evaluated as straight-line selects rather than an early-return chain:
    // which test fires is data-dependent and effectively random across the
    // pair stream, so branching on each would mispredict constantly on the
    // hottest path in the engine.
    let null = ((a.reads | a.writes) == 0) | ((b.reads | b.writes) == 0);
    let read_read = (a.writes | b.writes) == 0;
    let disjoint = (a.reads & b.writes) | (a.writes & b.reads) | (a.writes & b.writes) == 0;
    if null {
        Some(PairClass::Ulcp(UlcpKind::NullLock))
    } else if read_read {
        Some(PairClass::Ulcp(UlcpKind::ReadRead))
    } else if disjoint {
        Some(PairClass::Ulcp(UlcpKind::DisjointWrite))
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Worker-side pairing state.
// ---------------------------------------------------------------------------

/// One `(current, other-thread)` sequential search. The dense-array
/// equivalent of the sequential engine's per-thread `Search` map entries: a
/// thread with no candidates yet has the default state (`pos == len == 0`,
/// not done), exactly like a missing map entry.
#[derive(Debug, Default, Clone, Copy)]
struct SearchV {
    /// Classifications performed so far (the unit the scan cap counts).
    scanned: u32,
    /// Index into the candidate list of the next candidate to consider.
    pos: u32,
    /// True once a TLCP ended the search or the cap was reached.
    done: bool,
}

/// A section still acting as the *first* element of future pairs.
#[derive(Debug)]
struct CurrentV {
    thread: u32,
    enter_time: Time,
    /// Finished searches among the other threads; the current is complete
    /// when this reaches `num_threads - 1`.
    done_count: u32,
    /// One search per thread, indexed by thread; the own-thread slot is
    /// never used.
    searches: Box<[SearchV]>,
}

/// Pairing state of one lock, all thread-indexed vectors.
struct LockLane<S> {
    /// The forked sink shard this lock's pairs are emitted into.
    sink: S,
    /// Delivered sections per thread (local indices), ascending id order.
    candidates: Vec<Vec<u32>>,
    /// Per thread: local indices in creation (= id) order awaiting delivery.
    delivery: Vec<VecDeque<u32>>,
    /// Local indices of live currents on this lock (may contain stale
    /// entries for currents retired mid-sweep; swept lazily).
    live_list: Vec<u32>,
}

impl<S> LockLane<S> {
    fn new(sink: S, num_threads: usize) -> Self {
        LockLane {
            sink,
            candidates: vec![Vec::new(); num_threads],
            delivery: vec![VecDeque::new(); num_threads],
            live_list: Vec::new(),
        }
    }
}

/// What one worker hands back to the coordinator.
struct WorkerResult<S> {
    /// This shard's sections (closed ones filled, unclosed placeholders as
    /// is), ascending global id.
    sections: Vec<CriticalSection>,
    breakdown: UlcpBreakdown,
    /// Per-lock sink shards, ascending lock order.
    sinks: Vec<(LockId, S)>,
    peak_live: usize,
    peak_history: usize,
    peak_pairs: usize,
    retired_before_end: usize,
}

/// The per-worker incremental Algorithm 1 state machine over one lock shard.
struct Worker<S: UlcpSink> {
    config: DetectorConfig,
    num_threads: usize,
    /// Shard sections in ascending global-id order; local index order is
    /// therefore global id order restricted to this shard.
    sections: Vec<CriticalSection>,
    /// Hot-path metadata, parallel to `sections`; the summary words are set
    /// when a section closes.
    meta: Vec<SecMeta>,
    /// `ids[i] == sections[i].id`: the dense search column for close-time
    /// id lookup, so the probes walk a 4-byte-stride array instead of the
    /// 160-byte section rows.
    ids: Vec<SectionId>,
    /// Whether `sections[i]` has been closed (filled in) yet.
    closed: Vec<bool>,
    /// Live pairing state, parallel to `sections`; `None` = not (or no
    /// longer) a current.
    pairing: Vec<Option<Box<CurrentV>>>,
    locks: BTreeMap<LockId, LockLane<S>>,
    history: SlotHistory,
    exited: Vec<bool>,
    /// Fork factory for lazily created lock lanes.
    proto: S,
    breakdown: UlcpBreakdown,
    live: usize,
    peak_live: usize,
    peak_history: usize,
    peak_pairs: usize,
    retired_before_end: usize,
    ending: bool,
    use_history: bool,
}

impl<S: UlcpSink> Worker<S> {
    fn new(config: DetectorConfig, num_threads: usize, proto: S) -> Self {
        Worker {
            config,
            num_threads,
            sections: Vec::new(),
            meta: Vec::new(),
            ids: Vec::new(),
            closed: Vec::new(),
            pairing: Vec::new(),
            locks: BTreeMap::new(),
            history: SlotHistory::default(),
            exited: vec![false; num_threads],
            proto,
            breakdown: UlcpBreakdown::default(),
            live: 0,
            peak_live: 0,
            peak_history: 0,
            peak_pairs: 0,
            retired_before_end: 0,
            ending: false,
            use_history: config.use_reversed_replay,
        }
    }

    fn ingest(&mut self, packet: Packet) {
        for t in &packet.exited {
            self.exited[t.index()] = true;
        }
        if self.use_history {
            self.history.add_objects(&packet.new_objects);
            for &entry in packet.mem.iter() {
                self.history.record(entry);
            }
        }
        for ph in packet.placeholders {
            self.push_placeholder(ph);
        }
        for wire in packet.closed {
            self.close_section(wire);
        }
        self.sweep();
        self.retire_and_prune(packet.window_end, false);
        self.sample_peaks();
    }

    fn push_placeholder(&mut self, ph: Placeholder) {
        debug_assert!(self.sections.last().is_none_or(|s| s.id < ph.id));
        let idx = self.sections.len() as u32;
        self.sections.push(CriticalSection {
            id: ph.id,
            thread: ph.thread,
            lock: ph.lock,
            site: ph.site,
            acquire_index: ph.acquire_index,
            release_index: 0,
            enter_time: ph.enter_time,
            exit_time: ph.enter_time,
            reads: Footprint::new(),
            writes: Footprint::new(),
            accesses: Vec::new(),
            body_cost: Time::ZERO,
            depth: ph.depth,
        });
        self.meta.push(SecMeta {
            key: PairKey::default(),
            id: ph.id,
            thread: ph.thread,
        });
        self.ids.push(ph.id);
        self.closed.push(false);
        self.pairing.push(None);
        self.live += 1;
        if !self.locks.contains_key(&ph.lock) {
            let lane = LockLane::new(self.proto.fork(), self.num_threads);
            self.locks.insert(ph.lock, lane);
        }
        self.locks
            .get_mut(&ph.lock)
            .expect("lane just ensured")
            .delivery[ph.thread.index()]
        .push_back(idx);
    }

    /// Fills the output section and delivers the head run of the creation
    /// queue, so candidates reach the searches strictly in id order even
    /// when re-entrant nesting closes sections out of order.
    fn close_section(&mut self, wire: ClosedWire) {
        // Gallop from the tail before the binary search: most sections
        // close within the chunk window that opened them, so the target is
        // almost always within the last few thousand rows.
        let ids: &[SectionId] = &self.ids;
        let n = ids.len();
        let mut width = 1usize;
        while width < n && ids[n - width] > wire.id {
            width = (width * 2).min(n);
        }
        let lo = n - width;
        let idx = lo
            + ids[lo..]
                .binary_search(&wire.id)
                .expect("closed section was announced as a placeholder");
        let section = &mut self.sections[idx];
        section.release_index = wire.release_index;
        section.exit_time = wire.exit_time;
        section.reads = Footprint::from_unsorted(wire.reads);
        section.writes = Footprint::from_unsorted(wire.writes);
        section.accesses = wire.accesses;
        section.body_cost = wire.body_cost;
        self.meta[idx].key = PairKey {
            reads: section.reads.summary(),
            writes: section.writes.summary(),
        };
        self.closed[idx] = true;

        let lock = wire.lock;
        let ti = wire.thread.index();
        loop {
            let lane = self
                .locks
                .get_mut(&lock)
                .expect("lane exists for a closed section");
            let queue = &mut lane.delivery[ti];
            let Some(&front) = queue.front() else { break };
            if !self.closed[front as usize] {
                break;
            }
            queue.pop_front();
            self.deliver(lock, ti, front as usize);
        }
    }

    /// Registers one newly delivered section: it runs a fresh-*current* scan
    /// over already-delivered later candidates, then joins the candidate
    /// lists. Open currents consume it later, in the per-chunk [`sweep`]
    /// (Self::sweep) — a linear pass, not a per-delivery scatter.
    fn deliver(&mut self, lock: LockId, ti: usize, idx: usize) {
        self.peak_live = self.peak_live.max(self.live);
        let Worker {
            config,
            num_threads,
            sections,
            meta,
            pairing,
            locks,
            history,
            breakdown,
            live,
            retired_before_end,
            ending,
            ..
        } = self;
        let num_threads = *num_threads;
        let sections: &[CriticalSection] = sections;
        let meta: &[SecMeta] = meta;
        let history: &SlotHistory = history;
        let lane = locks
            .get_mut(&lock)
            .expect("lane exists for a delivered section");
        let LockLane {
            sink,
            candidates,
            live_list,
            ..
        } = lane;
        let mut out = PairSink {
            config: *config,
            cap: config
                .max_scan_per_thread
                .map_or(u32::MAX, |c| u32::try_from(c).unwrap_or(u32::MAX)),
            lock,
            sections,
            meta,
            history,
            out: sink,
            breakdown,
        };
        let enter_time = sections[idx].enter_time;
        let fmeta = meta[idx];

        // The new current scans candidates already delivered. (Under lock
        // mutual exclusion every already-delivered same-lock section has a
        // smaller id, so this classifies nothing — but ties and re-entrant
        // nesting can produce larger-id candidates, and the batch engine
        // scans those too.)
        let mut searches: Box<[SearchV]> = vec![SearchV::default(); num_threads].into();
        for (u, list) in candidates.iter().enumerate() {
            if u == ti {
                continue;
            }
            let search = &mut searches[u];
            search.pos = list.len() as u32;
            // Under lock mutual exclusion every already-delivered candidate
            // has a smaller local index, so one tail compare short-circuits
            // the prefix search in the overwhelmingly common case.
            let start = if list.last().is_none_or(|&c| (c as usize) <= idx) {
                list.len()
            } else {
                list.partition_point(|&c| (c as usize) <= idx)
            };
            for &cand in &list[start..] {
                if search.done {
                    break;
                }
                if config
                    .max_scan_per_thread
                    .is_some_and(|cap| search.scanned as usize >= cap)
                {
                    search.done = true;
                    break;
                }
                out.classify(idx, fmeta, cand as usize, search);
            }
        }
        let done_count = searches.iter().filter(|s| s.done).count() as u32;
        let complete = done_count as usize == num_threads.saturating_sub(1);
        if complete {
            *live -= 1;
            if !*ending {
                *retired_before_end += 1;
            }
        } else {
            pairing[idx] = Some(Box::new(CurrentV {
                thread: ti as u32,
                enter_time,
                done_count,
                searches,
            }));
            live_list.push(idx as u32);
        }

        // Become a candidate: the sweep offers this section to every current
        // whose search on this thread is still open.
        candidates[ti].push(idx as u32);
    }

    /// Consumes, for every live current of every lane, the candidates its
    /// searches have not yet seen: one linear pass per `(current, thread)`
    /// over the append-only candidate lists, instead of a scatter at every
    /// delivery. Each search consumes its candidate list strictly in
    /// delivery order from its own cursor, so the per-search classification
    /// sequence — and with it every cap cutoff, TLCP termination, retirement
    /// and the breakdown — is exactly the sequential engine's. Only the
    /// interleaving of emissions *between* searches differs, which
    /// [`UlcpSink::seal`] canonicalizes.
    fn sweep(&mut self) {
        let Worker {
            config,
            num_threads,
            sections,
            meta,
            pairing,
            locks,
            history,
            breakdown,
            live,
            retired_before_end,
            ending,
            ..
        } = self;
        let num_threads = *num_threads;
        let sections: &[CriticalSection] = sections;
        let meta: &[SecMeta] = meta;
        let history: &SlotHistory = history;
        for (&lock, lane) in locks.iter_mut() {
            let LockLane {
                sink,
                candidates,
                live_list,
                ..
            } = lane;
            let mut out = PairSink {
                config: *config,
                cap: config
                    .max_scan_per_thread
                    .map_or(u32::MAX, |c| u32::try_from(c).unwrap_or(u32::MAX)),
                lock,
                sections,
                meta,
                history,
                out: sink,
                breakdown,
            };
            let cap = config.max_scan_per_thread.unwrap_or(usize::MAX);
            for &fi32 in live_list.iter() {
                let fi = fi32 as usize;
                let mut retired = false;
                {
                    let Some(current) = pairing[fi].as_mut() else {
                        continue; // retired in an earlier sweep; removed lazily
                    };
                    let ti = current.thread as usize;
                    let fmeta = meta[fi];
                    for (u, list) in candidates.iter().enumerate() {
                        if u == ti {
                            continue;
                        }
                        let search = &mut current.searches[u];
                        if search.done {
                            continue;
                        }
                        let list: &[u32] = list;
                        // Entries at or below `fi` are not candidates for
                        // this current (the batch engine's
                        // `candidate.id > current.id` filter); they are
                        // consumed unclassified. The list is ascending, so
                        // that prefix is contiguous — jump it in one binary
                        // search instead of walking it element by element
                        // (the walk is quadratic in the lane population).
                        if (search.pos as usize) < list.len() && list[search.pos as usize] <= fi32 {
                            search.pos = list.partition_point(|&c| c <= fi32) as u32;
                        }
                        // The cap bounds the visit up front, so the hot loop
                        // walks a borrowed slice with no per-candidate
                        // cursor or cap bookkeeping; `classify` still sets
                        // `done` at the cap or on a TLCP.
                        let lo = search.pos as usize;
                        let room = cap.saturating_sub(search.scanned as usize);
                        if room == 0 {
                            // A zero cap consumes one candidate unclassified
                            // and ends the search, as the batch engine does.
                            if lo < list.len() {
                                search.pos += 1;
                                search.done = true;
                            }
                        } else {
                            let visit = room.min(list.len() - lo);
                            let mut taken = 0;
                            for &cand in &list[lo..lo + visit] {
                                taken += 1;
                                debug_assert!(cand > fi32, "candidate lists ascend");
                                out.classify(fi, fmeta, cand as usize, search);
                                if search.done {
                                    break;
                                }
                            }
                            search.pos += taken;
                        }
                        if search.done {
                            current.done_count += 1;
                            if current.done_count as usize == num_threads.saturating_sub(1) {
                                retired = true;
                                break;
                            }
                        }
                    }
                }
                if retired {
                    pairing[fi] = None;
                    *live -= 1;
                    if !*ending {
                        *retired_before_end += 1;
                    }
                }
            }
        }
    }

    /// Retires currents whose outcome no later section can change, then
    /// advances the history horizon and prunes the write logs. The horizon
    /// only needs this shard's live currents and queued sections: every
    /// future query of this worker's history comes from its own locks.
    fn retire_and_prune(&mut self, window_end: Time, at_end: bool) {
        let Worker {
            sections,
            pairing,
            locks,
            history,
            exited,
            live,
            retired_before_end,
            ..
        } = self;
        for lane in locks.values_mut() {
            let LockLane {
                live_list,
                delivery,
                ..
            } = lane;
            live_list.retain(|&fi32| {
                let fi = fi32 as usize;
                let retire = match pairing[fi].as_ref() {
                    None => return false, // retired in the candidate phase
                    Some(current) => (0..exited.len()).all(|u| {
                        u == current.thread as usize
                            || current.searches[u].done
                            || ((exited[u] || at_end) && delivery[u].is_empty())
                    }),
                };
                if retire {
                    pairing[fi] = None;
                    *live -= 1;
                    if !at_end {
                        *retired_before_end += 1;
                    }
                }
                !retire
            });
        }

        if !self.use_history {
            return;
        }
        let mut horizon: Option<Time> = None;
        let mut consider = |t: Time| {
            horizon = Some(horizon.map_or(t, |h: Time| h.min(t)));
        };
        for lane in locks.values() {
            for &fi in &lane.live_list {
                if let Some(current) = pairing[fi as usize].as_ref() {
                    consider(current.enter_time);
                }
            }
            for queue in &lane.delivery {
                for &idx in queue {
                    consider(sections[idx as usize].enter_time);
                }
            }
        }
        let horizon =
            horizon.unwrap_or_else(|| Time::from_nanos(window_end.as_nanos().saturating_add(1)));
        history.prune(horizon);
    }

    fn sample_peaks(&mut self) {
        self.peak_live = self.peak_live.max(self.live);
        self.peak_history = self.peak_history.max(self.history.entries);
        let resident: usize = self.locks.values().map(|l| l.sink.resident_entries()).sum();
        self.peak_pairs = self.peak_pairs.max(resident);
    }

    fn finish(mut self) -> WorkerResult<S> {
        self.ending = true;
        // Flush sections still awaiting delivery: their same-(lock, thread)
        // predecessors never closed, so those blockers will never deliver.
        // Deliver the closed remainder in id order (local index order), as
        // the sequential engine does; never-closed placeholders are dropped.
        let mut leftovers: Vec<(LockId, usize, u32)> = Vec::new();
        for (&lock, lane) in &mut self.locks {
            for (ti, queue) in lane.delivery.iter_mut().enumerate() {
                while let Some(idx) = queue.pop_front() {
                    if self.closed[idx as usize] {
                        leftovers.push((lock, ti, idx));
                    }
                }
            }
        }
        leftovers.sort_unstable_by_key(|&(_, _, idx)| idx);
        for (lock, ti, idx) in leftovers {
            self.deliver(lock, ti, idx as usize);
        }
        self.sweep();
        self.retire_and_prune(Time::MAX, true);
        self.sample_peaks();
        WorkerResult {
            sections: self.sections,
            breakdown: self.breakdown,
            sinks: self
                .locks
                .into_iter()
                .map(|(lock, lane)| (lock, lane.sink))
                .collect(),
            peak_live: self.peak_live,
            peak_history: self.peak_history,
            peak_pairs: self.peak_pairs,
            retired_before_end: self.retired_before_end,
        }
    }
}

/// The classification context of one delivery: borrows the immutable inputs
/// and the lock's sink shard once, so each pair costs one classification
/// plus one emission.
struct PairSink<'a, S: UlcpSink> {
    config: DetectorConfig,
    /// `config.max_scan_per_thread` with `None` hoisted to "unlimited", so
    /// the per-pair cap check is one integer compare.
    cap: u32,
    lock: LockId,
    sections: &'a [CriticalSection],
    meta: &'a [SecMeta],
    history: &'a SlotHistory,
    out: &'a mut S,
    breakdown: &'a mut UlcpBreakdown,
}

impl<S: UlcpSink> PairSink<'_, S> {
    /// Classifies one `(first, second)` local-index pair exactly as the
    /// sequential engine does — through the summary-word fast path when it
    /// is decisive — then emits the outcome and updates the search state.
    /// `fm` must be `self.meta[first]` — hoisted by the caller, which holds
    /// it fixed across a whole candidate scan.
    fn classify(&mut self, first: usize, fm: SecMeta, second: usize, search: &mut SearchV) {
        let sm = self.meta[second];
        let class = match fast_classify(fm.key, sm.key) {
            Some(class) => class,
            None => {
                let state = SlotStateBefore {
                    history: self.history,
                    at: self.sections[first].enter_time,
                };
                classify_pair(
                    &self.sections[first],
                    &self.sections[second],
                    &state,
                    self.config.use_reversed_replay,
                )
            }
        };
        search.scanned += 1;
        if search.scanned >= self.cap {
            search.done = true;
        }
        // Constructing the refs is free; on the fast path no sink that
        // overrides `emit_threaded` ever dereferences them.
        let ctx = SectionCtx {
            first: &self.sections[first],
            second: &self.sections[second],
        };
        match class {
            PairClass::Tlcp => {
                search.done = true;
                self.out.emit_edge(
                    CausalEdge {
                        from: fm.id,
                        to: sm.id,
                        lock: self.lock,
                    },
                    &ctx,
                );
                self.breakdown.tlcp_edges += 1;
            }
            PairClass::Ulcp(kind) => {
                self.breakdown.add(kind);
                self.out.emit_threaded(
                    Ulcp {
                        first: fm.id,
                        second: sm.id,
                        lock: self.lock,
                        kind,
                    },
                    sm.thread,
                    &ctx,
                );
            }
        }
    }
}

fn run_worker<S: UlcpSink>(
    config: DetectorConfig,
    num_threads: usize,
    rx: Receiver<Msg>,
    proto: S,
) -> Option<WorkerResult<S>> {
    let mut worker = Worker::new(config, num_threads, proto);
    loop {
        match rx.recv() {
            Ok(Msg::Chunk(packet)) => worker.ingest(packet),
            Ok(Msg::Finish) => return Some(worker.finish()),
            // Disconnect without Finish: the decoder aborted on an error;
            // this worker's partial state is meaningless.
            Err(_) => return None,
        }
    }
}

// ---------------------------------------------------------------------------
// Decoder: chunk-contract validation, extraction, id assignment, routing.
// ---------------------------------------------------------------------------

/// A critical section currently open on some thread.
struct DecOpen {
    lock: LockId,
    site: CodeSiteId,
    acquire_index: usize,
    depth: usize,
    reads: Vec<ObjectId>,
    writes: Vec<ObjectId>,
    accesses: Vec<MemAccess>,
    body_cost: Time,
    id: Option<SectionId>,
}

/// A section whose release event has arrived.
struct DecClosed {
    thread: ThreadId,
    release_index: usize,
    exit_time: Time,
    open: DecOpen,
}

/// Per-thread extraction state.
#[derive(Default)]
struct DecThread {
    next_index: usize,
    last_time: Time,
    open: Vec<DecOpen>,
    exited: bool,
    /// Set after a stream gap: the next span may jump forward once.
    resync: bool,
}

/// The reader/decoder stage: validates exactly what the sequential engine
/// validates (same error messages), extracts sections, assigns ids in the
/// global `(enter_time, thread, acquire_index)` order, slot-maps the memory
/// log, and routes placeholders/closures to workers by `lock.index() % N`.
struct Decoder {
    use_history: bool,
    num_threads: usize,
    workers: usize,
    threads: Vec<DecThread>,
    next_id: u32,
    closed_global: Vec<bool>,
    slot_of: HashMap<ObjectId, u32, IdBuildHasher>,
    lock_acquisitions: usize,
    stats: StreamingStats,
    prev_window_end: Option<Time>,
}

impl Decoder {
    fn new(config: DetectorConfig, num_threads: usize, workers: usize) -> Self {
        Decoder {
            use_history: config.use_reversed_replay,
            num_threads,
            workers,
            threads: (0..num_threads).map(|_| DecThread::default()).collect(),
            next_id: 0,
            closed_global: Vec::new(),
            slot_of: HashMap::default(),
            lock_acquisitions: 0,
            stats: StreamingStats::default(),
            prev_window_end: None,
        }
    }

    /// Notes a gap a recovering source reported. Workers never see gaps:
    /// losing events only relaxes the decoder's per-thread contiguity check,
    /// and detection over the surviving chunks equals detection over the
    /// trace with the lost events removed.
    fn note_gap(&mut self, gap: &StreamGap) {
        self.stats.gaps += 1;
        self.stats.events_lost += gap.events_lost;
        for state in &mut self.threads {
            state.resync = true;
        }
    }

    /// Decodes one chunk into per-worker packets (same length as `workers`).
    fn ingest(&mut self, chunk: TraceChunk) -> Result<Vec<Packet>, StreamError> {
        if let Some(prev) = self.prev_window_end {
            if chunk.window_end <= prev && chunk.num_events() > 0 {
                return Err(StreamError::Format(format!(
                    "chunk {} window {} does not advance past {}",
                    chunk.seq, chunk.window_end, prev
                )));
            }
        }
        self.stats.chunks += 1;
        self.stats.peak_chunk_events = self.stats.peak_chunk_events.max(chunk.num_events());

        // Phase A: per-thread extraction, identical to the sequential
        // engine. Memory events are collected in thread-major order so the
        // stable time sort below reproduces the global tie order.
        let mut chunk_mem: Vec<(Time, ObjectId, i64, bool)> = Vec::new();
        let mut new_acquires: Vec<(Time, ThreadId, usize)> = Vec::new();
        // Sections that closed this chunk live in one arena; every later
        // phase routes 8-byte `(key, arena index)` tuples instead of moving
        // the ~140-byte records through sorts and maps.
        let mut closed_arena: Vec<Option<DecClosed>> = Vec::new();
        let mut closed_now: Vec<(SectionId, u32)> = Vec::new();
        let mut closed_unassigned: Vec<(ThreadId, usize, u32)> = Vec::new();
        let mut newly_exited: Vec<ThreadId> = Vec::new();

        let mut prev_thread: Option<ThreadId> = None;
        for span in &chunk.spans {
            if prev_thread.is_some_and(|p| span.thread <= p) {
                return Err(StreamError::Format(format!(
                    "chunk {} spans not in ascending thread order",
                    chunk.seq
                )));
            }
            prev_thread = Some(span.thread);
            let ti = span.thread.index();
            if ti >= self.num_threads {
                return Err(StreamError::Format(format!(
                    "span for out-of-range thread {}",
                    span.thread
                )));
            }
            if self.threads[ti].resync {
                if span.base_index < self.threads[ti].next_index {
                    return Err(StreamError::Format(format!(
                        "span for {} rewinds across a gap: base {} but {} events seen",
                        span.thread, span.base_index, self.threads[ti].next_index
                    )));
                }
                self.threads[ti].next_index = span.base_index;
                self.threads[ti].resync = false;
            } else if span.base_index != self.threads[ti].next_index {
                return Err(StreamError::Format(format!(
                    "non-contiguous span for {}: base {} but {} events seen",
                    span.thread, span.base_index, self.threads[ti].next_index
                )));
            }
            for (offset, te) in span.events.iter().enumerate() {
                let idx = span.base_index + offset;
                let state = &mut self.threads[ti];
                if te.at < state.last_time {
                    return Err(StreamError::Trace(TraceError::NonMonotonicTime {
                        thread: span.thread,
                        event_index: idx,
                    }));
                }
                if te.at > chunk.window_end || self.prev_window_end.is_some_and(|p| te.at <= p) {
                    return Err(StreamError::Format(format!(
                        "event {idx} of {} at {} is outside chunk {}'s window",
                        span.thread, te.at, chunk.seq
                    )));
                }
                state.last_time = te.at;
                self.stats.events += 1;
                match &te.event {
                    Event::LockAcquire { lock, site } => {
                        self.lock_acquisitions += 1;
                        state.open.push(DecOpen {
                            lock: *lock,
                            site: *site,
                            acquire_index: idx,
                            depth: state.open.len(),
                            reads: Vec::new(),
                            writes: Vec::new(),
                            accesses: Vec::new(),
                            body_cost: Time::ZERO,
                            id: None,
                        });
                        new_acquires.push((te.at, span.thread, idx));
                    }
                    Event::LockRelease { lock } => {
                        if let Some(pos) = state.open.iter().rposition(|o| o.lock == *lock) {
                            let open = state.open.remove(pos);
                            let closed = DecClosed {
                                thread: span.thread,
                                release_index: idx,
                                exit_time: te.at,
                                open,
                            };
                            let slot = closed_arena.len() as u32;
                            match closed.open.id {
                                Some(id) => closed_now.push((id, slot)),
                                None => closed_unassigned.push((
                                    span.thread,
                                    closed.open.acquire_index,
                                    slot,
                                )),
                            }
                            closed_arena.push(Some(closed));
                        }
                    }
                    Event::Read { obj, value } => {
                        for o in &mut state.open {
                            o.reads.push(*obj);
                            o.accesses.push(MemAccess::Read(*obj));
                        }
                        if self.use_history {
                            chunk_mem.push((te.at, *obj, *value, false));
                        }
                    }
                    Event::Write { obj, op, value } => {
                        for o in &mut state.open {
                            o.writes.push(*obj);
                            o.accesses.push(MemAccess::Write(*obj, *op));
                        }
                        if self.use_history {
                            chunk_mem.push((te.at, *obj, *value, true));
                        }
                    }
                    Event::Compute { cost } => {
                        for o in &mut state.open {
                            o.body_cost += *cost;
                        }
                    }
                    Event::SkipRegion { saved_cost, .. } => {
                        for o in &mut state.open {
                            o.body_cost += *saved_cost;
                        }
                    }
                    Event::ThreadExit if !state.exited => {
                        state.exited = true;
                        newly_exited.push(span.thread);
                    }
                    _ => {}
                }
            }
            self.threads[ti].next_index += span.events.len();
        }

        // Phase B.1: slot-map the memory log. Sorting only within the chunk
        // is sound because ties never straddle chunk boundaries; slots are
        // assigned in this deterministic order, so every worker builds the
        // identical slot table.
        chunk_mem.sort_by_key(|&(at, ..)| at);
        let mut mem: Vec<MemEntry> = Vec::with_capacity(chunk_mem.len());
        let mut new_objects: Vec<ObjectId> = Vec::new();
        for (at, obj, value, is_write) in chunk_mem {
            let slot = match self.slot_of.get(&obj) {
                Some(&slot) => slot,
                None => {
                    let next = self.slot_of.len() as u32;
                    self.slot_of.insert(obj, next);
                    new_objects.push(obj);
                    next
                }
            };
            mem.push((at, slot, value, is_write));
        }
        let mem = Arc::new(mem);
        let new_objects = Arc::new(new_objects);
        let mut packets: Vec<Packet> = (0..self.workers)
            .map(|_| Packet {
                window_end: chunk.window_end,
                mem: Arc::clone(&mem),
                new_objects: Arc::clone(&new_objects),
                exited: newly_exited.clone(),
                placeholders: Vec::new(),
                closed: Vec::new(),
            })
            .collect();

        // Phase B.2: assign section ids in the exact global order
        // `extract_critical_sections` produces, and route each placeholder
        // to its lock's worker.
        new_acquires.sort_unstable();
        // Index the closed-before-assignment sections by `(thread, acquire)`
        // without moving them: a sorted key list over arena slots. (A keyed
        // map would shuffle the ~140-byte records through its nodes;
        // sections close once, so lookup-by-index is all that is needed.)
        closed_unassigned.sort_unstable();
        let find_closed = |thread: ThreadId, acq: usize| -> Option<u32> {
            let at = closed_unassigned
                .binary_search_by_key(&(thread, acq), |&(t, a, _)| (t, a))
                .ok()?;
            Some(closed_unassigned[at].2)
        };
        for (at, thread, acquire_index) in new_acquires {
            let id = SectionId::new(self.next_id);
            self.next_id += 1;
            self.closed_global.push(false);
            if let Some(slot) = find_closed(thread, acquire_index) {
                let closed = closed_arena[slot as usize]
                    .as_mut()
                    .expect("closed sections are taken once, in phase B.3");
                closed.open.id = Some(id);
                let route = closed.open.lock.index() % self.workers;
                packets[route].placeholders.push(Placeholder {
                    id,
                    thread,
                    lock: closed.open.lock,
                    site: closed.open.site,
                    acquire_index,
                    enter_time: at,
                    depth: closed.open.depth,
                });
                closed_now.push((id, slot));
            } else {
                let state = &mut self.threads[thread.index()];
                let open = state
                    .open
                    .iter_mut()
                    .find(|o| o.acquire_index == acquire_index)
                    .expect("acquire recorded this chunk is open or closed this chunk");
                open.id = Some(id);
                let route = open.lock.index() % self.workers;
                packets[route].placeholders.push(Placeholder {
                    id,
                    thread,
                    lock: open.lock,
                    site: open.site,
                    acquire_index,
                    enter_time: at,
                    depth: open.depth,
                });
            }
        }

        // Phase B.3: route closed sections in id order. Within one lock the
        // worker sees exactly the sequence the sequential engine would.
        closed_now.sort_unstable();
        for (id, slot) in closed_now {
            self.closed_global[id.index()] = true;
            self.stats.sections += 1;
            let closed = closed_arena[slot as usize]
                .take()
                .expect("each closed section is routed exactly once");
            let route = closed.open.lock.index() % self.workers;
            packets[route].closed.push(ClosedWire {
                id,
                thread: closed.thread,
                lock: closed.open.lock,
                release_index: closed.release_index,
                exit_time: closed.exit_time,
                reads: closed.open.reads,
                writes: closed.open.writes,
                accesses: closed.open.accesses,
                body_cost: closed.open.body_cost,
            });
        }

        self.prev_window_end = Some(chunk.window_end);
        Ok(packets)
    }
}

// ---------------------------------------------------------------------------
// The public detector: coordinator over decoder + workers.
// ---------------------------------------------------------------------------

/// The canonical `(lock, first, second-thread, second)` sort key of one
/// emitted pair, packed into one integer. All four components are `u32`
/// indices, so the packing is order-preserving and comparisons are two
/// word compares instead of a tuple walk with a section-table lookup.
#[inline]
fn pair_key(lock: LockId, first: SectionId, thread: ThreadId, second: SectionId) -> u128 {
    ((lock.index() as u128) << 96)
        | ((first.index() as u128) << 64)
        | ((thread.index() as u128) << 32)
        | second.index() as u128
}

/// Sorts one shard's emissions canonically and appends them to `out`,
/// stripping the captured thread. Each per-chunk sweep emits a lock's pairs
/// in ascending `(first, thread, second)` order, so a shard is a
/// concatenation of roughly one sorted run per chunk; the run-detecting
/// stable sort merges those in `O(log runs)` levels, and because one shard
/// is a fraction of the total pair list, the merge levels run over
/// cache-sized data instead of the whole concatenated output.
///
/// A cheap pre-scan decides the key width: when the shard holds a single
/// lock (structurally true — shards are forked per lock) and every id fits,
/// the key packs `(first, thread, second)` into 64 bits — the lock
/// contributes nothing to the order within one shard — halving the
/// per-comparison cost of the merge. Any shard that fails the check falls
/// back to the full 128-bit `(lock, first, thread, second)` key; both keys
/// order such a shard identically.
fn sort_shard<T: Copy, O>(
    seg: &mut [(T, ThreadId)],
    parts: impl Fn(&T) -> (LockId, SectionId, SectionId),
    strip: impl Fn(&T) -> O,
    out: &mut Vec<O>,
) {
    let Some(&(head, _)) = seg.first() else {
        return;
    };
    let (head_lock, ..) = parts(&head);
    let (mut max_sec, mut max_thread, mut one_lock) = (0usize, 0usize, true);
    for (v, t) in seg.iter() {
        let (lock, first, second) = parts(v);
        max_sec = max_sec.max(first.index()).max(second.index());
        max_thread = max_thread.max(t.index());
        one_lock &= lock == head_lock;
    }
    if one_lock && max_sec < (1 << 24) && max_thread < (1 << 16) {
        seg.sort_by_key(|(v, t)| {
            let (_, first, second) = parts(v);
            ((first.index() as u64) << 40) | ((t.index() as u64) << 24) | second.index() as u64
        });
    } else {
        seg.sort_by_key(|(v, t)| {
            let (lock, first, second) = parts(v);
            pair_key(lock, first, *t, second)
        });
    }
    out.extend(seg.iter().map(|(v, _)| strip(v)));
}

/// Merges the maximal ascending runs of one segment in a single output
/// pass, via a classic loser tree over the run heads. The per-chunk sweep
/// emits each lane's pairs in ascending canonical order, so a segment is a
/// concatenation of roughly one sorted run per chunk; merging the recorded
/// runs directly replaces the seal-time comparison sort — `log₂(runs)`
/// comparisons and **one** move per pair instead of a multi-level merge
/// sort that re-copies the whole segment at every level.
///
/// Generic over the key width so the packed (`u64`) and wide (`u128`)
/// segment representations share the tree. `starts` holds the begin offset
/// of every run (`starts[0] == 0`); `key_at`/`take` index the segment's
/// `n` entries. Keys are unique (a pair is classified exactly once), so
/// tie-breaking never arises on real entries.
fn merge_runs_by<K: Copy + Ord>(
    n: usize,
    starts: &[u32],
    max_key: K,
    key_at: impl Fn(usize) -> K,
    mut take: impl FnMut(usize),
) {
    let nruns = starts.len();
    debug_assert!(nruns >= 2 && starts[0] == 0);
    let k = nruns.next_power_of_two();
    let mut cur = vec![0usize; k];
    let mut end = vec![0usize; k];
    let mut keys = vec![max_key; k];
    for i in 0..nruns {
        cur[i] = starts[i] as usize;
        end[i] = starts.get(i + 1).map_or(n, |&s| s as usize);
        if cur[i] < end[i] {
            keys[i] = key_at(cur[i]);
        }
    }
    // Build the tree: `winner_of` is scaffolding, `loser[node]` survives.
    let mut loser = vec![0usize; k];
    let mut winner_of = vec![0usize; 2 * k];
    for (i, slot) in winner_of[k..].iter_mut().enumerate() {
        *slot = i;
    }
    for node in (1..k).rev() {
        let (a, b) = (winner_of[2 * node], winner_of[2 * node + 1]);
        let (w, l) = if keys[a] <= keys[b] { (a, b) } else { (b, a) };
        winner_of[node] = w;
        loser[node] = l;
    }
    // Termination is by count, not by sentinel, so a real key equal to
    // `max_key` can never truncate the output.
    //
    // The pop loop also tracks `rival`, the runner-up head: by the
    // tournament invariant the second-smallest head lost a match directly
    // against the winner's chain, so it is the minimum of the recorded
    // losers on the **winner's** leaf-to-root path — recomputed after every
    // replay, because the new winner may emerge from a stored loser whose
    // path diverges from the replayed leaf's. While the winner run's next
    // key stays below `rival`, that run keeps winning and the replay is
    // skipped — consecutive keys cluster within one run (a run is one
    // chunk's ascending sweep), so most pops take this one-compare path
    // instead of the `log₂(runs)` replay.
    let path_min = |w: usize, keys: &[K], loser: &[usize]| {
        let mut node = (k + w) / 2;
        let mut m = max_key;
        while node >= 1 {
            let key = keys[loser[node]];
            if key < m {
                m = key;
            }
            node /= 2;
        }
        m
    };
    let mut w = winner_of[1];
    let mut rival = path_min(w, &keys, &loser);
    let mut produced = 0usize;
    while produced < n {
        loop {
            debug_assert!(cur[w] < end[w], "the winner run is non-empty");
            take(cur[w]);
            produced += 1;
            cur[w] += 1;
            keys[w] = if cur[w] < end[w] {
                key_at(cur[w])
            } else {
                max_key
            };
            if keys[w] >= rival {
                break;
            }
        }
        if produced >= n {
            break;
        }
        // Replay the leaf-to-root path: the new head competes against the
        // recorded losers; whoever survives is the next overall winner.
        let mut node = (k + w) / 2;
        let mut cand = w;
        while node >= 1 {
            if keys[loser[node]] < keys[cand] {
                std::mem::swap(&mut loser[node], &mut cand);
            }
            node /= 2;
        }
        w = cand;
        rival = path_min(w, &keys, &loser);
    }
}

/// Largest section index (exclusive) a packed entry can hold. One below the
/// 24-bit field capacity so a packed key can never equal `u64::MAX` (which
/// [`merge_runs_by`] uses as its exhausted-run filler).
const PACK_MAX_SECTION: usize = (1 << 24) - 1;
/// Largest second-thread index (exclusive) a packed entry can hold.
const PACK_MAX_THREAD: usize = 1 << 16;

/// Packs `(first, second-thread, second)` into the 24/16/24-bit fields of a
/// `u64`. Within a single-lock lane this orders identically to [`pair_key`]
/// whenever all three components fit their fields.
#[inline]
fn pack64(first: SectionId, thread: ThreadId, second: SectionId) -> u64 {
    ((first.index() as u64) << 40) | ((thread.index() as u64) << 24) | second.index() as u64
}

#[inline]
fn unpack64(key: u64) -> (SectionId, ThreadId, SectionId) {
    (
        SectionId::new((key >> 40) as u32),
        ThreadId::new(((key >> 24) & 0xFFFF) as u32),
        SectionId::new((key & 0xFF_FFFF) as u32),
    )
}

/// One absorbed lane's emissions plus the start offsets of its maximal
/// ascending runs (by canonical key). Runs are detected at emission time —
/// one key comparison per pair — so [`seal`](UlcpSink::seal) can merge
/// instead of sort.
///
/// Storage is packed while it can be: a lane is forked per lock, and ids in
/// any realistic stream fit the [`pack64`] fields, so a pair is stored as a
/// `u64` key plus a one-byte kind (9 bytes, split across two dense arrays)
/// instead of a 20-byte `(Ulcp, ThreadId)` tuple. Emission is the hottest
/// memory path in the engine — the pair population is ~60× the section
/// population on contended traces — so halving its footprint pays for
/// itself, and seal-time merge comparisons shrink from `u128` to `u64`.
/// The first pair that cannot pack (a second lock in the lane, or an
/// oversized id) demotes the whole lane to the wide tuple form; packing is
/// an encoding choice only, the pair order is identical in both modes.
#[derive(Debug)]
struct RunSegment {
    /// The lane's lock; meaningful once the first packed entry exists.
    lock: LockId,
    /// Packed entries ([`pack64`]); exclusive with `wide`.
    keys: Vec<u64>,
    /// `kinds[i]` belongs to `keys[i]`.
    kinds: Vec<UlcpKind>,
    /// Fallback entries; non-empty only after demotion.
    wide: Vec<(Ulcp, ThreadId)>,
    /// Begin offset of every ascending run; `[0]` once non-empty.
    runs: Vec<u32>,
    last_key: u128,
}

impl Default for RunSegment {
    fn default() -> Self {
        RunSegment {
            lock: LockId::new(0),
            keys: Vec::new(),
            kinds: Vec::new(),
            wide: Vec::new(),
            runs: Vec::new(),
            last_key: 0,
        }
    }
}

impl RunSegment {
    fn len(&self) -> usize {
        self.keys.len() + self.wide.len()
    }

    fn is_empty(&self) -> bool {
        self.keys.is_empty() && self.wide.is_empty()
    }

    fn push(&mut self, ulcp: Ulcp, second_thread: ThreadId) {
        if self.wide.is_empty() {
            if (self.keys.is_empty() || ulcp.lock == self.lock)
                && ulcp.first.index() < PACK_MAX_SECTION
                && ulcp.second.index() < PACK_MAX_SECTION
                && second_thread.index() < PACK_MAX_THREAD
            {
                // Packed path: within one lock the u64 key orders exactly
                // like the canonical key, so run detection compares it
                // directly and never forms the 128-bit key at all.
                let key = pack64(ulcp.first, second_thread, ulcp.second);
                if self.runs.is_empty() || key < self.last_key as u64 {
                    self.runs.push(self.keys.len() as u32);
                }
                self.last_key = u128::from(key);
                self.lock = ulcp.lock;
                self.keys.push(key);
                self.kinds.push(ulcp.kind);
                return;
            }
            self.demote();
        }
        let key = pair_key(ulcp.lock, ulcp.first, second_thread, ulcp.second);
        if self.runs.is_empty() || key < self.last_key {
            self.runs.push(self.len() as u32);
        }
        self.last_key = key;
        self.wide.push((ulcp, second_thread));
    }

    /// Converts every packed entry to the wide form, preserving order.
    fn demote(&mut self) {
        self.wide.reserve(self.keys.len());
        let lock = self.lock;
        for (&key, &kind) in self.keys.iter().zip(&self.kinds) {
            let (first, thread, second) = unpack64(key);
            self.wide.push((
                Ulcp {
                    first,
                    second,
                    lock,
                    kind,
                },
                thread,
            ));
        }
        // The stored key was the packed form; re-express it canonically so
        // the next (wide) comparison detects run boundaries correctly.
        if let Some(&last) = self.keys.last() {
            let (first, thread, second) = unpack64(last);
            self.last_key = pair_key(self.lock, first, thread, second);
        }
        self.keys = Vec::new();
        self.kinds = Vec::new();
    }

    /// Appends this lane's pairs to `out` in canonical order, merging the
    /// recorded runs when there is more than one.
    fn seal_into(self, out: &mut Vec<Ulcp>) {
        let RunSegment {
            lock,
            keys,
            kinds,
            wide,
            runs,
            ..
        } = self;
        if wide.is_empty() {
            let rebuild = |i: usize| {
                let (first, _, second) = unpack64(keys[i]);
                Ulcp {
                    first,
                    second,
                    lock,
                    kind: kinds[i],
                }
            };
            if runs.len() <= 1 {
                out.extend((0..keys.len()).map(rebuild));
            } else {
                merge_runs_by(
                    keys.len(),
                    &runs,
                    u64::MAX,
                    |i| keys[i],
                    |i| out.push(rebuild(i)),
                );
            }
        } else if runs.len() <= 1 {
            out.extend(wide.into_iter().map(|(u, _)| u));
        } else {
            merge_runs_by(
                wide.len(),
                &runs,
                u128::MAX,
                |i| {
                    let (u, t) = wide[i];
                    pair_key(u.lock, u.first, t, u.second)
                },
                |i| out.push(wide[i].0),
            );
        }
    }
}

/// [`CollectPairs`](crate::CollectPairs) specialized for the parallel
/// engine's shard structure. Each forked shard records its own emissions
/// with the second section's thread captured inline (the canonical sort key
/// needs it, and capturing it at emission avoids a section-table lookup per
/// key computation later) and tracks its ascending-run boundaries. The root
/// sink keeps absorbed shards segmented instead of concatenating them;
/// because shards arrive one per lock in ascending lock order, their key
/// ranges are disjoint and ascending, so [`seal`](UlcpSink::seal) merges
/// each shard's recorded runs independently ([`merge_runs`]) and writes the
/// final canonical `Vec<Ulcp>` in a single output pass.
#[derive(Debug, Default)]
struct OrderedPairs {
    /// This shard's own emissions, in emission order, with run boundaries.
    local: RunSegment,
    local_edges: Vec<(CausalEdge, ThreadId)>,
    /// Absorbed shards, one per lock, in ascending lock order.
    segments: Vec<RunSegment>,
    edge_segments: Vec<Vec<(CausalEdge, ThreadId)>>,
    /// The canonical outputs, populated by [`seal`](UlcpSink::seal).
    ulcps: Vec<Ulcp>,
    edges: Vec<CausalEdge>,
}

impl UlcpSink for OrderedPairs {
    fn emit(&mut self, ulcp: Ulcp, ctx: &SectionCtx<'_>) {
        self.local.push(ulcp, ctx.second.thread);
    }

    fn emit_threaded(&mut self, ulcp: Ulcp, second_thread: ThreadId, _ctx: &SectionCtx<'_>) {
        self.local.push(ulcp, second_thread);
    }

    fn emit_edge(&mut self, edge: CausalEdge, ctx: &SectionCtx<'_>) {
        self.local_edges.push((edge, ctx.second.thread));
    }

    fn fork(&self) -> Self {
        OrderedPairs::default()
    }

    fn absorb(&mut self, mut shard: Self) {
        self.segments.append(&mut shard.segments);
        if !shard.local.is_empty() {
            self.segments.push(shard.local);
        }
        self.edge_segments.append(&mut shard.edge_segments);
        if !shard.local_edges.is_empty() {
            self.edge_segments.push(shard.local_edges);
        }
    }

    fn remap_sections(&mut self, remap: &[Option<SectionId>]) {
        // Compaction renumbers ids monotonically (and only ever downward),
        // so every recorded run stays ascending under the remap and every
        // packed entry stays packable; only the ids change.
        let map = |id: SectionId| remap[id.index()].expect("paired section survives compaction");
        for seg in self.segments.iter_mut().chain([&mut self.local]) {
            for key in &mut seg.keys {
                let (first, thread, second) = unpack64(*key);
                *key = pack64(map(first), thread, map(second));
            }
            for (u, _) in &mut seg.wide {
                u.first = map(u.first);
                u.second = map(u.second);
            }
        }
        for (e, _) in self
            .edge_segments
            .iter_mut()
            .flatten()
            .chain(&mut self.local_edges)
        {
            e.from = map(e.from);
            e.to = map(e.to);
        }
    }

    fn seal(&mut self, _sections: &[CriticalSection]) {
        let segments = std::mem::take(&mut self.segments);
        let local = std::mem::take(&mut self.local);
        let total = segments.iter().map(RunSegment::len).sum::<usize>() + local.len();
        let mut ulcps = Vec::with_capacity(total);
        for seg in segments.into_iter().chain([local]) {
            seg.seal_into(&mut ulcps);
        }
        self.ulcps = ulcps;
        let edge_segments = std::mem::take(&mut self.edge_segments);
        let local_edges = std::mem::take(&mut self.local_edges);
        let total = edge_segments.iter().map(Vec::len).sum::<usize>() + local_edges.len();
        let mut edges = Vec::with_capacity(total);
        for mut seg in edge_segments.into_iter().chain([local_edges]) {
            sort_shard(&mut seg, |e| (e.lock, e.from, e.to), |e| *e, &mut edges);
        }
        self.edges = edges;
    }

    fn resident_entries(&self) -> usize {
        self.segments.iter().map(RunSegment::len).sum::<usize>()
            + self.edge_segments.iter().map(Vec::len).sum::<usize>()
            + self.local.len()
            + self.local_edges.len()
            + self.ulcps.len()
            + self.edges.len()
    }
}

/// PerfPlay's ULCP identification stage over a chunked event stream, fanned
/// out across sharded per-lock worker threads.
///
/// The reader/decoder stage runs on the calling thread; `workers` OS threads
/// each own the locks with `lock.index() % workers == worker` and run the
/// same incremental Algorithm 1 state machine as
/// [`StreamingDetector`](crate::StreamingDetector) over their shard. Output
/// is **bit-identical** to sequential streaming (and therefore to
/// [`Detector::analyze`](crate::Detector::analyze)): ids, pair order after
/// sealing, breakdown and section table all match exactly.
///
/// Peak-state accounting ([`StreamingStats`]) reports worker peaks *summed*,
/// an upper bound on the true simultaneous peak; it remains bounded by the
/// chunk size exactly as the sequential engine's is.
#[derive(Debug, Clone)]
pub struct ParallelStreamingDetector {
    config: DetectorConfig,
    workers: usize,
}

impl ParallelStreamingDetector {
    /// Creates a parallel streaming detector with one worker per available
    /// core. `config.parallel` is irrelevant here — this *is* the parallel
    /// path.
    pub fn new(config: DetectorConfig) -> Self {
        let workers = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        ParallelStreamingDetector { config, workers }
    }

    /// Creates a parallel streaming detector with an explicit worker count
    /// (clamped to at least 1).
    pub fn with_workers(config: DetectorConfig, workers: usize) -> Self {
        ParallelStreamingDetector {
            config,
            workers: workers.max(1),
        }
    }

    /// The number of worker threads this detector fans out to.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Consumes the source to exhaustion and returns the analysis,
    /// bit-identical to [`StreamingDetector::analyze`] and
    /// [`Detector::analyze`] over the same events.
    ///
    /// # Errors
    ///
    /// Propagates source errors and rejects streams that violate the chunk
    /// contract or per-thread timestamp monotonicity — the same conditions,
    /// with the same error values, as the sequential streaming engine.
    ///
    /// [`StreamingDetector::analyze`]: crate::StreamingDetector::analyze
    /// [`Detector::analyze`]: crate::Detector::analyze
    pub fn analyze<Src: EventSource>(
        &self,
        source: &mut Src,
    ) -> Result<StreamingAnalysis, StreamError> {
        let result = self.analyze_with(source, OrderedPairs::default())?;
        Ok(StreamingAnalysis {
            analysis: UlcpAnalysis {
                sections: result.sections,
                ulcps: result.sink.ulcps,
                edges: result.sink.edges,
                breakdown: result.breakdown,
            },
            stats: result.stats,
        })
    }

    /// Consumes the source to exhaustion, emitting every classified pair
    /// through per-lock forked shards of the caller's sink. Shards are
    /// absorbed back in ascending lock order and sealed once, so an
    /// order-preserving sink ends up with the exact sequential output.
    ///
    /// The sink must be `Send` because its forked shards live on the worker
    /// threads; sinks that cannot be sent should use the sequential
    /// [`StreamingDetector::analyze_with`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`analyze`](Self::analyze).
    ///
    /// [`StreamingDetector::analyze_with`]: crate::StreamingDetector::analyze_with
    pub fn analyze_with<Src: EventSource, S: UlcpSink + Send>(
        &self,
        source: &mut Src,
        sink: S,
    ) -> Result<StreamingSinkAnalysis<S>, StreamError> {
        let workers = self.workers;
        let num_threads = source.num_threads();
        let config = self.config;
        let protos: Vec<S> = (0..workers).map(|_| sink.fork()).collect();
        let mut root = sink;
        let mut decoder = Decoder::new(config, num_threads, workers);

        let (outcome, joined) = std::thread::scope(|scope| {
            let mut senders = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            for (i, proto) in protos.into_iter().enumerate() {
                let (tx, rx) = sync_channel::<Msg>(CHANNEL_DEPTH);
                senders.push(tx);
                let handle = std::thread::Builder::new()
                    .name(format!("pstream-w{i}"))
                    .spawn_scoped(scope, move || run_worker(config, num_threads, rx, proto))
                    .expect("worker thread spawns");
                handles.push(handle);
            }
            let outcome = (|| -> Result<(), StreamError> {
                while let Some(item) = source.next_item()? {
                    match item {
                        StreamItem::Chunk(chunk) => {
                            let packets = decoder.ingest(chunk)?;
                            for (tx, packet) in senders.iter().zip(packets) {
                                tx.send(Msg::Chunk(packet)).map_err(|_| worker_died())?;
                            }
                        }
                        StreamItem::Gap(gap) => decoder.note_gap(&gap),
                    }
                }
                for tx in &senders {
                    tx.send(Msg::Finish).map_err(|_| worker_died())?;
                }
                Ok(())
            })();
            // Dropping the senders disconnects the channels, so on the error
            // path workers wake up, discard their state and exit.
            drop(senders);
            let mut joined = Vec::with_capacity(workers);
            for handle in handles {
                match handle.join() {
                    Ok(result) => joined.push(result),
                    // Re-raise a worker panic as itself, not as a join error:
                    // the real cause must surface.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            (outcome, joined)
        });
        outcome?;
        let results: Vec<WorkerResult<S>> = joined
            .into_iter()
            .map(|r| r.expect("workers receive Finish on the success path"))
            .collect();

        // Merge: assemble sections by global id (every id was routed to
        // exactly one worker), sum the worker-side accounting, and absorb
        // the per-lock sink shards in ascending lock order.
        let total = decoder.next_id as usize;
        let mut breakdown = UlcpBreakdown {
            lock_acquisitions: decoder.lock_acquisitions,
            ..UlcpBreakdown::default()
        };
        let mut stats = decoder.stats;
        let mut all_sinks: Vec<(LockId, S)> = Vec::new();
        let mut shard_sections: Vec<Vec<CriticalSection>> = Vec::with_capacity(results.len());
        for result in results {
            shard_sections.push(result.sections);
            breakdown.merge_pair_counts(&result.breakdown);
            stats.peak_live_sections += result.peak_live;
            stats.peak_history_entries += result.peak_history;
            stats.peak_live_pairs += result.peak_pairs;
            stats.retired_before_end += result.retired_before_end;
            all_sinks.extend(result.sinks);
        }
        // Assemble the global section table by merging the shards on id:
        // each shard is ascending (delivery order), every id lives in exactly
        // one shard, so an id-order merge moves each section once — no
        // scatter through a `Vec<Option<_>>` twice its size.
        let mut sections: Vec<CriticalSection> = Vec::with_capacity(total);
        {
            // Cursor merge over the shards' `IntoIter`s: `as_slice` peeks by
            // reference (no buffered move) and each round takes the winner's
            // whole run — every section strictly below the runner-up's front
            // id — in one `extend`, so a section moves exactly once.
            let mut heads: Vec<std::vec::IntoIter<CriticalSection>> =
                shard_sections.into_iter().map(Vec::into_iter).collect();
            loop {
                let mut best: Option<(usize, SectionId)> = None;
                let mut runner_up: Option<SectionId> = None;
                for (w, head) in heads.iter().enumerate() {
                    let Some(s) = head.as_slice().first() else {
                        continue;
                    };
                    match best {
                        Some((_, b)) if s.id > b => {
                            if runner_up.is_none_or(|r| s.id < r) {
                                runner_up = Some(s.id);
                            }
                        }
                        Some((_, b)) => {
                            runner_up = Some(b);
                            best = Some((w, s.id));
                        }
                        None => best = Some((w, s.id)),
                    }
                }
                let Some((w, id)) = best else { break };
                debug_assert!(
                    sections.last().is_none_or(|p| p.id < id),
                    "each id is owned by one worker"
                );
                let run = match runner_up {
                    None => heads[w].as_slice().len(),
                    Some(r) => {
                        let pending = heads[w].as_slice();
                        let mut n = 1;
                        while n < pending.len() && pending[n].id < r {
                            n += 1;
                        }
                        n
                    }
                };
                sections.extend(heads[w].by_ref().take(run));
            }
        }
        assert_eq!(
            sections.len(),
            total,
            "every assigned id was routed to exactly one worker"
        );
        all_sinks.sort_unstable_by_key(|&(lock, _)| lock);
        for (_, shard) in all_sinks {
            root.absorb(shard);
        }
        stats.peak_live_pairs = stats.peak_live_pairs.max(root.resident_entries());

        // Drop sections that never closed and renumber densely, exactly as
        // the sequential engine's compaction does.
        if decoder.closed_global.iter().any(|&c| !c) {
            let mut remap: Vec<Option<SectionId>> = Vec::with_capacity(total);
            let mut kept = 0u32;
            for &closed in &decoder.closed_global {
                if closed {
                    remap.push(Some(SectionId::new(kept)));
                    kept += 1;
                } else {
                    remap.push(None);
                }
            }
            sections.retain(|s| remap[s.id.index()].is_some());
            for s in &mut sections {
                s.id = remap[s.id.index()].expect("kept section has a mapping");
            }
            root.remap_sections(&remap);
        }
        root.seal(&sections);

        Ok(StreamingSinkAnalysis {
            sections,
            breakdown,
            sink: root,
            stats,
        })
    }

    /// Convenience wrapper: streams an in-memory trace through a
    /// [`TraceChunks`] adapter with the given chunk size.
    ///
    /// # Errors
    ///
    /// Same conditions as [`analyze`](Self::analyze).
    pub fn analyze_trace(
        &self,
        trace: &Trace,
        chunk_events: usize,
    ) -> Result<StreamingAnalysis, StreamError> {
        self.analyze(&mut TraceChunks::new(trace, chunk_events))
    }

    /// Convenience wrapper: [`analyze_with`](Self::analyze_with) over a
    /// [`TraceChunks`] adapter with the given chunk size.
    ///
    /// # Errors
    ///
    /// Same conditions as [`analyze`](Self::analyze).
    pub fn analyze_trace_with<S: UlcpSink + Send>(
        &self,
        trace: &Trace,
        chunk_events: usize,
        sink: S,
    ) -> Result<StreamingSinkAnalysis<S>, StreamError> {
        self.analyze_with(&mut TraceChunks::new(trace, chunk_events), sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{BodyOverlapGain, SiteAggregator};
    use crate::{Detector, StreamingDetector};
    use perfplay_program::ProgramBuilder;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;
    use perfplay_trace::TraceMeta;

    fn record(build: impl FnOnce(&mut ProgramBuilder)) -> Trace {
        let mut b = ProgramBuilder::new("pstream-test");
        build(&mut b);
        Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace
    }

    fn assert_identical(
        trace: &Trace,
        config: DetectorConfig,
        chunk_events: usize,
        workers: usize,
    ) {
        let batch = Detector::new(config).analyze(trace);
        let sequential = StreamingDetector::new(config)
            .analyze_trace(trace, chunk_events)
            .unwrap();
        let parallel = ParallelStreamingDetector::with_workers(config, workers)
            .analyze_trace(trace, chunk_events)
            .unwrap();
        let label = format!("chunk={chunk_events} workers={workers}");
        assert_eq!(batch.sections, parallel.analysis.sections, "{label}");
        assert_eq!(batch.ulcps, parallel.analysis.ulcps, "{label}");
        assert_eq!(batch.edges, parallel.analysis.edges, "{label}");
        assert_eq!(batch.breakdown, parallel.analysis.breakdown, "{label}");
        // The stream-level accounting matches the sequential engine exactly
        // (peaks are engine-specific, but what was consumed is not).
        assert_eq!(sequential.stats.chunks, parallel.stats.chunks, "{label}");
        assert_eq!(sequential.stats.events, parallel.stats.events, "{label}");
        assert_eq!(
            sequential.stats.sections, parallel.stats.sections,
            "{label}"
        );
        assert_eq!(
            sequential.stats.peak_chunk_events, parallel.stats.peak_chunk_events,
            "{label}"
        );
        assert_eq!(sequential.stats.gaps, parallel.stats.gaps, "{label}");
    }

    fn mixed_trace() -> Trace {
        record(|b| {
            let locks: Vec<_> = (0..3).map(|i| b.lock(format!("l{i}"))).collect();
            let objs: Vec<_> = (0..5)
                .map(|i| b.shared(format!("o{i}"), i as i64))
                .collect();
            let site = b.site("s.c", "f", 1);
            for t in 0..3 {
                let locks = locks.clone();
                let objs = objs.clone();
                b.thread(format!("t{t}"), |tb| {
                    for k in 0..6usize {
                        let lock = locks[k % locks.len()];
                        let obj = objs[(t + k) % objs.len()];
                        tb.locked(lock, site, |cs| match k % 4 {
                            0 => {
                                cs.read(obj);
                            }
                            1 => {
                                cs.write_set(obj, 1);
                            }
                            2 => {
                                cs.write_add(obj, 1);
                            }
                            _ => {
                                cs.compute_ns(10);
                            }
                        });
                        tb.compute_ns(25);
                    }
                });
            }
        })
    }

    #[test]
    fn parallel_matches_batch_across_chunk_sizes_and_worker_counts() {
        let trace = mixed_trace();
        for chunk_events in [1, 3, 16, 100_000] {
            for workers in [1, 2, 3, 5] {
                assert_identical(&trace, DetectorConfig::default(), chunk_events, workers);
            }
        }
    }

    #[test]
    fn parallel_matches_batch_with_scan_cap_and_ablation() {
        let trace = mixed_trace();
        for config in [
            DetectorConfig {
                max_scan_per_thread: Some(2),
                ..DetectorConfig::default()
            },
            DetectorConfig {
                use_reversed_replay: false,
                ..DetectorConfig::default()
            },
            DetectorConfig {
                max_scan_per_thread: Some(1),
                use_reversed_replay: false,
                ..DetectorConfig::default()
            },
        ] {
            for chunk_events in [1, 5, 33] {
                for workers in [2, 3] {
                    assert_identical(&trace, config, chunk_events, workers);
                }
            }
        }
    }

    #[test]
    fn benign_pairs_survive_parallel_state_reconstruction() {
        // The benign check queries shadow memory at the first section's
        // enter time — long before the pair is classified — through each
        // worker's replicated slot-indexed history.
        let trace = record(|b| {
            let lock = b.lock("m");
            let flag = b.shared("done", 0);
            let site = b.site("bw.c", "set_done", 1);
            for i in 0..2 {
                b.thread(format!("t{i}"), |t| {
                    t.compute_ns(10 + i as u64 * 500);
                    t.locked(lock, site, |cs| {
                        cs.write_set(flag, 1);
                    });
                    t.compute_ns(300);
                });
            }
        });
        for chunk_events in [1, 2, 8] {
            assert_identical(&trace, DetectorConfig::default(), chunk_events, 2);
        }
        let parallel = ParallelStreamingDetector::with_workers(DetectorConfig::default(), 2)
            .analyze_trace(&trace, 2)
            .unwrap();
        assert_eq!(parallel.analysis.breakdown.benign, 1);
    }

    #[test]
    fn site_aggregator_shards_merge_identically() {
        // fork-of-fork: the engine forks per-lock lanes from per-worker
        // prototypes that were themselves forked from the root.
        let trace = mixed_trace();
        let config = DetectorConfig::default();
        let sequential = StreamingDetector::new(config)
            .analyze_trace_with(&trace, 16, SiteAggregator::new(BodyOverlapGain))
            .unwrap();
        let parallel = ParallelStreamingDetector::with_workers(config, 3)
            .analyze_trace_with(&trace, 16, SiteAggregator::new(BodyOverlapGain))
            .unwrap();
        assert_eq!(sequential.sink.finish(), parallel.sink.finish());
        assert_eq!(sequential.breakdown, parallel.breakdown);
        assert_eq!(sequential.sections, parallel.sections);
    }

    #[test]
    fn resident_state_stays_bounded_with_a_scan_cap() {
        let trace = record(|b| {
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("rr.c", "reader", 1);
            for i in 0..2 {
                b.thread(format!("t{i}"), |t| {
                    t.loop_n(60, |l| {
                        l.locked(lock, site, |cs| {
                            cs.read(x);
                            cs.compute_ns(100);
                        });
                        l.compute_ns(50);
                    });
                });
            }
        });
        let config = DetectorConfig {
            max_scan_per_thread: Some(2),
            ..DetectorConfig::default()
        };
        let parallel = ParallelStreamingDetector::with_workers(config, 2)
            .analyze_trace(&trace, 16)
            .unwrap();
        let total = parallel.analysis.sections.len();
        assert_eq!(total, 120);
        assert!(
            parallel.stats.peak_live_sections < total / 2,
            "peak live {} should be far below {total}",
            parallel.stats.peak_live_sections
        );
        assert!(parallel.stats.retired_before_end > 0);
        assert_eq!(parallel.stats.events, trace.num_events());
        assert_eq!(parallel.stats.sections, total);
        assert_identical(&trace, config, 16, 2);
    }

    #[test]
    fn single_thread_trace_has_no_pairs() {
        let trace = record(|b| {
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("w.c", "writer", 1);
            b.thread("t0", |t| {
                t.loop_n(20, |l| {
                    l.locked(lock, site, |cs| {
                        cs.write_add(x, 1);
                    });
                    l.compute_ns(40);
                });
            });
        });
        assert_identical(&trace, DetectorConfig::default(), 8, 3);
        let parallel = ParallelStreamingDetector::with_workers(DetectorConfig::default(), 3)
            .analyze_trace(&trace, 8)
            .unwrap();
        assert!(parallel.analysis.ulcps.is_empty());
        assert_eq!(parallel.analysis.sections.len(), 20);
    }

    /// Source adapter yielding the first chunk twice: base indices no longer
    /// line up, which must be rejected exactly as the sequential engine
    /// rejects it.
    struct DupFirst<'a> {
        inner: TraceChunks<'a>,
        dup: Option<TraceChunk>,
        state: u8,
    }

    impl<'a> DupFirst<'a> {
        fn new(trace: &'a Trace, chunk_events: usize) -> Self {
            DupFirst {
                inner: TraceChunks::new(trace, chunk_events),
                dup: None,
                state: 0,
            }
        }
    }

    impl EventSource for DupFirst<'_> {
        fn meta(&self) -> &TraceMeta {
            self.inner.meta()
        }

        fn num_threads(&self) -> usize {
            self.inner.num_threads()
        }

        fn next_chunk(&mut self) -> Result<Option<TraceChunk>, StreamError> {
            match self.state {
                0 => {
                    let first = self.inner.next_chunk()?;
                    self.dup.clone_from(&first);
                    self.state = 1;
                    Ok(first)
                }
                1 => {
                    self.state = 2;
                    Ok(self.dup.take())
                }
                _ => self.inner.next_chunk(),
            }
        }
    }

    #[test]
    fn malformed_stream_is_rejected() {
        let trace = mixed_trace();
        let sequential = StreamingDetector::default()
            .analyze(&mut DupFirst::new(&trace, 8))
            .unwrap_err();
        let parallel = ParallelStreamingDetector::with_workers(DetectorConfig::default(), 2)
            .analyze(&mut DupFirst::new(&trace, 8))
            .unwrap_err();
        assert_eq!(sequential, parallel);
        assert!(matches!(parallel, StreamError::Format(_)));
    }

    #[test]
    fn non_monotonic_thread_times_are_reported() {
        let mut trace = mixed_trace();
        let n = trace.threads[1].events.len();
        trace.threads[1].events[n - 2].at = Time::ZERO;
        let err = ParallelStreamingDetector::with_workers(DetectorConfig::default(), 2)
            .analyze_trace(&trace, 1_000_000)
            .unwrap_err();
        match err {
            StreamError::Trace(TraceError::NonMonotonicTime { thread, .. }) => {
                assert_eq!(thread, ThreadId::new(1));
            }
            other => panic!("expected NonMonotonicTime, got {other:?}"),
        }
    }

    #[test]
    fn summary_fast_path_agrees_with_classify_by_sets() {
        // Pairs drawn from a trace with overlapping and disjoint footprints:
        // whenever the fast path answers, the full classifier must agree.
        let trace = mixed_trace();
        let analysis = Detector::default().analyze(&trace);
        let mut checked = 0usize;
        for (i, a) in analysis.sections.iter().enumerate() {
            for b in analysis.sections.iter().skip(i + 1) {
                let ka = PairKey {
                    reads: a.reads.summary(),
                    writes: a.writes.summary(),
                };
                let kb = PairKey {
                    reads: b.reads.summary(),
                    writes: b.writes.summary(),
                };
                if let Some(fast) = fast_classify(ka, kb) {
                    assert_eq!(fast, crate::classify::classify_by_sets(a, b));
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "fast path never applied");
    }
}
