//! The naive, snapshot-cloning reference detector.
//!
//! This is the historical implementation of [`Detector::analyze`] kept as an
//! executable specification: it materializes one full [`MemorySnapshot`]
//! clone per critical section (O(sections x objects) memory traffic) and runs
//! the pairing loop strictly sequentially. The optimized engine in
//! [`pairing`](crate::Detector) must produce bit-identical results — the
//! property suite and the `detect_scaling` benchmark both compare against
//! this function.

use std::collections::{BTreeMap, BTreeSet};

use perfplay_trace::{
    extract_critical_sections, sections_by_lock, CriticalSection, Event, MemAccess, ObjectId, Time,
    Trace,
};

use crate::kinds::{PairClass, UlcpKind};
use crate::pairing::{CausalEdge, DetectorConfig, Ulcp, UlcpAnalysis, UlcpBreakdown};
use crate::shadow::MemorySnapshot;
use crate::sink::{CollectPairs, SectionCtx, SinkAnalysis, UlcpSink};

/// Runs ULCP identification with the naive snapshot-per-section strategy.
///
/// Honors `use_reversed_replay` and `max_scan_per_thread` from the config;
/// the `parallel` flag is ignored (the reference is always sequential).
pub fn reference_analyze(trace: &Trace, config: DetectorConfig) -> UlcpAnalysis {
    let SinkAnalysis {
        sections,
        breakdown,
        sink,
    } = reference_analyze_with(trace, config, CollectPairs::default());
    UlcpAnalysis {
        sections,
        ulcps: sink.ulcps,
        edges: sink.edges,
        breakdown,
    }
}

/// [`reference_analyze`] emitting through a caller-supplied sink — the
/// executable specification of the sink emission contract the optimized
/// engines must reproduce.
pub fn reference_analyze_with<S: UlcpSink>(
    trace: &Trace,
    config: DetectorConfig,
    mut sink: S,
) -> SinkAnalysis<S> {
    let sections = extract_critical_sections(trace);
    let snapshots = per_section_snapshots(trace, &sections);
    let by_lock = sections_by_lock(&sections);

    let mut breakdown = UlcpBreakdown {
        lock_acquisitions: trace.num_acquisitions(),
        ..UlcpBreakdown::default()
    };

    for (lock, lock_sections) in &by_lock {
        let mut per_thread: BTreeMap<_, Vec<_>> = BTreeMap::new();
        for s in lock_sections {
            per_thread.entry(s.thread).or_default().push(*s);
        }
        for current in lock_sections {
            for (other_thread, others) in &per_thread {
                if *other_thread == current.thread {
                    continue;
                }
                let mut scanned = 0usize;
                // Same cap semantics as the optimized engine; see pairing.rs.
                #[allow(clippy::explicit_counter_loop)]
                for candidate in others.iter().filter(|s| s.id > current.id) {
                    if config.max_scan_per_thread.is_some_and(|cap| scanned >= cap) {
                        break;
                    }
                    let class = classify_pair_naive(
                        current,
                        candidate,
                        &snapshots[current.id.index()],
                        config.use_reversed_replay,
                    );
                    scanned += 1;
                    let ctx = SectionCtx {
                        first: current,
                        second: candidate,
                    };
                    match class {
                        PairClass::Tlcp => {
                            sink.emit_edge(
                                CausalEdge {
                                    from: current.id,
                                    to: candidate.id,
                                    lock: *lock,
                                },
                                &ctx,
                            );
                            breakdown.tlcp_edges += 1;
                            break;
                        }
                        PairClass::Ulcp(kind) => {
                            breakdown.add(kind);
                            sink.emit(
                                Ulcp {
                                    first: current.id,
                                    second: candidate.id,
                                    lock: *lock,
                                    kind,
                                },
                                &ctx,
                            );
                        }
                    }
                }
            }
        }
    }
    sink.seal(&sections);

    SinkAnalysis {
        sections,
        breakdown,
        sink,
    }
}

/// The historical pair classification: set tests by plain merge walk (no
/// summary-word pre-rejection) and a reversed replay that clones the *entire*
/// starting snapshot twice per conflicting pair. Classification results are
/// identical to [`classify_pair`](crate::classify_pair); only the costs
/// differ.
fn classify_pair_naive(
    c1: &CriticalSection,
    c2: &CriticalSection,
    state_before: &MemorySnapshot,
    use_reversed_replay: bool,
) -> PairClass {
    let class = if c1.is_access_free() || c2.is_access_free() {
        PairClass::Ulcp(UlcpKind::NullLock)
    } else if c1.writes.is_empty() && c2.writes.is_empty() {
        PairClass::Ulcp(UlcpKind::ReadRead)
    } else if !naive_intersects(c1.reads.as_slice(), c2.writes.as_slice())
        && !naive_intersects(c1.writes.as_slice(), c2.reads.as_slice())
        && !naive_intersects(c1.writes.as_slice(), c2.writes.as_slice())
    {
        PairClass::Ulcp(UlcpKind::DisjointWrite)
    } else {
        PairClass::Tlcp
    };
    match class {
        PairClass::Tlcp if use_reversed_replay => refine_naive(c1, c2, state_before),
        other => other,
    }
}

/// Linear merge intersection over two sorted slices, with none of the
/// optimized engine's summary or galloping short-cuts.
fn naive_intersects(a: &[ObjectId], b: &[ObjectId]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

fn refine_naive(
    c1: &CriticalSection,
    c2: &CriticalSection,
    state_before: &MemorySnapshot,
) -> PairClass {
    let footprint: Vec<ObjectId> = c1
        .reads
        .iter()
        .chain(c1.writes.iter())
        .chain(c2.reads.iter())
        .chain(c2.writes.iter())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    let forward = run_order_naive(c1, c2, state_before, &footprint);
    let reversed = run_order_naive(c2, c1, state_before, &footprint);

    let same_memory = forward.2 == reversed.2;
    let same_reads_c1 = forward.0 == reversed.1;
    let same_reads_c2 = forward.1 == reversed.0;
    if same_memory && same_reads_c1 && same_reads_c2 {
        PairClass::Ulcp(UlcpKind::Benign)
    } else {
        PairClass::Tlcp
    }
}

/// Replays `a` then `b` from a full clone of the starting snapshot (the
/// historical cost), returning (reads of a, reads of b, final footprint
/// memory).
#[allow(clippy::type_complexity)]
fn run_order_naive(
    a: &CriticalSection,
    b: &CriticalSection,
    start: &MemorySnapshot,
    footprint: &[ObjectId],
) -> (Vec<i64>, Vec<i64>, BTreeMap<ObjectId, i64>) {
    let mut memory = start.clone();
    let mut reads_a = Vec::new();
    let mut reads_b = Vec::new();
    for (section, reads) in [(a, &mut reads_a), (b, &mut reads_b)] {
        for access in &section.accesses {
            match access {
                MemAccess::Read(obj) => reads.push(memory.get(*obj)),
                MemAccess::Write(obj, op) => {
                    let new = op.apply(memory.get(*obj));
                    memory.set(*obj, new);
                }
            }
        }
    }
    (reads_a, reads_b, memory.project(footprint.iter().copied()))
}

/// Computes, for every critical section, the shared-memory snapshot just
/// before its entry, cloning the running map once per section — the cost the
/// optimized engine exists to avoid.
fn per_section_snapshots(
    trace: &Trace,
    sections: &[perfplay_trace::CriticalSection],
) -> Vec<MemorySnapshot> {
    let mut mem_events: Vec<(Time, &Event)> = trace
        .iter_events()
        .filter(|(_, _, te)| te.event.is_memory_access())
        .map(|(_, _, te)| (te.at, &te.event))
        .collect();
    mem_events.sort_by_key(|(at, _)| *at);

    let mut running: BTreeMap<ObjectId, i64> = BTreeMap::new();
    let mut snapshots = Vec::with_capacity(sections.len());
    let mut cursor = 0usize;
    for section in sections {
        while cursor < mem_events.len() && mem_events[cursor].0 < section.enter_time {
            match mem_events[cursor].1 {
                Event::Write { obj, value, .. } => {
                    running.insert(*obj, *value);
                }
                Event::Read { obj, value } => {
                    running.entry(*obj).or_insert(*value);
                }
                _ => {}
            }
            cursor += 1;
        }
        snapshots.push(MemorySnapshot::from_values(running.clone()));
    }
    snapshots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Detector;
    use perfplay_program::ProgramBuilder;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;

    #[test]
    fn reference_matches_optimized_on_a_mixed_workload() {
        let mut b = ProgramBuilder::new("ref-test");
        let locks: Vec<_> = (0..3).map(|i| b.lock(format!("l{i}"))).collect();
        let objs: Vec<_> = (0..5)
            .map(|i| b.shared(format!("o{i}"), i as i64))
            .collect();
        let site = b.site("ref.c", "f", 1);
        for t in 0..3 {
            let locks = locks.clone();
            let objs = objs.clone();
            b.thread(format!("t{t}"), |tb| {
                for k in 0..6usize {
                    let lock = locks[k % locks.len()];
                    let obj = objs[(t + k) % objs.len()];
                    tb.locked(lock, site, |cs| {
                        match k % 4 {
                            0 => {
                                cs.read(obj);
                            }
                            1 => {
                                cs.write_set(obj, 1);
                            }
                            2 => {
                                cs.write_add(obj, 1);
                            }
                            _ => {
                                cs.compute_ns(10);
                            }
                        };
                    });
                    tb.compute_ns(25);
                }
            });
        }
        let trace = Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace;

        for config in [
            DetectorConfig::default(),
            DetectorConfig {
                use_reversed_replay: false,
                ..DetectorConfig::default()
            },
            DetectorConfig {
                max_scan_per_thread: Some(2),
                ..DetectorConfig::default()
            },
        ] {
            let reference = reference_analyze(&trace, config);
            let optimized = Detector::new(config).analyze(&trace);
            assert_eq!(reference.breakdown, optimized.breakdown);
            assert_eq!(reference.ulcps, optimized.ulcps);
            assert_eq!(reference.edges, optimized.edges);
        }
    }
}
