//! Incremental ULCP identification over a chunked event stream.
//!
//! [`Detector::analyze`](crate::Detector::analyze) needs the whole [`Trace`]
//! resident before it can start. [`StreamingDetector`] consumes an
//! [`EventSource`] chunk by chunk instead, keeping only bounded incremental
//! state:
//!
//! * per-thread extraction state (the stack of open critical sections);
//! * a [`StreamingHistory`] — the pruned equivalent of
//!   [`LastWriteIndex`](crate::LastWriteIndex): per shared object, the write
//!   log *since the earliest point any live pairing search can still query*
//!   (the horizon), plus the first-read anchor. Everything older is dropped;
//! * per-lock pairing queues with one cursor per `(section, other-thread)`
//!   sequential search. A section **retires** — its search state is dropped —
//!   as soon as no later section can change its outcome: every per-thread
//!   search has hit a TLCP or the configured scan cap, or the thread can
//!   produce no further candidates.
//!
//! The result is **bit-identical** to [`Detector::analyze`] and
//! [`reference_analyze`](crate::reference_analyze): section ids are assigned
//! in the same `(enter_time, thread, acquire_index)` order (the chunk
//! contract makes this possible without global sorting — equal timestamps
//! never straddle chunk boundaries), every pair is classified from exactly
//! the same starting state, and the output is ordered identically. The
//! equivalence is property-tested in `tests/streaming_equivalence.rs`.
//!
//! With `DetectorConfig::parallel` set, [`StreamingDetector::analyze`]
//! routes to [`ParallelStreamingDetector`](crate::ParallelStreamingDetector)
//! (sharded per-lock workers, same bit-identical output); the sink-generic
//! entry points require `S: Send` for that and therefore return a
//! [`StreamError::Config`] instead — call the parallel detector directly to
//! supply a sendable sink. Without a `max_scan_per_thread` cap, read-heavy
//! workloads can keep sections pairing-live for a long time, so the
//! resident-state bound is strongest with a cap configured (the bench
//! harness always sets one).

use std::collections::{BTreeMap, VecDeque};

use perfplay_trace::{
    CriticalSection, Event, EventSource, Footprint, LockId, MemAccess, ObjectId, SectionId,
    StreamError, StreamGap, StreamItem, ThreadId, Time, Trace, TraceChunk, TraceChunks, TraceError,
};

use crate::classify::classify_pair;
use crate::kinds::PairClass;
use crate::pairing::{CausalEdge, DetectorConfig, Ulcp, UlcpAnalysis, UlcpBreakdown};
use crate::shadow::StartState;
use crate::sink::{CollectPairs, SectionCtx, UlcpSink};

/// Peak-resident-state accounting of one streaming run: the evidence that
/// memory stayed bounded instead of growing with the event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StreamingStats {
    /// Chunks consumed.
    pub chunks: usize,
    /// Total events consumed.
    pub events: usize,
    /// Critical sections extracted.
    pub sections: usize,
    /// Largest single chunk (events) held resident.
    pub peak_chunk_events: usize,
    /// Peak count of sections whose pairing state was live at once
    /// (open + awaiting delivery + searching).
    pub peak_live_sections: usize,
    /// Peak number of retained write-log entries in the pruned history.
    pub peak_history_entries: usize,
    /// Peak number of entries the output sink held resident — individual
    /// pairs for a collecting sink, aggregate-table rows for an aggregating
    /// one. The field all BENCH artifacts report peak pair memory under.
    pub peak_live_pairs: usize,
    /// Sections whose pairing state was retired before the stream ended.
    pub retired_before_end: usize,
    /// Stream gaps a recovering source reported (0 on a clean stream).
    pub gaps: usize,
    /// Events known lost across those gaps.
    pub events_lost: u64,
}

impl StreamingStats {
    /// True if the source reported any gaps: the analysis is sound on what
    /// was seen, but not complete.
    pub fn is_gapped(&self) -> bool {
        self.gaps > 0
    }
}

/// The output of a streaming run: the analysis (bit-identical to the batch
/// engines) plus the resident-state accounting.
#[derive(Debug, Clone)]
pub struct StreamingAnalysis {
    /// The ULCP analysis.
    pub analysis: UlcpAnalysis,
    /// Resident-state statistics of the run.
    pub stats: StreamingStats,
}

/// The output of a streaming run into a caller-supplied sink: sections and
/// breakdown (maintained by the engine), the sink, and the resident-state
/// accounting.
#[derive(Debug, Clone)]
pub struct StreamingSinkAnalysis<S> {
    /// Every closed critical section, indexed by `SectionId::index`.
    pub sections: Vec<CriticalSection>,
    /// Per-category pair counts.
    pub breakdown: UlcpBreakdown,
    /// The sink, sealed in the canonical batch-engine order.
    pub sink: S,
    /// Resident-state statistics of the run.
    pub stats: StreamingStats,
}

/// Pruned per-object shadow-memory history.
///
/// Semantically a [`LastWriteIndex`](crate::LastWriteIndex) whose write logs
/// are truncated below the *horizon* — the earliest virtual time any live
/// pairing search can still query. Queries always come from live sections'
/// enter times, so answers are identical to the unpruned index.
#[derive(Debug, Default)]
struct StreamingHistory {
    objects: BTreeMap<ObjectId, ObjectLog>,
    entries: usize,
}

#[derive(Debug, Default)]
struct ObjectLog {
    /// `(completion time, resulting value)` of retained writes, time order.
    writes: VecDeque<(Time, i64)>,
    /// First read ever observed (initial-value anchor); never pruned.
    first_read: Option<(Time, i64)>,
}

impl StreamingHistory {
    fn record_write(&mut self, obj: ObjectId, at: Time, value: i64) {
        self.objects
            .entry(obj)
            .or_default()
            .writes
            .push_back((at, value));
        self.entries += 1;
    }

    fn record_read(&mut self, obj: ObjectId, at: Time, value: i64) {
        let log = self.objects.entry(obj).or_default();
        if log.first_read.is_none() {
            log.first_read = Some((at, value));
        }
    }

    /// Same contract as `LastWriteIndex::value_before`: the last write
    /// completing strictly before `at`, else the first read strictly before
    /// `at`, else `None`.
    fn value_before(&self, obj: ObjectId, at: Time) -> Option<i64> {
        let log = self.objects.get(&obj)?;
        let idx = log.writes.partition_point(|&(t, _)| t < at);
        if idx > 0 {
            return Some(log.writes[idx - 1].1);
        }
        match log.first_read {
            Some((t, v)) if t < at => Some(v),
            _ => None,
        }
    }

    /// Drops every write that can no longer be an answer: a write is dead
    /// once a *later* write also precedes the horizon, because all future
    /// queries happen at `at >= horizon`.
    fn prune(&mut self, horizon: Time) {
        for log in self.objects.values_mut() {
            while log.writes.len() >= 2 && log.writes[1].0 < horizon {
                log.writes.pop_front();
                self.entries -= 1;
            }
        }
    }
}

/// Lazy [`StartState`] view over the pruned history at one virtual time.
struct StreamStateBefore<'a> {
    history: &'a StreamingHistory,
    at: Time,
}

impl StartState for StreamStateBefore<'_> {
    fn value(&self, obj: ObjectId) -> i64 {
        self.history.value_before(obj, self.at).unwrap_or(0)
    }
}

/// A critical section currently open on some thread.
#[derive(Debug)]
struct OpenSection {
    lock: LockId,
    site: perfplay_trace::CodeSiteId,
    acquire_index: usize,
    enter_time: Time,
    depth: usize,
    reads: Vec<ObjectId>,
    writes: Vec<ObjectId>,
    accesses: Vec<MemAccess>,
    body_cost: Time,
    /// Assigned at the end of the chunk the acquire arrived in.
    id: Option<SectionId>,
}

/// Per-thread extraction state.
#[derive(Debug, Default)]
struct ThreadState {
    next_index: usize,
    last_time: Time,
    open: Vec<OpenSection>,
    exited: bool,
    /// Set after a stream gap: the next span may jump forward (events were
    /// lost), after which normal contiguity checking resumes.
    resync: bool,
}

/// One `(current, other-thread)` sequential search.
#[derive(Debug, Default, Clone, Copy)]
struct Search {
    /// Classifications performed so far (the unit the scan cap counts).
    scanned: usize,
    /// Index into the candidate list of the next candidate to consider.
    pos: usize,
    /// True once a TLCP ended the search or the cap was reached.
    done: bool,
}

/// A section still acting as the *first* element of future pairs.
#[derive(Debug)]
struct Current {
    thread: ThreadId,
    enter_time: Time,
    searches: BTreeMap<ThreadId, Search>,
}

/// Pairing state of one lock.
#[derive(Debug, Default)]
struct LockState {
    /// Delivered sections per thread, ascending id order — the candidate
    /// lists the sequential searches walk.
    candidates: BTreeMap<ThreadId, Vec<SectionId>>,
    /// Per `(lock, thread)`: ids of sections in creation (= id) order that
    /// have not been delivered yet, and the subset already closed. Sections
    /// are delivered strictly in id order so every search sees candidates in
    /// the order the batch engine would.
    delivery: BTreeMap<ThreadId, DeliveryQueue>,
    /// Live currents, by id.
    currents: BTreeMap<SectionId, Current>,
    /// Per thread `T`: currents whose search on `T` is still open — exactly
    /// the set a new candidate from `T` must be offered to. Keeping this
    /// per-thread (and dropping finished searches from it) makes delivery
    /// cost proportional to the classifications actually performed instead
    /// of the number of live currents.
    subscribers: BTreeMap<ThreadId, Vec<SectionId>>,
}

#[derive(Debug, Default)]
struct DeliveryQueue {
    order: VecDeque<SectionId>,
    closed: std::collections::BTreeSet<SectionId>,
}

/// PerfPlay's ULCP identification stage over a chunked event stream.
#[derive(Debug, Clone, Default)]
pub struct StreamingDetector {
    config: DetectorConfig,
}

struct Engine<S: UlcpSink> {
    config: DetectorConfig,
    num_threads: usize,
    threads: Vec<ThreadState>,
    sections: Vec<CriticalSection>,
    /// Whether `sections[i]` has been closed (filled in) yet.
    closed: Vec<bool>,
    history: StreamingHistory,
    locks: BTreeMap<LockId, LockState>,
    sink: S,
    breakdown: UlcpBreakdown,
    stats: StreamingStats,
    prev_window_end: Option<Time>,
    live_sections: usize,
    /// True during the end-of-stream drain (retires there are not counted
    /// as early).
    ending: bool,
}

impl StreamingDetector {
    /// Creates a streaming detector with the given configuration. With
    /// `config.parallel` set, [`analyze`](Self::analyze) (and the
    /// `analyze_trace` wrapper) delegate to
    /// [`ParallelStreamingDetector`](crate::ParallelStreamingDetector); the
    /// sink-generic entry points return [`StreamError::Config`] instead
    /// because they cannot require `S: Send`.
    pub fn new(config: DetectorConfig) -> Self {
        StreamingDetector { config }
    }

    /// Consumes the source to exhaustion and returns the analysis, which is
    /// bit-identical to [`Detector::analyze`](crate::Detector::analyze) over
    /// the same events.
    ///
    /// With `DetectorConfig::parallel` set this delegates to
    /// [`ParallelStreamingDetector`](crate::ParallelStreamingDetector) with
    /// one worker per available core — same output, bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates source errors and rejects streams that violate the chunk
    /// contract or per-thread timestamp monotonicity.
    pub fn analyze<Src: EventSource>(
        &self,
        source: &mut Src,
    ) -> Result<StreamingAnalysis, StreamError> {
        if self.config.parallel {
            return crate::ParallelStreamingDetector::new(self.config).analyze(source);
        }
        let result = self.analyze_with(source, CollectPairs::default())?;
        Ok(StreamingAnalysis {
            analysis: UlcpAnalysis {
                sections: result.sections,
                ulcps: result.sink.ulcps,
                edges: result.sink.edges,
                breakdown: result.breakdown,
            },
            stats: result.stats,
        })
    }

    /// Consumes the source to exhaustion, emitting every classified pair
    /// through the caller's sink. With an aggregating sink the resident
    /// state — pairing cursors, pruned history *and* output — stays bounded
    /// by the chunk size and the code-site count, never by the pair count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`analyze`](Self::analyze). Additionally returns
    /// [`StreamError::Config`] when `DetectorConfig::parallel` is set: this
    /// entry point cannot require `S: Send`, so a parallel run with a custom
    /// sink must go through
    /// [`ParallelStreamingDetector::analyze_with`](crate::ParallelStreamingDetector::analyze_with).
    pub fn analyze_with<Src: EventSource, S: UlcpSink>(
        &self,
        source: &mut Src,
        sink: S,
    ) -> Result<StreamingSinkAnalysis<S>, StreamError> {
        if self.config.parallel {
            return Err(StreamError::Config(
                "DetectorConfig::parallel requires a Send sink; use \
                 ParallelStreamingDetector::analyze_with (or clear `parallel` \
                 for the sequential engine)"
                    .into(),
            ));
        }
        let mut engine = Engine::new(self.config, source.num_threads(), sink);
        while let Some(item) = source.next_item()? {
            match item {
                StreamItem::Chunk(chunk) => engine.ingest(chunk)?,
                StreamItem::Gap(gap) => engine.note_gap(&gap),
            }
        }
        engine.finish()
    }

    /// Convenience wrapper: streams an in-memory trace through a
    /// [`TraceChunks`] adapter with the given chunk size.
    ///
    /// # Errors
    ///
    /// Same conditions as [`analyze`](Self::analyze).
    pub fn analyze_trace(
        &self,
        trace: &Trace,
        chunk_events: usize,
    ) -> Result<StreamingAnalysis, StreamError> {
        self.analyze(&mut TraceChunks::new(trace, chunk_events))
    }

    /// Convenience wrapper: [`analyze_with`](Self::analyze_with) over a
    /// [`TraceChunks`] adapter with the given chunk size.
    ///
    /// # Errors
    ///
    /// Same conditions as [`analyze`](Self::analyze).
    pub fn analyze_trace_with<S: UlcpSink>(
        &self,
        trace: &Trace,
        chunk_events: usize,
        sink: S,
    ) -> Result<StreamingSinkAnalysis<S>, StreamError> {
        self.analyze_with(&mut TraceChunks::new(trace, chunk_events), sink)
    }
}

impl<S: UlcpSink> Engine<S> {
    fn new(config: DetectorConfig, num_threads: usize, sink: S) -> Self {
        Engine {
            config,
            num_threads,
            threads: (0..num_threads).map(|_| ThreadState::default()).collect(),
            sections: Vec::new(),
            closed: Vec::new(),
            history: StreamingHistory::default(),
            locks: BTreeMap::new(),
            sink,
            breakdown: UlcpBreakdown::default(),
            stats: StreamingStats::default(),
            prev_window_end: None,
            live_sections: 0,
            ending: false,
        }
    }

    fn ingest(&mut self, chunk: TraceChunk) -> Result<(), StreamError> {
        if let Some(prev) = self.prev_window_end {
            if chunk.window_end <= prev && chunk.num_events() > 0 {
                return Err(StreamError::Format(format!(
                    "chunk {} window {} does not advance past {}",
                    chunk.seq, chunk.window_end, prev
                )));
            }
        }
        self.stats.chunks += 1;
        self.stats.peak_chunk_events = self.stats.peak_chunk_events.max(chunk.num_events());

        // Phase A: per-thread extraction. Memory events are collected in
        // thread-major order so the stable time sort below reproduces the
        // global order `LastWriteIndex::build` uses for ties.
        let mut chunk_mem: Vec<(Time, ObjectId, i64, bool)> = Vec::new();
        let mut new_acquires: Vec<(Time, ThreadId, usize)> = Vec::new();
        let mut closed_now: Vec<(SectionId, ClosedSection)> = Vec::new();
        let mut closed_unassigned: Vec<(ThreadId, usize, ClosedSection)> = Vec::new();

        let mut prev_thread: Option<ThreadId> = None;
        for span in &chunk.spans {
            if prev_thread.is_some_and(|p| span.thread <= p) {
                return Err(StreamError::Format(format!(
                    "chunk {} spans not in ascending thread order",
                    chunk.seq
                )));
            }
            prev_thread = Some(span.thread);
            let ti = span.thread.index();
            if ti >= self.num_threads {
                return Err(StreamError::Format(format!(
                    "span for out-of-range thread {}",
                    span.thread
                )));
            }
            if self.threads[ti].resync {
                // Events of this thread may have been lost in a gap; accept a
                // forward jump once and resume strict checking after it.
                if span.base_index < self.threads[ti].next_index {
                    return Err(StreamError::Format(format!(
                        "span for {} rewinds across a gap: base {} but {} events seen",
                        span.thread, span.base_index, self.threads[ti].next_index
                    )));
                }
                self.threads[ti].next_index = span.base_index;
                self.threads[ti].resync = false;
            } else if span.base_index != self.threads[ti].next_index {
                return Err(StreamError::Format(format!(
                    "non-contiguous span for {}: base {} but {} events seen",
                    span.thread, span.base_index, self.threads[ti].next_index
                )));
            }
            for (offset, te) in span.events.iter().enumerate() {
                let idx = span.base_index + offset;
                let state = &mut self.threads[ti];
                if te.at < state.last_time {
                    return Err(StreamError::Trace(TraceError::NonMonotonicTime {
                        thread: span.thread,
                        event_index: idx,
                    }));
                }
                if te.at > chunk.window_end || self.prev_window_end.is_some_and(|p| te.at <= p) {
                    return Err(StreamError::Format(format!(
                        "event {idx} of {} at {} is outside chunk {}'s window",
                        span.thread, te.at, chunk.seq
                    )));
                }
                state.last_time = te.at;
                self.stats.events += 1;
                match &te.event {
                    Event::LockAcquire { lock, site } => {
                        self.breakdown.lock_acquisitions += 1;
                        state.open.push(OpenSection {
                            lock: *lock,
                            site: *site,
                            acquire_index: idx,
                            enter_time: te.at,
                            depth: state.open.len(),
                            reads: Vec::new(),
                            writes: Vec::new(),
                            accesses: Vec::new(),
                            body_cost: Time::ZERO,
                            id: None,
                        });
                        self.live_sections += 1;
                        new_acquires.push((te.at, span.thread, idx));
                    }
                    Event::LockRelease { lock } => {
                        if let Some(pos) = state.open.iter().rposition(|o| o.lock == *lock) {
                            let open = state.open.remove(pos);
                            let closed = ClosedSection {
                                thread: span.thread,
                                release_index: idx,
                                exit_time: te.at,
                                open,
                            };
                            match closed.open.id {
                                Some(id) => closed_now.push((id, closed)),
                                None => closed_unassigned.push((
                                    span.thread,
                                    closed.open.acquire_index,
                                    closed,
                                )),
                            }
                        }
                    }
                    Event::Read { obj, value } => {
                        for o in &mut state.open {
                            o.reads.push(*obj);
                            o.accesses.push(MemAccess::Read(*obj));
                        }
                        if self.config.use_reversed_replay {
                            chunk_mem.push((te.at, *obj, *value, false));
                        }
                    }
                    Event::Write { obj, op, value } => {
                        for o in &mut state.open {
                            o.writes.push(*obj);
                            o.accesses.push(MemAccess::Write(*obj, *op));
                        }
                        if self.config.use_reversed_replay {
                            chunk_mem.push((te.at, *obj, *value, true));
                        }
                    }
                    Event::Compute { cost } => {
                        for o in &mut state.open {
                            o.body_cost += *cost;
                        }
                    }
                    Event::SkipRegion { saved_cost, .. } => {
                        for o in &mut state.open {
                            o.body_cost += *saved_cost;
                        }
                    }
                    Event::ThreadExit => state.exited = true,
                    _ => {}
                }
            }
            self.threads[ti].next_index += span.events.len();
        }

        // Phase B.1: extend the shadow-memory history. Sorting only within
        // the chunk is sound because ties never straddle chunk boundaries.
        chunk_mem.sort_by_key(|&(at, ..)| at);
        for (at, obj, value, is_write) in chunk_mem {
            if is_write {
                self.history.record_write(obj, at, value);
            } else {
                self.history.record_read(obj, at, value);
            }
        }

        // Phase B.2: assign section ids. All acquires with `at <=
        // window_end` have arrived, and later chunks' acquires are strictly
        // later, so sorting this chunk's acquires by `(at, thread,
        // acquire_index)` extends the exact global id order
        // `extract_critical_sections` produces.
        new_acquires.sort_unstable();
        let mut closed_lookup: BTreeMap<(ThreadId, usize), ClosedSection> = closed_unassigned
            .into_iter()
            .map(|(thread, acq, closed)| ((thread, acq), closed))
            .collect();
        for (at, thread, acquire_index) in new_acquires {
            let id = SectionId::new(self.sections.len() as u32);
            if let Some(mut closed) = closed_lookup.remove(&(thread, acquire_index)) {
                closed.open.id = Some(id);
                self.push_placeholder(&closed.open, thread);
                closed_now.push((id, closed));
            } else {
                let state = &mut self.threads[thread.index()];
                let open = state
                    .open
                    .iter_mut()
                    .find(|o| o.acquire_index == acquire_index)
                    .expect("acquire recorded this chunk is open or closed this chunk");
                open.id = Some(id);
                let placeholder = OpenSection {
                    lock: open.lock,
                    site: open.site,
                    acquire_index,
                    enter_time: at,
                    depth: open.depth,
                    reads: Vec::new(),
                    writes: Vec::new(),
                    accesses: Vec::new(),
                    body_cost: Time::ZERO,
                    id: Some(id),
                };
                self.push_placeholder(&placeholder, thread);
            }
        }

        // Phase B.3: deliver closed sections in id order and run the pairing.
        closed_now.sort_unstable_by_key(|(id, _)| *id);
        for (id, closed) in closed_now {
            self.close_section(id, closed);
        }

        // Phase B.4: retire currents no later section can change, advance
        // the history horizon, and prune.
        self.retire_and_prune(chunk.window_end, false);

        self.stats.peak_live_sections = self.stats.peak_live_sections.max(self.live_sections);
        self.stats.peak_history_entries = self.stats.peak_history_entries.max(self.history.entries);
        self.stats.peak_live_pairs = self.stats.peak_live_pairs.max(self.sink.resident_entries());
        self.prev_window_end = Some(chunk.window_end);
        Ok(())
    }

    /// Notes a gap a recovering source reported: the analysis stays sound on
    /// the events actually seen — detection over the surviving chunks is
    /// exactly detection over the trace with the lost events removed — but
    /// per-thread contiguity must tolerate one forward jump per thread.
    fn note_gap(&mut self, gap: &StreamGap) {
        self.stats.gaps += 1;
        self.stats.events_lost += gap.events_lost;
        for state in &mut self.threads {
            state.resync = true;
        }
    }

    fn push_placeholder(&mut self, open: &OpenSection, thread: ThreadId) {
        let id = open.id.expect("placeholder has an id");
        debug_assert_eq!(id.index(), self.sections.len());
        self.sections.push(CriticalSection {
            id,
            thread,
            lock: open.lock,
            site: open.site,
            acquire_index: open.acquire_index,
            release_index: 0,
            enter_time: open.enter_time,
            exit_time: open.enter_time,
            reads: Footprint::new(),
            writes: Footprint::new(),
            accesses: Vec::new(),
            body_cost: Time::ZERO,
            depth: open.depth,
        });
        self.closed.push(false);
        self.locks
            .entry(open.lock)
            .or_default()
            .delivery
            .entry(thread)
            .or_default()
            .order
            .push_back(id);
    }

    /// Fills the output section and queues it for in-id-order delivery to
    /// the pairing stage.
    fn close_section(&mut self, id: SectionId, closed: ClosedSection) {
        let section = &mut self.sections[id.index()];
        section.release_index = closed.release_index;
        section.exit_time = closed.exit_time;
        section.reads = Footprint::from_unsorted(closed.open.reads);
        section.writes = Footprint::from_unsorted(closed.open.writes);
        section.accesses = closed.open.accesses;
        section.body_cost = closed.open.body_cost;
        self.closed[id.index()] = true;
        self.stats.sections += 1;

        let lock = section.lock;
        let thread = closed.thread;
        let queue = self
            .locks
            .entry(lock)
            .or_default()
            .delivery
            .entry(thread)
            .or_default();
        queue.closed.insert(id);
        // Deliver the head of the creation-order queue while it is closed,
        // so candidates reach the searches strictly in id order even when
        // re-entrant nesting closes sections out of order.
        let mut deliverable = Vec::new();
        while let Some(&front) = queue.order.front() {
            if queue.closed.remove(&front) {
                queue.order.pop_front();
                deliverable.push(front);
            } else {
                break;
            }
        }
        for sid in deliverable {
            self.deliver(lock, thread, sid);
        }
    }

    /// Runs the pairing for one newly delivered section: first as a fresh
    /// *current* scanning already-delivered later candidates, then as a
    /// candidate offered to every live earlier current.
    ///
    /// Per `(current, other-thread)` search the candidates are consumed in
    /// id order with the invariant that an unfinished search has always
    /// consumed the whole candidate list (`pos == list.len()`), so each new
    /// delivery is exactly the next candidate the batch engine would
    /// classify.
    fn deliver(&mut self, lock: LockId, thread: ThreadId, id: SectionId) {
        self.stats.peak_live_sections = self.stats.peak_live_sections.max(self.live_sections);
        // Split the engine into disjoint field borrows so the hot pairing
        // loops resolve the lock state and result sinks once, not per pair.
        let Engine {
            config,
            num_threads,
            sections,
            history,
            locks,
            sink: out,
            breakdown,
            stats,
            live_sections,
            ending,
            ..
        } = self;
        let num_threads = *num_threads;
        let sections: &[CriticalSection] = sections;
        let history: &StreamingHistory = history;
        let mut sink = PairEmitter {
            config: *config,
            lock,
            sections,
            history,
            out,
            breakdown,
        };
        let lock_state = locks.get_mut(&lock).expect("lock state exists");
        let enter_time = sections[id.index()].enter_time;

        // The new current scans candidates already delivered. (Under lock
        // mutual exclusion every already-delivered same-lock section has a
        // smaller id, so this classifies nothing — but ties and re-entrant
        // nesting can produce larger-id candidates, and the batch engine
        // scans those too.)
        let mut current = Current {
            thread,
            enter_time,
            searches: BTreeMap::new(),
        };
        for (&other, list) in &lock_state.candidates {
            if other == thread {
                continue;
            }
            // The search consumes the whole existing list; only ids past
            // `id` are classified (the batch filter `candidate.id >
            // current.id`).
            let mut search = Search {
                scanned: 0,
                pos: list.len(),
                done: false,
            };
            let start = list.partition_point(|&c| c <= id);
            for &candidate in &list[start..] {
                if search.done {
                    break;
                }
                if config
                    .max_scan_per_thread
                    .is_some_and(|cap| search.scanned >= cap)
                {
                    search.done = true;
                    break;
                }
                sink.classify(id, candidate, &mut search);
            }
            current.searches.insert(other, search);
        }

        // Keep the current live only while some search can still advance;
        // otherwise retire it on the spot. Live currents subscribe to every
        // thread whose search is still open, so future candidates reach
        // exactly the searches that want them.
        let complete = current.searches.len() == num_threads.saturating_sub(1)
            && current.searches.values().all(|s| s.done);
        if complete {
            *live_sections -= 1;
            if !*ending {
                stats.retired_before_end += 1;
            }
        } else {
            for u in (0..num_threads as u32).map(ThreadId::new) {
                if u != thread && current.searches.get(&u).is_none_or(|s| !s.done) {
                    lock_state.subscribers.entry(u).or_default().push(id);
                }
            }
            lock_state.currents.insert(id, current);
        }

        // Become a candidate: every current subscribed to this thread
        // classifies the new section next. Finished searches drop out of
        // the subscriber list, so delivery costs what the classifications
        // cost — not the number of live currents.
        lock_state.candidates.entry(thread).or_default().push(id);
        let pos = lock_state.candidates[&thread].len() - 1;
        let subs = std::mem::take(lock_state.subscribers.entry(thread).or_default());
        let mut keep = Vec::with_capacity(subs.len());
        for first in subs {
            let Some(current) = lock_state.currents.get_mut(&first) else {
                continue; // retired by the exited-thread sweep; stale entry
            };
            let search = current.searches.entry(thread).or_default();
            if search.done {
                continue; // finished elsewhere; drop the subscription
            }
            debug_assert_eq!(search.pos, pos, "unfinished search lags the candidate list");
            search.pos += 1;
            if id <= first {
                // Not a candidate for this current (the batch engine's
                // `candidate.id > current.id` filter); consumed unclassified.
                keep.push(first);
                continue;
            }
            if config
                .max_scan_per_thread
                .is_some_and(|cap| search.scanned >= cap)
            {
                search.done = true;
            } else {
                sink.classify(first, id, search);
            }
            if !search.done {
                keep.push(first);
                continue;
            }
            // This search just finished; retire the current if it was the
            // last one still open.
            let retire = current.searches.len() == num_threads.saturating_sub(1)
                && current.searches.values().all(|s| s.done);
            if retire {
                lock_state.currents.remove(&first);
                *live_sections -= 1;
                if !*ending {
                    stats.retired_before_end += 1;
                }
            }
        }
        let slot = lock_state.subscribers.entry(thread).or_default();
        debug_assert!(slot.is_empty(), "no subscriptions can appear mid-delivery");
        *slot = keep;
    }

    /// Retires currents whose outcome no later section can change, then
    /// advances the history horizon to the earliest time any surviving
    /// pairing state can still query and prunes the write logs.
    fn retire_and_prune(&mut self, window_end: Time, at_end: bool) {
        let exited: Vec<bool> = self.threads.iter().map(|t| t.exited || at_end).collect();
        for lock_state in self.locks.values_mut() {
            let delivery = &lock_state.delivery;
            lock_state.currents.retain(|_, current| {
                let retire = (0..exited.len()).all(|u| {
                    let uid = ThreadId::new(u as u32);
                    if uid == current.thread {
                        return true;
                    }
                    if current.searches.get(&uid).is_some_and(|s| s.done) {
                        return true;
                    }
                    // The thread can produce no further candidates on this
                    // lock: it has exited and nothing awaits delivery.
                    exited[u] && delivery.get(&uid).is_none_or(|q| q.order.is_empty())
                });
                if retire {
                    self.live_sections -= 1;
                    if !at_end {
                        self.stats.retired_before_end += 1;
                    }
                }
                !retire
            });
        }

        // Horizon: the earliest enter time a future classification can query
        // — any live current, any open section, or any section awaiting
        // delivery (a future current).
        let mut horizon: Option<Time> = None;
        let mut consider = |t: Time| {
            horizon = Some(horizon.map_or(t, |h: Time| h.min(t)));
        };
        for lock_state in self.locks.values() {
            for current in lock_state.currents.values() {
                consider(current.enter_time);
            }
            for queue in lock_state.delivery.values() {
                for &id in &queue.order {
                    consider(self.sections[id.index()].enter_time);
                }
            }
        }
        for thread in &self.threads {
            for open in &thread.open {
                consider(open.enter_time);
            }
        }
        let horizon =
            horizon.unwrap_or_else(|| Time::from_nanos(window_end.as_nanos().saturating_add(1)));
        self.history.prune(horizon);
    }

    fn finish(mut self) -> Result<StreamingSinkAnalysis<S>, StreamError> {
        self.ending = true;
        // Flush sections still awaiting delivery: their same-(lock, thread)
        // predecessors in the creation queues never closed, so those
        // blockers will never deliver. Deliver the closed remainder in id
        // order, exactly as the batch engine pairs them.
        let mut leftovers: Vec<(LockId, ThreadId, SectionId)> = Vec::new();
        for (&lock, lock_state) in &mut self.locks {
            for (&thread, queue) in &mut lock_state.delivery {
                queue.order.retain(|id| {
                    if queue.closed.remove(id) {
                        leftovers.push((lock, thread, *id));
                        false
                    } else {
                        false // never closed: drop from the queue too
                    }
                });
            }
        }
        leftovers.sort_unstable_by_key(|&(_, _, id)| id);
        for (lock, thread, id) in leftovers {
            self.deliver(lock, thread, id);
        }
        self.retire_and_prune(Time::MAX, true);
        self.stats.peak_live_sections = self.stats.peak_live_sections.max(self.live_sections);
        self.stats.peak_live_pairs = self.stats.peak_live_pairs.max(self.sink.resident_entries());

        // Drop sections that never closed: the batch extractor only emits
        // completed sections, so ids must be compacted to match (the sink's
        // remap hook renumbers whatever pair ids it retained).
        if self.closed.iter().any(|c| !c) {
            self.compact_unclosed();
        }

        // The batch engines emit pairs grouped by ascending lock, then by
        // the first section's timing index, then by the candidate thread,
        // then by the candidate's timing index; this engine emits in
        // delivery order. Sealing lets order-preserving sinks reproduce the
        // canonical order.
        let sections = std::mem::take(&mut self.sections);
        self.sink.seal(&sections);

        Ok(StreamingSinkAnalysis {
            sections,
            breakdown: self.breakdown,
            sink: self.sink,
            stats: self.stats,
        })
    }

    /// Removes placeholder sections whose release never arrived and renumbers
    /// the survivors densely. Relative order is preserved, so every recorded
    /// pair stays valid under the monotone remapping.
    fn compact_unclosed(&mut self) {
        let mut remap: Vec<Option<SectionId>> = Vec::with_capacity(self.sections.len());
        let mut kept = 0u32;
        for &closed in &self.closed {
            if closed {
                remap.push(Some(SectionId::new(kept)));
                kept += 1;
            } else {
                remap.push(None);
            }
        }
        self.sections.retain(|s| remap[s.id.index()].is_some());
        for s in &mut self.sections {
            s.id = remap[s.id.index()].expect("kept section has a mapping");
        }
        self.sink.remap_sections(&remap);
        self.closed.retain(|&c| c);
    }
}

/// The classification context of one delivery: borrows the immutable inputs
/// (sections, pruned history) and the output sink once, so each pair costs
/// one `classify_pair` plus one sink emission.
struct PairEmitter<'a, S: UlcpSink> {
    config: DetectorConfig,
    lock: LockId,
    sections: &'a [CriticalSection],
    history: &'a StreamingHistory,
    out: &'a mut S,
    breakdown: &'a mut UlcpBreakdown,
}

impl<S: UlcpSink> PairEmitter<'_, S> {
    /// Classifies one `(first, second)` pair exactly as the batch engine
    /// does, emits the outcome, and updates the search's cap/TLCP state.
    fn classify(&mut self, first: SectionId, second: SectionId, search: &mut Search) {
        let state = StreamStateBefore {
            history: self.history,
            at: self.sections[first.index()].enter_time,
        };
        let ctx = SectionCtx {
            first: &self.sections[first.index()],
            second: &self.sections[second.index()],
        };
        let class = classify_pair(
            ctx.first,
            ctx.second,
            &state,
            self.config.use_reversed_replay,
        );
        search.scanned += 1;
        if self
            .config
            .max_scan_per_thread
            .is_some_and(|cap| search.scanned >= cap)
        {
            search.done = true;
        }
        match class {
            PairClass::Tlcp => {
                search.done = true;
                self.out.emit_edge(
                    CausalEdge {
                        from: first,
                        to: second,
                        lock: self.lock,
                    },
                    &ctx,
                );
                self.breakdown.tlcp_edges += 1;
            }
            PairClass::Ulcp(kind) => {
                self.breakdown.add(kind);
                self.out.emit(
                    Ulcp {
                        first,
                        second,
                        lock: self.lock,
                        kind,
                    },
                    &ctx,
                );
            }
        }
    }
}

/// A section whose release event has arrived.
#[derive(Debug)]
struct ClosedSection {
    thread: ThreadId,
    release_index: usize,
    exit_time: Time,
    open: OpenSection,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Detector;
    use perfplay_program::ProgramBuilder;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;

    fn record(build: impl FnOnce(&mut ProgramBuilder)) -> Trace {
        let mut b = ProgramBuilder::new("stream-test");
        build(&mut b);
        Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace
    }

    fn assert_identical(trace: &Trace, config: DetectorConfig, chunk_events: usize) {
        let batch = Detector::new(config).analyze(trace);
        let streamed = StreamingDetector::new(config)
            .analyze_trace(trace, chunk_events)
            .unwrap();
        assert_eq!(batch.sections, streamed.analysis.sections);
        assert_eq!(batch.ulcps, streamed.analysis.ulcps);
        assert_eq!(batch.edges, streamed.analysis.edges);
        assert_eq!(batch.breakdown, streamed.analysis.breakdown);
    }

    fn mixed_trace() -> Trace {
        record(|b| {
            let locks: Vec<_> = (0..3).map(|i| b.lock(format!("l{i}"))).collect();
            let objs: Vec<_> = (0..5)
                .map(|i| b.shared(format!("o{i}"), i as i64))
                .collect();
            let site = b.site("s.c", "f", 1);
            for t in 0..3 {
                let locks = locks.clone();
                let objs = objs.clone();
                b.thread(format!("t{t}"), |tb| {
                    for k in 0..6usize {
                        let lock = locks[k % locks.len()];
                        let obj = objs[(t + k) % objs.len()];
                        tb.locked(lock, site, |cs| match k % 4 {
                            0 => {
                                cs.read(obj);
                            }
                            1 => {
                                cs.write_set(obj, 1);
                            }
                            2 => {
                                cs.write_add(obj, 1);
                            }
                            _ => {
                                cs.compute_ns(10);
                            }
                        });
                        tb.compute_ns(25);
                    }
                });
            }
        })
    }

    #[test]
    fn streaming_matches_batch_across_chunk_sizes() {
        let trace = mixed_trace();
        for chunk_events in [1, 2, 3, 7, 16, 64, 100_000] {
            assert_identical(&trace, DetectorConfig::default(), chunk_events);
        }
    }

    #[test]
    fn streaming_matches_batch_with_scan_cap_and_ablation() {
        let trace = mixed_trace();
        for config in [
            DetectorConfig {
                max_scan_per_thread: Some(2),
                ..DetectorConfig::default()
            },
            DetectorConfig {
                use_reversed_replay: false,
                ..DetectorConfig::default()
            },
            DetectorConfig {
                max_scan_per_thread: Some(1),
                use_reversed_replay: false,
                ..DetectorConfig::default()
            },
        ] {
            for chunk_events in [1, 5, 33] {
                assert_identical(&trace, config, chunk_events);
            }
        }
    }

    #[test]
    fn benign_pairs_survive_streaming_state_reconstruction() {
        // The benign check queries shadow memory at the first section's
        // enter time — long before the pair is classified. This exercises
        // the pruned history answering a strictly-in-the-past query.
        let trace = record(|b| {
            let lock = b.lock("m");
            let flag = b.shared("done", 0);
            let site = b.site("bw.c", "set_done", 1);
            for i in 0..2 {
                b.thread(format!("t{i}"), |t| {
                    t.compute_ns(10 + i as u64 * 500);
                    t.locked(lock, site, |cs| {
                        cs.write_set(flag, 1);
                    });
                    t.compute_ns(300);
                });
            }
        });
        for chunk_events in [1, 2, 8] {
            assert_identical(&trace, DetectorConfig::default(), chunk_events);
        }
        let streamed = StreamingDetector::default()
            .analyze_trace(&trace, 2)
            .unwrap();
        assert_eq!(streamed.analysis.breakdown.benign, 1);
    }

    #[test]
    fn resident_state_is_bounded_with_a_scan_cap() {
        let trace = record(|b| {
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("rr.c", "reader", 1);
            for i in 0..2 {
                b.thread(format!("t{i}"), |t| {
                    t.loop_n(60, |l| {
                        l.locked(lock, site, |cs| {
                            cs.read(x);
                            cs.compute_ns(100);
                        });
                        l.compute_ns(50);
                    });
                });
            }
        });
        let config = DetectorConfig {
            max_scan_per_thread: Some(2),
            ..DetectorConfig::default()
        };
        let streamed = StreamingDetector::new(config)
            .analyze_trace(&trace, 16)
            .unwrap();
        let total = streamed.analysis.sections.len();
        assert_eq!(total, 120);
        assert!(
            streamed.stats.peak_live_sections < total / 2,
            "peak live {} should be far below {total}",
            streamed.stats.peak_live_sections
        );
        assert!(streamed.stats.retired_before_end > 0);
        assert_eq!(streamed.stats.events, trace.num_events());
        assert_eq!(streamed.stats.sections, total);
        // And the result still matches the batch engine exactly.
        assert_identical(&trace, config, 16);
    }

    #[test]
    fn history_prunes_old_writes() {
        let trace = record(|b| {
            let lock = b.lock("m");
            let x = b.shared("x", 0);
            let site = b.site("w.c", "writer", 1);
            b.thread("t0", |t| {
                t.loop_n(50, |l| {
                    l.locked(lock, site, |cs| {
                        cs.write_add(x, 1);
                    });
                    l.compute_ns(40);
                });
            });
        });
        let streamed = StreamingDetector::default()
            .analyze_trace(&trace, 8)
            .unwrap();
        // Single thread: no pairs, sections retire immediately, and the
        // write log never accumulates the full 50-write history.
        assert!(streamed.stats.peak_history_entries < 20);
        assert!(streamed.analysis.ulcps.is_empty());
    }

    #[test]
    fn malformed_stream_is_rejected() {
        let trace = mixed_trace();
        // Duplicate the first chunk: base indices no longer line up.
        let mut source = TraceChunks::new(&trace, 8);
        let first = source.next_chunk().unwrap().unwrap();
        let mut engine = Engine::new(
            DetectorConfig::default(),
            trace.num_threads(),
            CollectPairs::default(),
        );
        engine.ingest(first.clone()).unwrap();
        let err = engine.ingest(first).unwrap_err();
        assert!(matches!(err, StreamError::Format(_)));
    }

    #[test]
    fn non_monotonic_thread_times_are_reported() {
        let mut trace = mixed_trace();
        let n = trace.threads[1].events.len();
        trace.threads[1].events[n - 2].at = Time::ZERO;
        let err = StreamingDetector::default()
            .analyze_trace(&trace, 1_000_000)
            .unwrap_err();
        match err {
            StreamError::Trace(TraceError::NonMonotonicTime { thread, .. }) => {
                assert_eq!(thread, ThreadId::new(1));
            }
            other => panic!("expected NonMonotonicTime, got {other:?}"),
        }
    }
}
