//! Compact single-pass detection output: everything the downstream pipeline
//! stages need, without the pair list.
//!
//! The transformation (RULES 1–4) consumes three things from a detection run:
//! the section table, the causal-edge list (RULE 1's topology) and the benign
//! pairs (Theorem 1's race warnings). The report layer consumes the breakdown
//! and a per-site aggregate table. None of those is O(pairs): on the 12M-event
//! acceptance workload the edge and benign lists hold ~47k entries and the
//! aggregate table ~6k rows, against 153M classified pairs. A
//! [`PlanAggregator`] sink collects exactly this set during the scan, so one
//! detection pass feeds transform, replay admission *and* the ranked report —
//! the [`DetectionPlan`] — with no materialized pair vector anywhere.

use perfplay_trace::{CriticalSection, SectionId, Trace};
use serde::{Deserialize, Serialize};

use crate::kinds::UlcpKind;
use crate::pairing::{CausalEdge, Detector, Ulcp, UlcpBreakdown};
use crate::sink::{GainSource, SectionCtx, SinkAnalysis, SiteAggregates, SiteAggregator, UlcpSink};
use crate::streaming::StreamingSinkAnalysis;

/// The compact output of one detection pass: the section table, the
/// per-category breakdown, the causal edges and benign pairs (the only
/// individual pairs any later stage needs), and the per-site aggregate table.
///
/// Memory is O(sections + edges + benign + code sites) — the 153M-pair
/// vector of the materializing path never exists. Built by running any
/// detection engine into a [`PlanAggregator`] sink (see
/// [`Detector::plan`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionPlan {
    /// Every dynamic critical section, indexed by [`SectionId::index`].
    pub sections: Vec<CriticalSection>,
    /// Per-category pair counts (one Table 1 row).
    pub breakdown: UlcpBreakdown,
    /// All causal edges (TLCPs), in the canonical
    /// `(lock, from, to-thread, to)` order — RULE 1's topology input.
    pub edges: Vec<CausalEdge>,
    /// All benign ULCPs, in the canonical order — Theorem 1's race-warning
    /// input.
    pub benign: Vec<Ulcp>,
    /// Per-(site, site, kind) aggregate rows — the report layer's fusion
    /// seeds.
    pub aggregates: SiteAggregates,
}

/// Errors found validating a [`DetectionPlan`] of untrusted provenance
/// (e.g. deserialized from disk) before the pipeline consumes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// `sections[i].id != i`: the section table is not densely numbered.
    MisnumberedSection {
        /// Index into [`DetectionPlan::sections`].
        index: usize,
    },
    /// An edge or benign pair references a section id outside the table.
    DanglingSection {
        /// The out-of-range section id.
        id: SectionId,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::MisnumberedSection { index } => {
                write!(f, "plan section at index {index} is misnumbered")
            }
            PlanError::DanglingSection { id } => {
                write!(f, "plan references section {id:?} outside the table")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl DetectionPlan {
    /// Assembles a plan from a batch-engine run into a [`PlanAggregator`].
    pub fn from_batch<G: GainSource>(analysis: SinkAnalysis<PlanAggregator<G>>) -> Self {
        let SinkAnalysis {
            sections,
            breakdown,
            sink,
        } = analysis;
        sink.into_plan(sections, breakdown)
    }

    /// Assembles a plan from a streaming-engine run into a
    /// [`PlanAggregator`], returning the run's resident-state statistics
    /// alongside.
    pub fn from_streaming<G: GainSource>(
        analysis: StreamingSinkAnalysis<PlanAggregator<G>>,
    ) -> (Self, crate::StreamingStats) {
        let StreamingSinkAnalysis {
            sections,
            breakdown,
            sink,
            stats,
        } = analysis;
        (sink.into_plan(sections, breakdown), stats)
    }

    /// Returns the critical section for an id.
    pub fn section(&self, id: SectionId) -> &CriticalSection {
        &self.sections[id.index()]
    }

    /// Checks the internal references of a plan of untrusted provenance:
    /// every section id is dense, and every edge and benign pair points
    /// inside the section table. Engine-built plans satisfy this by
    /// construction; deserialized plans must be validated before
    /// [`section`](Self::section) (or any consumer that indexes the table)
    /// can be called without risking a panic.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), PlanError> {
        for (index, section) in self.sections.iter().enumerate() {
            if section.id.index() != index {
                return Err(PlanError::MisnumberedSection { index });
            }
        }
        let check = |id: SectionId| {
            if id.index() < self.sections.len() {
                Ok(())
            } else {
                Err(PlanError::DanglingSection { id })
            }
        };
        for edge in &self.edges {
            check(edge.from)?;
            check(edge.to)?;
        }
        for pair in &self.benign {
            check(pair.first)?;
            check(pair.second)?;
        }
        Ok(())
    }

    /// Entries the plan holds beyond the section table: aggregate rows plus
    /// the retained edge and benign pairs. The number every BENCH artifact
    /// reports as `peak_live_pairs` for the single-pass pipeline.
    pub fn resident_entries(&self) -> usize {
        self.aggregates.len() + self.edges.len() + self.benign.len()
    }
}

impl Detector {
    /// One-pass plan detection: identifies every pair but retains only what
    /// the downstream pipeline needs (see [`DetectionPlan`]), accumulating
    /// per-site gains with the given detection-time [`GainSource`].
    pub fn plan<G: GainSource + Clone + Send + Sync>(
        &self,
        trace: &Trace,
        gain: G,
    ) -> DetectionPlan {
        DetectionPlan::from_batch(self.analyze_with(trace, PlanAggregator::new(gain)))
    }
}

/// The single-pass pipeline sink: a [`SiteAggregator`] that additionally
/// retains the causal edges and benign pairs — the only individual pairs the
/// transformation needs — restoring the canonical order at
/// [`seal`](UlcpSink::seal) exactly as [`CollectPairs`](crate::CollectPairs)
/// does for the full lists.
#[derive(Debug, Clone, Default)]
pub struct PlanAggregator<G: GainSource> {
    aggregator: SiteAggregator<G>,
    edges: Vec<CausalEdge>,
    benign: Vec<Ulcp>,
}

impl<G: GainSource> PlanAggregator<G> {
    /// Creates a plan sink accumulating gains from the given source.
    pub fn new(gain: G) -> Self {
        PlanAggregator {
            aggregator: SiteAggregator::new(gain),
            edges: Vec::new(),
            benign: Vec::new(),
        }
    }

    /// Consumes the sink into a [`DetectionPlan`] together with the engine's
    /// section table and breakdown.
    pub fn into_plan(
        self,
        sections: Vec<CriticalSection>,
        breakdown: UlcpBreakdown,
    ) -> DetectionPlan {
        DetectionPlan {
            sections,
            breakdown,
            edges: self.edges,
            benign: self.benign,
            aggregates: self.aggregator.finish(),
        }
    }
}

impl<G: GainSource + Clone> UlcpSink for PlanAggregator<G> {
    fn emit(&mut self, ulcp: Ulcp, ctx: &SectionCtx<'_>) {
        self.aggregator.emit(ulcp, ctx);
        if ulcp.kind == UlcpKind::Benign {
            self.benign.push(ulcp);
        }
    }

    fn emit_edge(&mut self, edge: CausalEdge, ctx: &SectionCtx<'_>) {
        self.aggregator.emit_edge(edge, ctx);
        self.edges.push(edge);
    }

    fn fork(&self) -> Self {
        PlanAggregator {
            aggregator: self.aggregator.fork(),
            edges: Vec::new(),
            benign: Vec::new(),
        }
    }

    fn absorb(&mut self, shard: Self) {
        self.aggregator.absorb(shard.aggregator);
        self.edges.extend(shard.edges);
        self.benign.extend(shard.benign);
    }

    fn remap_sections(&mut self, remap: &[Option<SectionId>]) {
        let map = |id: SectionId| remap[id.index()].expect("paired section survives compaction");
        for e in &mut self.edges {
            e.from = map(e.from);
            e.to = map(e.to);
        }
        for u in &mut self.benign {
            u.first = map(u.first);
            u.second = map(u.second);
        }
    }

    /// Restores the canonical `(lock, first, second-thread, second)` order of
    /// the retained edge and benign lists — the same order [`seal`] gives the
    /// full lists of a collecting sink, so a plan-driven transformation sees
    /// its inputs exactly as the materializing one does.
    ///
    /// [`seal`]: UlcpSink::seal
    fn seal(&mut self, sections: &[CriticalSection]) {
        self.edges
            .sort_unstable_by_key(|e| (e.lock, e.from, sections[e.to.index()].thread, e.to));
        self.benign.sort_unstable_by_key(|u| {
            (u.lock, u.first, sections[u.second.index()].thread, u.second)
        });
    }

    fn resident_entries(&self) -> usize {
        self.aggregator.resident_entries() + self.edges.len() + self.benign.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{BodyOverlapGain, CollectPairs, NoGain};
    use crate::{DetectorConfig, StreamingDetector};
    use perfplay_program::ProgramBuilder;
    use perfplay_record::Recorder;
    use perfplay_sim::SimConfig;

    fn mixed_trace() -> Trace {
        let mut b = ProgramBuilder::new("plan-sink-test");
        let lock = b.lock("m");
        let x = b.shared("x", 0);
        let flag = b.shared("done", 0);
        let site_r = b.site("p.c", "reader", 1);
        let site_w = b.site("p.c", "writer", 2);
        let site_b = b.site("p.c", "set_done", 3);
        for i in 0..3 {
            b.thread(format!("t{i}"), |t| {
                t.loop_n(3, |l| {
                    l.locked(lock, site_r, |cs| {
                        cs.read(x);
                    });
                    l.compute_ns(40);
                });
                t.locked(lock, site_w, |cs| {
                    let v = cs.read_into(x);
                    cs.write_add(x, 1);
                    let _ = v;
                });
                t.locked(lock, site_b, |cs| {
                    cs.write_set(flag, 1);
                });
            });
        }
        Recorder::new(SimConfig::default())
            .record(&b.build())
            .unwrap()
            .trace
    }

    fn assert_plan_matches_collected(config: DetectorConfig, trace: &Trace) {
        let analysis = Detector::new(config).analyze(trace);
        let expected_benign: Vec<Ulcp> = analysis
            .ulcps
            .iter()
            .copied()
            .filter(|u| u.kind == UlcpKind::Benign)
            .collect();
        let expected_aggregates = Detector::new(config)
            .analyze_with(trace, SiteAggregator::new(BodyOverlapGain))
            .sink
            .finish();

        let plan = Detector::new(config).plan(trace, BodyOverlapGain);
        assert_eq!(plan.sections, analysis.sections);
        assert_eq!(plan.breakdown, analysis.breakdown);
        assert_eq!(plan.edges, analysis.edges);
        assert_eq!(plan.benign, expected_benign);
        assert_eq!(plan.aggregates, expected_aggregates);
        assert_eq!(
            plan.resident_entries(),
            plan.aggregates.len() + plan.edges.len() + plan.benign.len()
        );
    }

    #[test]
    fn plan_retains_edges_benign_and_aggregates_in_canonical_order() {
        let trace = mixed_trace();
        assert_plan_matches_collected(DetectorConfig::default(), &trace);
    }

    #[test]
    fn parallel_plan_is_bit_identical_to_sequential() {
        let trace = mixed_trace();
        let sequential = Detector::default().plan(&trace, NoGain);
        let parallel = Detector::new(DetectorConfig {
            parallel: true,
            ..DetectorConfig::default()
        })
        .plan(&trace, NoGain);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn streaming_plan_matches_batch_plan() {
        let trace = mixed_trace();
        let config = DetectorConfig::default();
        let batch = Detector::new(config).plan(&trace, BodyOverlapGain);
        for chunk_events in [1usize, 7, 1024] {
            let streamed = StreamingDetector::new(config)
                .analyze_trace_with(&trace, chunk_events, PlanAggregator::new(BodyOverlapGain))
                .unwrap();
            let (plan, stats) = DetectionPlan::from_streaming(streamed);
            assert_eq!(plan, batch, "chunk_events = {chunk_events}");
            assert!(stats.sections > 0);
        }
    }

    #[test]
    fn plan_and_collector_can_ride_side_by_side() {
        // The tuple sink feeds both; the plan's retained lists are exactly
        // the collector's filtered views.
        let trace = mixed_trace();
        let result = Detector::default().analyze_with(
            &trace,
            (CollectPairs::default(), PlanAggregator::new(NoGain)),
        );
        let (collected, plan_sink) = result.sink;
        let plan = plan_sink.into_plan(result.sections, result.breakdown);
        assert_eq!(plan.edges, collected.edges);
        let benign: Vec<Ulcp> = collected
            .ulcps
            .iter()
            .copied()
            .filter(|u| u.kind == UlcpKind::Benign)
            .collect();
        assert_eq!(plan.benign, benign);
        assert!(
            !plan.benign.is_empty(),
            "workload must produce benign pairs"
        );
        assert!(!plan.edges.is_empty(), "workload must produce TLCP edges");
    }
}
