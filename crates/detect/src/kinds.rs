//! Classification categories for pairs of critical sections.

use serde::{Deserialize, Serialize};

/// The four ULCP categories of Section 2.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UlcpKind {
    /// At least one of the two critical sections performs no shared-memory
    /// access at all (Figure 3: accesses guarded by an if-branch that never
    /// fires).
    NullLock,
    /// Both sections only read shared data (Figure 4: concurrent readers of
    /// `dbmfp->ref`).
    ReadRead,
    /// The sections write disjoint shared locations, with at least one write
    /// (e.g. a shared lock protecting different objects through a uniform
    /// pointer).
    DisjointWrite,
    /// The sections access the same data and at least one writes it, but the
    /// conflict is false: both execution orders produce the same result
    /// (redundant writes, disjoint bit manipulation, ad-hoc synchronization).
    Benign,
}

impl UlcpKind {
    /// All kinds, in the order Table 1 reports them.
    pub const ALL: [UlcpKind; 4] = [
        UlcpKind::NullLock,
        UlcpKind::ReadRead,
        UlcpKind::DisjointWrite,
        UlcpKind::Benign,
    ];

    /// Short column label used in reports (matches Table 1's headers).
    pub fn label(self) -> &'static str {
        match self {
            UlcpKind::NullLock => "NL",
            UlcpKind::ReadRead => "RR",
            UlcpKind::DisjointWrite => "DW",
            UlcpKind::Benign => "Benign",
        }
    }
}

impl std::fmt::Display for UlcpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            UlcpKind::NullLock => "null-lock",
            UlcpKind::ReadRead => "read-read",
            UlcpKind::DisjointWrite => "disjoint-write",
            UlcpKind::Benign => "benign",
        };
        f.write_str(name)
    }
}

/// The outcome of classifying a pair of critical sections protected by the
/// same lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairClass {
    /// The pair is an unnecessary lock contention pair of the given kind.
    Ulcp(UlcpKind),
    /// The pair is a true lock contention pair: the sections genuinely
    /// conflict and the lock is necessary.
    Tlcp,
}

impl PairClass {
    /// Returns the ULCP kind if the pair is unnecessary.
    pub fn ulcp_kind(self) -> Option<UlcpKind> {
        match self {
            PairClass::Ulcp(kind) => Some(kind),
            PairClass::Tlcp => None,
        }
    }

    /// Returns true if the pair is a true lock contention pair.
    pub fn is_tlcp(self) -> bool {
        matches!(self, PairClass::Tlcp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_display() {
        assert_eq!(UlcpKind::NullLock.label(), "NL");
        assert_eq!(UlcpKind::ReadRead.label(), "RR");
        assert_eq!(UlcpKind::DisjointWrite.label(), "DW");
        assert_eq!(UlcpKind::Benign.label(), "Benign");
        assert_eq!(UlcpKind::ReadRead.to_string(), "read-read");
        assert_eq!(UlcpKind::ALL.len(), 4);
    }

    #[test]
    fn pair_class_accessors() {
        assert_eq!(
            PairClass::Ulcp(UlcpKind::ReadRead).ulcp_kind(),
            Some(UlcpKind::ReadRead)
        );
        assert_eq!(PairClass::Tlcp.ulcp_kind(), None);
        assert!(PairClass::Tlcp.is_tlcp());
        assert!(!PairClass::Ulcp(UlcpKind::Benign).is_tlcp());
    }
}
