//! Algorithm 1 (ULCP identification) and the reversed-replay benign check.

use std::collections::BTreeMap;

use perfplay_trace::{CriticalSection, Footprint, MemAccess, ObjectId};

use crate::kinds::{PairClass, UlcpKind};
use crate::shadow::StartState;

/// Classifies a pair of critical sections protected by the same lock using
/// the read/write-set intersections of Algorithm 1.
///
/// Returns the disjointness-based classification only; conflicting pairs are
/// reported as [`PairClass::Tlcp`] here and must be refined by
/// [`refine_conflicting_pair`] (the reversed-replay check) to separate benign
/// ULCPs from true contention.
///
/// Every set test is a [`Footprint`] intersection, so disjoint pairs are
/// usually rejected by a single summary-word AND.
pub fn classify_by_sets(c1: &CriticalSection, c2: &CriticalSection) -> PairClass {
    // Line 1: either section performs no shared access at all.
    if c1.is_access_free() || c2.is_access_free() {
        return PairClass::Ulcp(UlcpKind::NullLock);
    }
    // Line 3: neither section writes.
    if c1.writes.is_empty() && c2.writes.is_empty() {
        return PairClass::Ulcp(UlcpKind::ReadRead);
    }
    // Line 5: all read/write and write/write intersections are empty.
    if !c1.reads.intersects(&c2.writes)
        && !c1.writes.intersects(&c2.reads)
        && !c1.writes.intersects(&c2.writes)
    {
        return PairClass::Ulcp(UlcpKind::DisjointWrite);
    }
    PairClass::Tlcp
}

/// The observable outcome of executing two critical sections in a given
/// order: the values each section read, plus the final memory over the
/// touched footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PairOutcome {
    reads_first_section: Vec<i64>,
    reads_second_section: Vec<i64>,
    final_memory: Vec<i64>,
}

fn execute_accesses(
    accesses: &[MemAccess],
    memory: &mut BTreeMap<ObjectId, i64>,
    reads: &mut Vec<i64>,
) {
    for access in accesses {
        match access {
            MemAccess::Read(obj) => reads.push(memory.get(obj).copied().unwrap_or(0)),
            MemAccess::Write(obj, op) => {
                let slot = memory.entry(*obj).or_insert(0);
                *slot = op.apply(*slot);
            }
        }
    }
}

fn run_order(
    a: &CriticalSection,
    b: &CriticalSection,
    start: &BTreeMap<ObjectId, i64>,
    footprint: &[ObjectId],
) -> PairOutcome {
    let mut memory = start.clone();
    let mut reads_a = Vec::new();
    let mut reads_b = Vec::new();
    execute_accesses(&a.accesses, &mut memory, &mut reads_a);
    execute_accesses(&b.accesses, &mut memory, &mut reads_b);
    PairOutcome {
        reads_first_section: reads_a,
        reads_second_section: reads_b,
        final_memory: footprint
            .iter()
            .map(|obj| memory.get(obj).copied().unwrap_or(0))
            .collect(),
    }
}

/// The reversed-replay check of Section 3.1: replays the two conflicting
/// critical sections in both orders from the memory state the original
/// execution had before the pair, and compares the results.
///
/// If both orders produce the same final memory *and* each section observes
/// the same read values in both orders, the conflict is false and the pair is
/// a benign ULCP; otherwise it is a true lock contention pair.
///
/// Only the values of the pair's combined footprint are fetched from
/// `state_before` — with a lazy [`StateBefore`](crate::StateBefore) view that
/// is O(F log E) for a footprint of F objects, instead of materializing the
/// whole shadow memory.
pub fn refine_conflicting_pair<S: StartState>(
    c1: &CriticalSection,
    c2: &CriticalSection,
    state_before: &S,
) -> PairClass {
    let footprint = Footprint::union_of(&[&c1.reads, &c1.writes, &c2.reads, &c2.writes]);
    let start: BTreeMap<ObjectId, i64> = footprint
        .iter()
        .map(|&obj| (obj, state_before.value(obj)))
        .collect();

    let forward = run_order(c1, c2, &start, &footprint);
    let reversed = run_order(c2, c1, &start, &footprint);

    let same_memory = forward.final_memory == reversed.final_memory;
    // In the reversed order the roles swap: c1 runs second, c2 runs first.
    let same_reads_c1 = forward.reads_first_section == reversed.reads_second_section;
    let same_reads_c2 = forward.reads_second_section == reversed.reads_first_section;

    if same_memory && same_reads_c1 && same_reads_c2 {
        PairClass::Ulcp(UlcpKind::Benign)
    } else {
        PairClass::Tlcp
    }
}

/// Full pair classification: Algorithm 1 followed by the reversed-replay
/// refinement for conflicting pairs.
///
/// When `use_reversed_replay` is false (the ablation mode), every conflicting
/// pair is conservatively reported as a TLCP, exactly as Algorithm 1 alone
/// would.
pub fn classify_pair<S: StartState>(
    c1: &CriticalSection,
    c2: &CriticalSection,
    state_before: &S,
    use_reversed_replay: bool,
) -> PairClass {
    match classify_by_sets(c1, c2) {
        PairClass::Tlcp if use_reversed_replay => refine_conflicting_pair(c1, c2, state_before),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::MemorySnapshot;
    use perfplay_trace::{CodeSiteId, LockId, SectionId, ThreadId, Time, WriteOp};

    fn section(id: u32, thread: u32, reads: &[u64], writes: &[(u64, WriteOp)]) -> CriticalSection {
        let mut accesses = Vec::new();
        let mut read_objs = Vec::new();
        let mut write_objs = Vec::new();
        for &r in reads {
            let obj = ObjectId::new(r);
            read_objs.push(obj);
            accesses.push(MemAccess::Read(obj));
        }
        for &(w, op) in writes {
            let obj = ObjectId::new(w);
            write_objs.push(obj);
            accesses.push(MemAccess::Write(obj, op));
        }
        CriticalSection {
            id: SectionId::new(id),
            thread: ThreadId::new(thread),
            lock: LockId::new(0),
            site: CodeSiteId::new(id),
            acquire_index: 0,
            release_index: 1,
            enter_time: Time::from_nanos(u64::from(id) * 10),
            exit_time: Time::from_nanos(u64::from(id) * 10 + 5),
            reads: Footprint::from_unsorted(read_objs),
            writes: Footprint::from_unsorted(write_objs),
            accesses,
            body_cost: Time::from_nanos(5),
            depth: 0,
        }
    }

    fn empty_state() -> MemorySnapshot {
        MemorySnapshot::default()
    }

    #[test]
    fn null_lock_when_either_side_is_access_free() {
        let empty = section(0, 0, &[], &[]);
        let reader = section(1, 1, &[1], &[]);
        assert_eq!(
            classify_by_sets(&empty, &reader),
            PairClass::Ulcp(UlcpKind::NullLock)
        );
        assert_eq!(
            classify_by_sets(&reader, &empty),
            PairClass::Ulcp(UlcpKind::NullLock)
        );
    }

    #[test]
    fn read_read_when_neither_writes() {
        let a = section(0, 0, &[1, 2], &[]);
        let b = section(1, 1, &[2, 3], &[]);
        assert_eq!(
            classify_by_sets(&a, &b),
            PairClass::Ulcp(UlcpKind::ReadRead)
        );
    }

    #[test]
    fn disjoint_write_when_footprints_do_not_overlap() {
        let a = section(0, 0, &[1], &[(2, WriteOp::Set(1))]);
        let b = section(1, 1, &[3], &[(4, WriteOp::Set(1))]);
        assert_eq!(
            classify_by_sets(&a, &b),
            PairClass::Ulcp(UlcpKind::DisjointWrite)
        );
    }

    #[test]
    fn overlapping_write_is_conflicting() {
        let a = section(0, 0, &[], &[(1, WriteOp::Add(1))]);
        let b = section(1, 1, &[1], &[]);
        assert_eq!(classify_by_sets(&a, &b), PairClass::Tlcp);
    }

    #[test]
    fn redundant_writes_are_benign() {
        // Both sections store the same constant: order does not matter.
        let a = section(0, 0, &[], &[(1, WriteOp::Set(7))]);
        let b = section(1, 1, &[], &[(1, WriteOp::Set(7))]);
        assert_eq!(
            refine_conflicting_pair(&a, &b, &empty_state()),
            PairClass::Ulcp(UlcpKind::Benign)
        );
        assert_eq!(
            classify_pair(&a, &b, &empty_state(), true),
            PairClass::Ulcp(UlcpKind::Benign)
        );
    }

    #[test]
    fn commuting_increments_without_reads_are_benign() {
        let a = section(0, 0, &[], &[(1, WriteOp::Add(2))]);
        let b = section(1, 1, &[], &[(1, WriteOp::Add(5))]);
        assert_eq!(
            refine_conflicting_pair(&a, &b, &empty_state()),
            PairClass::Ulcp(UlcpKind::Benign)
        );
    }

    #[test]
    fn read_of_written_value_is_true_contention() {
        // One section reads what the other writes: order changes the read.
        let writer = section(0, 0, &[], &[(1, WriteOp::Set(9))]);
        let reader = section(1, 1, &[1], &[(2, WriteOp::Set(1))]);
        assert_eq!(classify_by_sets(&writer, &reader), PairClass::Tlcp);
        assert_eq!(
            refine_conflicting_pair(&writer, &reader, &empty_state()),
            PairClass::Tlcp
        );
    }

    #[test]
    fn set_and_add_to_same_object_do_not_commute() {
        let setter = section(0, 0, &[], &[(1, WriteOp::Set(10))]);
        let adder = section(1, 1, &[], &[(1, WriteOp::Add(3))]);
        assert_eq!(
            refine_conflicting_pair(&setter, &adder, &empty_state()),
            PairClass::Tlcp
        );
    }

    #[test]
    fn reversed_replay_ablation_treats_conflicts_as_tlcp() {
        let a = section(0, 0, &[], &[(1, WriteOp::Set(7))]);
        let b = section(1, 1, &[], &[(1, WriteOp::Set(7))]);
        assert_eq!(
            classify_pair(&a, &b, &empty_state(), false),
            PairClass::Tlcp
        );
    }

    #[test]
    fn starting_state_matters_for_benign_decision() {
        // Section A reads obj1 then writes obj1 := 5; section B writes obj1 := 5.
        // From a state where obj1 == 5 the pair commutes (A reads 5 either way);
        // from obj1 == 0 it does not (A reads 0 or 5 depending on order).
        let a = section(0, 0, &[1], &[(1, WriteOp::Set(5))]);
        let b = section(1, 1, &[], &[(1, WriteOp::Set(5))]);
        let mut state5 = MemorySnapshot::default();
        state5.set(ObjectId::new(1), 5);
        assert_eq!(
            refine_conflicting_pair(&a, &b, &state5),
            PairClass::Ulcp(UlcpKind::Benign)
        );
        let state0 = MemorySnapshot::default();
        assert_eq!(refine_conflicting_pair(&a, &b, &state0), PairClass::Tlcp);
    }
}
