//! Deterministic fault injection for chaos-testing the ingestion pipeline.
//!
//! Two layers, both driven by a seeded RNG so every failure reproduces from
//! its seed:
//!
//! * [`FaultInjector`] wraps any [`EventSource`] and perturbs the chunk
//!   stream in flight — dropped, duplicated or truncated chunks, duplicated
//!   or reordered events, timestamp regressions. It exercises the detector's
//!   contract validation without touching a file.
//! * [`corrupt_chunk_file`] realizes the same faults (plus the byte-level
//!   ones a crashed or buggy writer produces: mid-record truncation,
//!   bit-flips, trailer-count mismatches) by rewriting an on-disk chunk
//!   file, so the whole reader/recovery path is exercised end to end.
//!
//! The invariant the chaos suite pins with these tools: **no injected fault
//! makes the pipeline panic** — every run ends in a bit-identical report, a
//! gap-annotated report, or a structured [`StreamError`].

use std::path::Path;

use perfplay_trace::{
    ChunkFileRecord, ChunkFormat, EventSource, RawChunkRecords, StreamError, StreamItem, Time,
    TraceChunk, TraceMeta,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Remove one chunk from the stream (events vanish mid-stream).
    DropChunk,
    /// Deliver one chunk twice (violates window and contiguity contracts).
    DuplicateChunk,
    /// Duplicate one event inside a chunk (span lengths stop matching the
    /// per-thread contiguity accounting).
    DuplicateEvent,
    /// Swap two adjacent events of one thread span.
    ReorderEvents,
    /// Regress one event's timestamp to zero.
    TimestampRegression,
    /// End the stream at a chunk boundary (no trailer ever arrives).
    TruncateAtBoundary,
    /// Cut one record line in half (the shape a killed writer leaves).
    /// File-level only.
    TruncateMidRecord,
    /// Flip one bit of one record line. File-level only.
    BitFlip,
    /// Rewrite the trailer with wrong integrity counts. File-level only.
    TrailerMismatch,
}

impl FaultKind {
    /// Every fault kind, in a stable order.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::DropChunk,
        FaultKind::DuplicateChunk,
        FaultKind::DuplicateEvent,
        FaultKind::ReorderEvents,
        FaultKind::TimestampRegression,
        FaultKind::TruncateAtBoundary,
        FaultKind::TruncateMidRecord,
        FaultKind::BitFlip,
        FaultKind::TrailerMismatch,
    ];

    /// Stable spec name, accepted back by [`parse`](Self::parse).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DropChunk => "drop-chunk",
            FaultKind::DuplicateChunk => "dup-chunk",
            FaultKind::DuplicateEvent => "dup-event",
            FaultKind::ReorderEvents => "reorder",
            FaultKind::TimestampRegression => "time-regress",
            FaultKind::TruncateAtBoundary => "truncate",
            FaultKind::TruncateMidRecord => "truncate-mid",
            FaultKind::BitFlip => "bit-flip",
            FaultKind::TrailerMismatch => "trailer-mismatch",
        }
    }

    /// Parses a spec name produced by [`name`](Self::name).
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// True for faults an in-flight [`FaultInjector`] can apply; the rest
    /// are byte-level and only realizable by [`corrupt_chunk_file`].
    pub fn stream_applicable(self) -> bool {
        !matches!(
            self,
            FaultKind::TruncateMidRecord | FaultKind::BitFlip | FaultKind::TrailerMismatch
        )
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Where and what to inject: fully determined by `(seed, kind)` plus the
/// stream length, so a failing corpus entry reproduces from its seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The fault to inject.
    pub kind: FaultKind,
    /// Index of the chunk (or record) the fault lands on.
    pub target: u64,
    /// The seed that chose the target (and drives intra-chunk choices).
    pub seed: u64,
}

impl FaultPlan {
    /// Picks a deterministic target among `num_chunks` chunks.
    pub fn seeded(seed: u64, kind: FaultKind, num_chunks: u64) -> FaultPlan {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let target = if num_chunks == 0 {
            0
        } else {
            rng.gen_range(0..num_chunks)
        };
        FaultPlan { kind, target, seed }
    }
}

/// An [`EventSource`] adapter that perturbs the chunk stream according to a
/// [`FaultPlan`]. The wrapped source is consumed unchanged except at the
/// plan's target chunk; file-only fault kinds pass everything through.
#[derive(Debug)]
pub struct FaultInjector<R> {
    inner: R,
    plan: FaultPlan,
    rng: ChaCha8Rng,
    index: u64,
    /// Second delivery of a duplicated chunk, pending.
    replay: Option<TraceChunk>,
    done: bool,
}

impl<R: EventSource> FaultInjector<R> {
    /// Wraps a source with the given fault plan.
    pub fn new(inner: R, plan: FaultPlan) -> Self {
        // Offset the seed so intra-chunk choices are independent of the
        // target-picking draw in `FaultPlan::seeded`.
        let rng = ChaCha8Rng::seed_from_u64(plan.seed.wrapping_add(0x9e37_79b9));
        FaultInjector {
            inner,
            plan,
            rng,
            index: 0,
            replay: None,
            done: false,
        }
    }

    /// The plan in effect.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Unwraps the inner source.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: EventSource> EventSource for FaultInjector<R> {
    fn meta(&self) -> &TraceMeta {
        self.inner.meta()
    }

    fn num_threads(&self) -> usize {
        self.inner.num_threads()
    }

    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, StreamError> {
        if self.done {
            return Ok(None);
        }
        if let Some(dup) = self.replay.take() {
            return Ok(Some(dup));
        }
        loop {
            let Some(chunk) = self.inner.next_chunk()? else {
                return Ok(None);
            };
            match self.apply(chunk)? {
                Some(chunk) => return Ok(Some(chunk)),
                None if self.done => return Ok(None),
                None => continue, // chunk dropped; pull the next one
            }
        }
    }

    fn next_item(&mut self) -> Result<Option<StreamItem>, StreamError> {
        // Faults apply to the chunk stream; gaps from a recovering inner
        // source are forwarded untouched.
        if self.done {
            return Ok(None);
        }
        if self.replay.is_some() {
            return Ok(self.next_chunk()?.map(StreamItem::Chunk));
        }
        match self.inner.next_item()? {
            Some(StreamItem::Gap(gap)) => Ok(Some(StreamItem::Gap(gap))),
            Some(StreamItem::Chunk(chunk)) => {
                // Re-enter the fault logic with the chunk already pulled.
                let item = self.apply(chunk)?;
                match item {
                    Some(chunk) => Ok(Some(StreamItem::Chunk(chunk))),
                    None => self.next_item(),
                }
            }
            None => Ok(None),
        }
    }
}

impl<R: EventSource> FaultInjector<R> {
    /// Applies the plan to one pulled chunk; `Ok(None)` means the chunk was
    /// consumed by the fault (dropped, or the stream truncated).
    fn apply(&mut self, mut chunk: TraceChunk) -> Result<Option<TraceChunk>, StreamError> {
        let idx = self.index;
        self.index += 1;
        if idx != self.plan.target {
            return Ok(Some(chunk));
        }
        match self.plan.kind {
            FaultKind::TruncateAtBoundary => {
                self.done = true;
                Ok(None)
            }
            FaultKind::DropChunk => Ok(None),
            FaultKind::DuplicateChunk => {
                self.replay = Some(chunk.clone());
                Ok(Some(chunk))
            }
            FaultKind::DuplicateEvent => {
                duplicate_event(&mut chunk, &mut self.rng);
                Ok(Some(chunk))
            }
            FaultKind::ReorderEvents => {
                reorder_events(&mut chunk, &mut self.rng);
                Ok(Some(chunk))
            }
            FaultKind::TimestampRegression => {
                regress_timestamp(&mut chunk, &mut self.rng);
                Ok(Some(chunk))
            }
            _ => Ok(Some(chunk)),
        }
    }
}

/// Picks a random `(span, event)` position in a non-empty chunk.
fn pick_event(chunk: &TraceChunk, rng: &mut ChaCha8Rng) -> Option<(usize, usize)> {
    let populated: Vec<usize> = (0..chunk.spans.len())
        .filter(|&i| !chunk.spans[i].events.is_empty())
        .collect();
    if populated.is_empty() {
        return None;
    }
    let si = populated[rng.gen_range(0..populated.len())];
    let ei = rng.gen_range(0..chunk.spans[si].events.len());
    Some((si, ei))
}

fn duplicate_event(chunk: &mut TraceChunk, rng: &mut ChaCha8Rng) {
    if let Some((si, ei)) = pick_event(chunk, rng) {
        let dup = chunk.spans[si].events[ei].clone();
        chunk.spans[si].events.insert(ei + 1, dup);
    }
}

fn reorder_events(chunk: &mut TraceChunk, rng: &mut ChaCha8Rng) {
    let candidates: Vec<usize> = (0..chunk.spans.len())
        .filter(|&i| chunk.spans[i].events.len() >= 2)
        .collect();
    if candidates.is_empty() {
        return;
    }
    let si = candidates[rng.gen_range(0..candidates.len())];
    let ei = rng.gen_range(0..chunk.spans[si].events.len() - 1);
    chunk.spans[si].events.swap(ei, ei + 1);
}

fn regress_timestamp(chunk: &mut TraceChunk, rng: &mut ChaCha8Rng) {
    if let Some((si, ei)) = pick_event(chunk, rng) {
        chunk.spans[si].events[ei].at = Time::ZERO;
    }
}

/// Rewrites `src` into `dst` with one deterministic byte- or record-level
/// corruption applied, returning a description of what was done.
///
/// Format-agnostic: the source's [`ChunkFormat`] is autodetected and the
/// corrupted file stays in the same format, so both JSON-lines and PBIN
/// recovery paths are exercised by the same call. Supports every
/// [`FaultKind`]; the chunk-shaped kinds are applied by parsing one record,
/// mutating it exactly as [`FaultInjector`] would, and re-encoding it. The
/// output file is what a buggy or crashed writer could plausibly have
/// produced — feed it to a
/// [`ChunkFileReader`](perfplay_trace::ChunkFileReader) under each
/// [`RecoveryPolicy`](perfplay_trace::RecoveryPolicy) to exercise recovery.
///
/// # Errors
///
/// I/O failures, and `InvalidData` if `src` is not a valid chunk file.
pub fn corrupt_chunk_file(
    src: impl AsRef<Path>,
    dst: impl AsRef<Path>,
    kind: FaultKind,
    seed: u64,
) -> std::io::Result<String> {
    use std::io::{Error, ErrorKind};
    let invalid = |msg: String| Error::new(ErrorKind::InvalidData, msg);

    let bytes = std::fs::read(&src)?;
    // Segment the file into per-record byte extents (for JSON a line plus
    // its newline; for PBIN a frame, the prelude folded into the first).
    let scanner =
        RawChunkRecords::open(&src).map_err(|e| invalid(format!("unreadable chunk file: {e}")))?;
    let format = scanner.format();
    let mut records: Vec<(std::ops::Range<usize>, ChunkFileRecord)> = Vec::new();
    for raw in scanner {
        let record = raw
            .record
            .map_err(|e| invalid(format!("source record {} is not clean: {e}", raw.line)))?;
        let start = raw.offset as usize;
        let end = (start + raw.bytes as usize).min(bytes.len());
        records.push((start..end, record));
    }
    if records.len() < 3 {
        return Err(invalid(
            "chunk file needs header + chunk(s) + trailer".into(),
        ));
    }
    // Working copy: the raw bytes of each record, in order.
    let mut segments: Vec<Vec<u8>> = records
        .iter()
        .map(|(range, _)| bytes[range.clone()].to_vec())
        .collect();

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Records that are fair game: everything between header and trailer.
    let chunk_range = 1..records.len() - 1;
    let pick = |rng: &mut ChaCha8Rng| rng.gen_range(chunk_range.start..chunk_range.end);

    let reencode = |record: &ChunkFileRecord| -> std::io::Result<Vec<u8>> {
        let mut out = Vec::new();
        format
            .encode_record(record, &mut out)
            .map_err(|e| invalid(e.to_string()))?;
        Ok(out)
    };
    let as_chunk = |record: &ChunkFileRecord| -> std::io::Result<TraceChunk> {
        match record {
            ChunkFileRecord::Chunk(chunk) => Ok(chunk.clone()),
            _ => Err(invalid("not a chunk record".into())),
        }
    };

    let mut truncate_after: Option<usize> = None; // drop records past this index
    let description = match kind {
        FaultKind::DropChunk => {
            let i = pick(&mut rng);
            segments.remove(i);
            format!("dropped record {}", i + 1)
        }
        FaultKind::DuplicateChunk => {
            let i = pick(&mut rng);
            let copy = segments[i].clone();
            segments.insert(i + 1, copy);
            format!("duplicated record {}", i + 1)
        }
        FaultKind::DuplicateEvent => {
            let i = pick(&mut rng);
            let mut chunk = as_chunk(&records[i].1)?;
            duplicate_event(&mut chunk, &mut rng);
            segments[i] = reencode(&ChunkFileRecord::Chunk(chunk))?;
            format!("duplicated one event in record {}", i + 1)
        }
        FaultKind::ReorderEvents => {
            let i = pick(&mut rng);
            let mut chunk = as_chunk(&records[i].1)?;
            reorder_events(&mut chunk, &mut rng);
            segments[i] = reencode(&ChunkFileRecord::Chunk(chunk))?;
            format!("swapped adjacent events in record {}", i + 1)
        }
        FaultKind::TimestampRegression => {
            let i = pick(&mut rng);
            let mut chunk = as_chunk(&records[i].1)?;
            regress_timestamp(&mut chunk, &mut rng);
            segments[i] = reencode(&ChunkFileRecord::Chunk(chunk))?;
            format!("regressed one timestamp in record {}", i + 1)
        }
        FaultKind::TruncateAtBoundary => {
            let i = pick(&mut rng);
            truncate_after = Some(i);
            format!("truncated file after record {}", i)
        }
        FaultKind::TruncateMidRecord => {
            let i = pick(&mut rng);
            // Cut strictly inside the record's encoding (for JSON, short of
            // the newline too) so the remnant can never parse as a complete
            // record — this fault is "the writer died mid-write", not a
            // boundary truncation.
            let payload = match format {
                ChunkFormat::Json => segments[i].len().saturating_sub(1),
                ChunkFormat::Pbin => segments[i].len(),
            };
            let keep = if payload > 1 {
                rng.gen_range(1..payload)
            } else {
                0
            };
            segments[i].truncate(keep);
            truncate_after = Some(i + 1);
            format!("cut record {} at byte {keep}", i + 1)
        }
        FaultKind::BitFlip => {
            let i = pick(&mut rng);
            // For JSON, spare the trailing newline: flipping it would merge
            // two records, which is a different fault shape.
            let span = match format {
                ChunkFormat::Json => segments[i].len().saturating_sub(1),
                ChunkFormat::Pbin => segments[i].len(),
            };
            let pos = rng.gen_range(0..span.max(1));
            let bit = rng.gen_range(0u32..8);
            if let Some(byte) = segments[i].get_mut(pos) {
                *byte ^= 1 << bit;
                // A flip into a newline would split a JSON record in two;
                // nudge it so the fault stays "one corrupt record".
                if matches!(format, ChunkFormat::Json) && *byte == b'\n' {
                    *byte ^= 1;
                }
            }
            format!("flipped bit {bit} of byte {pos} in record {}", i + 1)
        }
        FaultKind::TrailerMismatch => {
            let last = records.len() - 1;
            let ChunkFileRecord::Trailer(mut trailer) = records[last].1.clone() else {
                return Err(invalid("last record is not a trailer".into()));
            };
            let extra = rng.gen_range(1u64..=100);
            trailer.events = trailer.events.wrapping_add(extra);
            segments[last] = reencode(&ChunkFileRecord::Trailer(trailer))?;
            format!("inflated trailer event count by {extra}")
        }
    };

    let kept = truncate_after.unwrap_or(segments.len()).max(1);
    let mut out = Vec::new();
    for segment in segments.iter().take(kept) {
        out.extend_from_slice(segment);
    }
    std::fs::write(&dst, out)?;
    Ok(description)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_trace::{TraceChunks, TraceMeta};

    fn tiny_trace() -> perfplay_trace::Trace {
        use perfplay_trace::{Event, LockId, ObjectId, Time, Trace};
        let mut trace = Trace::new(TraceMeta::default(), 2);
        for (ti, base) in [(0usize, 0u64), (1, 10)] {
            let t = &mut trace.threads[ti];
            t.push(
                Time::from_nanos(base + 1),
                Event::LockAcquire {
                    lock: LockId::new(0),
                    site: perfplay_trace::CodeSiteId::new(0),
                },
            );
            t.push(
                Time::from_nanos(base + 2),
                Event::Read {
                    obj: ObjectId::new(0),
                    value: 0,
                },
            );
            t.push(
                Time::from_nanos(base + 3),
                Event::LockRelease {
                    lock: LockId::new(0),
                },
            );
        }
        trace.total_time = Time::from_nanos(20);
        trace
    }

    #[test]
    fn fault_kind_names_roundtrip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(FaultKind::parse("no-such-fault"), None);
    }

    #[test]
    fn plans_are_deterministic() {
        let a = FaultPlan::seeded(7, FaultKind::DropChunk, 10);
        let b = FaultPlan::seeded(7, FaultKind::DropChunk, 10);
        assert_eq!(a, b);
        assert!(a.target < 10);
    }

    #[test]
    fn drop_chunk_removes_exactly_one_chunk() {
        let trace = tiny_trace();
        let count = |plan: Option<FaultPlan>| -> usize {
            let chunks = TraceChunks::new(&trace, 2);
            let mut n = 0;
            match plan {
                Some(plan) => {
                    let mut src = FaultInjector::new(chunks, plan);
                    while let Some(_c) = src.next_chunk().unwrap() {
                        n += 1;
                    }
                }
                None => {
                    let mut src = chunks;
                    while let Some(_c) = src.next_chunk().unwrap() {
                        n += 1;
                    }
                }
            }
            n
        };
        let clean = count(None);
        assert!(clean >= 2);
        let dropped = count(Some(FaultPlan {
            kind: FaultKind::DropChunk,
            target: 1,
            seed: 0,
        }));
        assert_eq!(dropped, clean - 1);
        let duplicated = count(Some(FaultPlan {
            kind: FaultKind::DuplicateChunk,
            target: 0,
            seed: 0,
        }));
        assert_eq!(duplicated, clean + 1);
        let truncated = count(Some(FaultPlan {
            kind: FaultKind::TruncateAtBoundary,
            target: 1,
            seed: 0,
        }));
        assert_eq!(truncated, 1);
    }

    #[test]
    fn event_mutations_are_deterministic() {
        let trace = tiny_trace();
        let run = |kind: FaultKind| -> Vec<TraceChunk> {
            let chunks = TraceChunks::new(&trace, 2);
            let mut src = FaultInjector::new(
                chunks,
                FaultPlan {
                    kind,
                    target: 0,
                    seed: 42,
                },
            );
            let mut out = Vec::new();
            while let Some(c) = src.next_chunk().unwrap() {
                out.push(c);
            }
            out
        };
        for kind in [
            FaultKind::DuplicateEvent,
            FaultKind::ReorderEvents,
            FaultKind::TimestampRegression,
        ] {
            assert_eq!(run(kind), run(kind), "{kind} must be deterministic");
        }
        let dup = run(FaultKind::DuplicateEvent);
        let clean: usize = trace.num_events();
        let mutated: usize = dup.iter().map(TraceChunk::num_events).sum();
        assert_eq!(mutated, clean + 1);
    }
}
