//! Shadow memory: reconstructing shared-memory state from a recorded trace.
//!
//! The paper uses shadow memory to keep per-critical-section read/write sets.
//! Those sets live on [`CriticalSection`](perfplay_trace::CriticalSection)
//! already; this module adds the piece the *reversed replay* benign check
//! needs — the value every shared object held at an arbitrary point of the
//! recorded execution, so a pair of critical sections can be re-executed in
//! both orders from the correct starting state.
//!
//! The detector used to materialize one full [`MemorySnapshot`] clone per
//! critical section (O(sections x objects) memory churn). The
//! [`LastWriteIndex`] replaces that: one O(E log E) sweep builds, per object,
//! the time-ordered log of its writes plus its first observed read, and any
//! "value just before virtual time `t`" query is then an O(log E) binary
//! search. [`StateBefore`] wraps the index as a lazy starting-state view, so
//! the reversed-replay check fetches exactly the footprint values it touches
//! and nothing else.

use std::collections::BTreeMap;

use perfplay_trace::{Event, ObjectId, Time, Trace};

/// A value source usable as the starting memory state of a reversed replay.
///
/// Implemented by the eager [`MemorySnapshot`] (tests, ad-hoc states) and by
/// the lazy [`StateBefore`] view over a [`LastWriteIndex`] (the detector's
/// hot path).
pub trait StartState {
    /// The value the object held in this state (zero when untracked).
    fn value(&self, obj: ObjectId) -> i64;
}

/// The recorded history of one shared object, in the stable global order
/// (time, then thread, then event index) the eager snapshot sweep used — so
/// equal-timestamp ties resolve identically to the historical
/// implementation.
#[derive(Debug, Clone, Default)]
struct ObjectHistory {
    /// `(completion time, resulting value)` of every write.
    writes: Vec<(Time, i64)>,
    /// The first read ever observed, which supplies the initial value for
    /// objects read before any write.
    first_read: Option<(Time, i64)>,
    /// The first observation of any kind, used as a last-resort fallback
    /// when reconstructing full snapshots.
    first_observation: (Time, i64),
}

/// Per-object history of one recorded execution, indexed for point lookups.
#[derive(Debug, Clone, Default)]
pub struct LastWriteIndex {
    objects: BTreeMap<ObjectId, ObjectHistory>,
}

impl LastWriteIndex {
    /// Builds the index in one sweep over the trace's memory events — a
    /// single map probe per event.
    pub fn build(trace: &Trace) -> Self {
        // Stable sort by completion time; ties keep `iter_events` order
        // (thread-major, then event index), matching the order in which a
        // chronological replay of the trace would apply them.
        let mut mem_events: Vec<(Time, &Event)> = trace
            .iter_events()
            .filter(|(_, _, te)| te.event.is_memory_access())
            .map(|(_, _, te)| (te.at, &te.event))
            .collect();
        mem_events.sort_by_key(|(at, _)| *at);

        let mut index = LastWriteIndex::default();
        for (at, event) in mem_events {
            let (obj, value, is_write) = match event {
                Event::Write { obj, value, .. } => (*obj, *value, true),
                Event::Read { obj, value } => (*obj, *value, false),
                _ => continue,
            };
            let history = index.objects.entry(obj).or_insert_with(|| ObjectHistory {
                writes: Vec::new(),
                first_read: None,
                first_observation: (at, value),
            });
            if is_write {
                history.writes.push((at, value));
            } else if history.first_read.is_none() {
                history.first_read = Some((at, value));
            }
        }
        index
    }

    /// The value `obj` held just before virtual time `at`, as a chronological
    /// replay of the trace would have it: the last write completing strictly
    /// before `at`, else the first read before `at` (reads observe the
    /// initial value until the first write), else `None`.
    pub fn value_before(&self, obj: ObjectId, at: Time) -> Option<i64> {
        let history = self.objects.get(&obj)?;
        let idx = history.writes.partition_point(|&(t, _)| t < at);
        if idx > 0 {
            return Some(history.writes[idx - 1].1);
        }
        match history.first_read {
            Some((t, v)) if t < at => Some(v),
            _ => None,
        }
    }

    /// Number of retained history entries: one per recorded write plus one
    /// per first-read anchor. The batch engines' counterpart of the
    /// streaming detector's `peak_history_entries` accounting.
    pub fn num_entries(&self) -> usize {
        self.objects
            .values()
            .map(|h| h.writes.len() + usize::from(h.first_read.is_some()))
            .sum()
    }

    /// Like [`value_before`](Self::value_before), but falling back to the
    /// first value the object is *ever* observed with (even later than `at`)
    /// — the best available guess for objects the trace has not touched yet.
    pub fn value_before_or_observed(&self, obj: ObjectId, at: Time) -> Option<i64> {
        self.value_before(obj, at)
            .or_else(|| self.objects.get(&obj).map(|h| h.first_observation.1))
    }

    /// Materializes the full [`MemorySnapshot`] just before `at`, covering
    /// every object the trace ever observes.
    pub fn snapshot_before(&self, at: Time) -> MemorySnapshot {
        let values = self
            .objects
            .keys()
            .filter_map(|&obj| self.value_before_or_observed(obj, at).map(|v| (obj, v)))
            .collect();
        MemorySnapshot { values }
    }

    /// A lazy starting-state view "just before `at`" over this index.
    pub fn state_before(&self, at: Time) -> StateBefore<'_> {
        StateBefore { index: self, at }
    }
}

/// Lazy view of shared memory just before a point in virtual time.
///
/// Cheap to construct (two words); every [`StartState::value`] call is an
/// O(log E) probe into the backing [`LastWriteIndex`].
#[derive(Debug, Clone, Copy)]
pub struct StateBefore<'a> {
    index: &'a LastWriteIndex,
    at: Time,
}

impl StartState for StateBefore<'_> {
    fn value(&self, obj: ObjectId) -> i64 {
        self.index.value_before(obj, self.at).unwrap_or(0)
    }
}

/// A snapshot of shared-memory values at some virtual time of the original
/// execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemorySnapshot {
    values: BTreeMap<ObjectId, i64>,
}

impl MemorySnapshot {
    /// Reconstructs the values all shared objects held just before virtual
    /// time `at` in the recorded execution.
    ///
    /// Values come from the last write before `at`; objects not yet written
    /// take the value observed by the first read before `at` (reads see the
    /// initial value until the first write), falling back to the first value
    /// the object is ever observed with, and finally to zero for objects the
    /// trace never touches.
    ///
    /// This is a convenience wrapper building a throwaway [`LastWriteIndex`];
    /// callers reconstructing state at many points should build the index
    /// once and use [`LastWriteIndex::snapshot_before`] or
    /// [`LastWriteIndex::state_before`] instead.
    pub fn before(trace: &Trace, at: Time) -> Self {
        LastWriteIndex::build(trace).snapshot_before(at)
    }

    /// Creates a snapshot from explicit values (used in tests and by the
    /// benign check's re-execution).
    pub fn from_values(values: BTreeMap<ObjectId, i64>) -> Self {
        MemorySnapshot { values }
    }

    /// Returns the value of an object, defaulting to zero for untracked
    /// objects.
    pub fn get(&self, obj: ObjectId) -> i64 {
        self.values.get(&obj).copied().unwrap_or(0)
    }

    /// Sets the value of an object.
    pub fn set(&mut self, obj: ObjectId, value: i64) {
        self.values.insert(obj, value);
    }

    /// Returns the values restricted to the given objects (used to compare
    /// the outcome of the two replay orders over the touched footprint).
    pub fn project(&self, objects: impl IntoIterator<Item = ObjectId>) -> BTreeMap<ObjectId, i64> {
        objects
            .into_iter()
            .map(|obj| (obj, self.get(obj)))
            .collect()
    }

    /// Number of objects with a known value.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if no object value is known.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl StartState for MemorySnapshot {
    fn value(&self, obj: ObjectId) -> i64 {
        self.get(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_trace::{CodeSiteId, LockId, Time, TraceMeta, WriteOp};

    fn trace_with_history() -> Trace {
        let mut trace = Trace::new(TraceMeta::default(), 1);
        let t = &mut trace.threads[0];
        let obj = ObjectId::new(0);
        let other = ObjectId::new(1);
        t.push(
            Time::from_nanos(1),
            Event::LockAcquire {
                lock: LockId::new(0),
                site: CodeSiteId::new(0),
            },
        );
        // Initial value of obj observed as 5 before any write.
        t.push(Time::from_nanos(2), Event::Read { obj, value: 5 });
        t.push(
            Time::from_nanos(3),
            Event::Write {
                obj,
                op: WriteOp::Set(9),
                value: 9,
            },
        );
        t.push(
            Time::from_nanos(5),
            Event::Write {
                obj: other,
                op: WriteOp::Add(2),
                value: 12,
            },
        );
        t.push(
            Time::from_nanos(6),
            Event::LockRelease {
                lock: LockId::new(0),
            },
        );
        trace.total_time = Time::from_nanos(6);
        trace
    }

    #[test]
    fn snapshot_before_first_write_sees_initial_value() {
        let trace = trace_with_history();
        let snap = MemorySnapshot::before(&trace, Time::from_nanos(3));
        assert_eq!(snap.get(ObjectId::new(0)), 5);
    }

    #[test]
    fn snapshot_after_write_sees_written_value() {
        let trace = trace_with_history();
        let snap = MemorySnapshot::before(&trace, Time::from_nanos(4));
        assert_eq!(snap.get(ObjectId::new(0)), 9);
    }

    #[test]
    fn never_written_object_falls_back_to_first_observation() {
        let trace = trace_with_history();
        // Before time 5 `other` has not been written; its first observation is
        // the write at t=5 with value 12, which is the best available guess.
        let snap = MemorySnapshot::before(&trace, Time::from_nanos(5));
        assert_eq!(snap.get(ObjectId::new(1)), 12);
        // Unknown objects default to zero.
        assert_eq!(snap.get(ObjectId::new(42)), 0);
    }

    #[test]
    fn project_and_mutate() {
        let mut snap = MemorySnapshot::from_values(
            [(ObjectId::new(0), 3), (ObjectId::new(1), 4)]
                .into_iter()
                .collect(),
        );
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());
        snap.set(ObjectId::new(0), 7);
        let projected = snap.project([ObjectId::new(0), ObjectId::new(9)]);
        assert_eq!(projected[&ObjectId::new(0)], 7);
        assert_eq!(projected[&ObjectId::new(9)], 0);
    }

    #[test]
    fn index_point_lookups_match_eager_snapshots() {
        let trace = trace_with_history();
        let index = LastWriteIndex::build(&trace);
        for at_ns in 0..8 {
            let at = Time::from_nanos(at_ns);
            let eager = index.snapshot_before(at);
            for raw in 0..3u64 {
                let obj = ObjectId::new(raw);
                assert_eq!(
                    index.value_before_or_observed(obj, at).unwrap_or(0),
                    eager.get(obj),
                    "object {raw} before t={at_ns}"
                );
            }
        }
    }

    #[test]
    fn state_before_uses_replay_semantics_without_future_fallback() {
        let trace = trace_with_history();
        let index = LastWriteIndex::build(&trace);
        let state = index.state_before(Time::from_nanos(5));
        // obj0: last write before t=5 is 9.
        assert_eq!(state.value(ObjectId::new(0)), 9);
        // obj1's only write is at t=5 (not strictly before): unknown -> 0.
        assert_eq!(state.value(ObjectId::new(1)), 0);
    }

    #[test]
    fn equal_timestamp_writes_resolve_in_thread_major_order() {
        let mut trace = Trace::new(TraceMeta::default(), 2);
        let obj = ObjectId::new(7);
        trace.threads[0].push(
            Time::from_nanos(4),
            Event::Write {
                obj,
                op: WriteOp::Set(1),
                value: 1,
            },
        );
        trace.threads[1].push(
            Time::from_nanos(4),
            Event::Write {
                obj,
                op: WriteOp::Set(2),
                value: 2,
            },
        );
        let index = LastWriteIndex::build(&trace);
        // The stable sort keeps thread 1's write last among the t=4 ties.
        assert_eq!(index.value_before(obj, Time::from_nanos(5)), Some(2));
        assert_eq!(index.value_before(obj, Time::from_nanos(4)), None);
    }
}
