//! Shadow memory: reconstructing shared-memory state from a recorded trace.
//!
//! The paper uses shadow memory to keep per-critical-section read/write sets.
//! Those sets live on [`CriticalSection`](perfplay_trace::CriticalSection)
//! already; this module adds the piece the *reversed replay* benign check
//! needs — the value every shared object held at an arbitrary point of the
//! recorded execution, so a pair of critical sections can be re-executed in
//! both orders from the correct starting state.

use std::collections::BTreeMap;

use perfplay_trace::{Event, ObjectId, Time, Trace};

/// A snapshot of shared-memory values at some virtual time of the original
/// execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemorySnapshot {
    values: BTreeMap<ObjectId, i64>,
}

impl MemorySnapshot {
    /// Reconstructs the values all shared objects held just before virtual
    /// time `at` in the recorded execution.
    ///
    /// Values come from the last write before `at`; objects not yet written
    /// take the value observed by any read before `at` (reads see the initial
    /// value until the first write), falling back to the first value the
    /// object is ever observed with, and finally to zero for objects the
    /// trace never touches.
    pub fn before(trace: &Trace, at: Time) -> Self {
        let mut last_write: BTreeMap<ObjectId, (Time, i64)> = BTreeMap::new();
        let mut earliest_observation: BTreeMap<ObjectId, (Time, i64)> = BTreeMap::new();
        let mut pre_read: BTreeMap<ObjectId, i64> = BTreeMap::new();

        for (_, _, te) in trace.iter_events() {
            match &te.event {
                Event::Write { obj, value, .. } => {
                    if te.at < at {
                        let entry = last_write.entry(*obj).or_insert((te.at, *value));
                        if te.at >= entry.0 {
                            *entry = (te.at, *value);
                        }
                    }
                    let first = earliest_observation.entry(*obj).or_insert((te.at, *value));
                    if te.at < first.0 {
                        *first = (te.at, *value);
                    }
                }
                Event::Read { obj, value } => {
                    if te.at < at && !last_write.contains_key(obj) {
                        pre_read.entry(*obj).or_insert(*value);
                    }
                    let first = earliest_observation.entry(*obj).or_insert((te.at, *value));
                    if te.at < first.0 {
                        *first = (te.at, *value);
                    }
                }
                _ => {}
            }
        }

        let mut values = BTreeMap::new();
        for (obj, (_, v)) in &earliest_observation {
            values.insert(*obj, *v);
        }
        for (obj, v) in &pre_read {
            values.insert(*obj, *v);
        }
        for (obj, (_, v)) in &last_write {
            values.insert(*obj, *v);
        }
        MemorySnapshot { values }
    }

    /// Creates a snapshot from explicit values (used in tests and by the
    /// benign check's re-execution).
    pub fn from_values(values: BTreeMap<ObjectId, i64>) -> Self {
        MemorySnapshot { values }
    }

    /// Returns the value of an object, defaulting to zero for untracked
    /// objects.
    pub fn get(&self, obj: ObjectId) -> i64 {
        self.values.get(&obj).copied().unwrap_or(0)
    }

    /// Sets the value of an object.
    pub fn set(&mut self, obj: ObjectId, value: i64) {
        self.values.insert(obj, value);
    }

    /// Returns the values restricted to the given objects (used to compare
    /// the outcome of the two replay orders over the touched footprint).
    pub fn project(&self, objects: impl IntoIterator<Item = ObjectId>) -> BTreeMap<ObjectId, i64> {
        objects
            .into_iter()
            .map(|obj| (obj, self.get(obj)))
            .collect()
    }

    /// Number of objects with a known value.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if no object value is known.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfplay_trace::{CodeSiteId, LockId, Time, TraceMeta, WriteOp};

    fn trace_with_history() -> Trace {
        let mut trace = Trace::new(TraceMeta::default(), 1);
        let t = &mut trace.threads[0];
        let obj = ObjectId::new(0);
        let other = ObjectId::new(1);
        t.push(
            Time::from_nanos(1),
            Event::LockAcquire {
                lock: LockId::new(0),
                site: CodeSiteId::new(0),
            },
        );
        // Initial value of obj observed as 5 before any write.
        t.push(Time::from_nanos(2), Event::Read { obj, value: 5 });
        t.push(
            Time::from_nanos(3),
            Event::Write {
                obj,
                op: WriteOp::Set(9),
                value: 9,
            },
        );
        t.push(
            Time::from_nanos(5),
            Event::Write {
                obj: other,
                op: WriteOp::Add(2),
                value: 12,
            },
        );
        t.push(Time::from_nanos(6), Event::LockRelease { lock: LockId::new(0) });
        trace.total_time = Time::from_nanos(6);
        trace
    }

    #[test]
    fn snapshot_before_first_write_sees_initial_value() {
        let trace = trace_with_history();
        let snap = MemorySnapshot::before(&trace, Time::from_nanos(3));
        assert_eq!(snap.get(ObjectId::new(0)), 5);
    }

    #[test]
    fn snapshot_after_write_sees_written_value() {
        let trace = trace_with_history();
        let snap = MemorySnapshot::before(&trace, Time::from_nanos(4));
        assert_eq!(snap.get(ObjectId::new(0)), 9);
    }

    #[test]
    fn never_written_object_falls_back_to_first_observation() {
        let trace = trace_with_history();
        // Before time 5 `other` has not been written; its first observation is
        // the write at t=5 with value 12, which is the best available guess.
        let snap = MemorySnapshot::before(&trace, Time::from_nanos(5));
        assert_eq!(snap.get(ObjectId::new(1)), 12);
        // Unknown objects default to zero.
        assert_eq!(snap.get(ObjectId::new(42)), 0);
    }

    #[test]
    fn project_and_mutate() {
        let mut snap = MemorySnapshot::from_values(
            [(ObjectId::new(0), 3), (ObjectId::new(1), 4)].into_iter().collect(),
        );
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());
        snap.set(ObjectId::new(0), 7);
        let projected = snap.project([ObjectId::new(0), ObjectId::new(9)]);
        assert_eq!(projected[&ObjectId::new(0)], 7);
        assert_eq!(projected[&ObjectId::new(9)], 0);
    }
}
