//! # perfplay-detect
//!
//! ULCP identification for the PerfPlay framework.
//!
//! Given a recorded trace this crate finds every **unnecessary lock
//! contention pair (ULCP)** — two critical sections protected by the same
//! lock whose bodies do not actually conflict — and every **true lock
//! contention pair (TLCP)**, which later becomes a causal edge of the
//! ULCP-free topology.
//!
//! The stages mirror Section 3.1 of the paper:
//!
//! 1. critical sections and their shadow-memory read/write sets come from
//!    [`perfplay_trace::extract_critical_sections`];
//! 2. [`classify_by_sets`] implements Algorithm 1 (null-lock / read-read /
//!    disjoint-write by set intersection);
//! 3. [`refine_conflicting_pair`] implements the reversed-replay check that
//!    separates benign ULCPs from real conflicts;
//! 4. [`Detector::analyze`] runs the sequential-search pairing over every
//!    lock and produces the [`UlcpAnalysis`] (pairs, causal edges, and the
//!    per-category [`UlcpBreakdown`] that reproduces a row of Table 1).
//!
//! For traces too large to hold in memory, [`StreamingDetector`] consumes a
//! chunked event stream (`perfplay_trace::EventSource`) and produces the
//! same [`UlcpAnalysis`] bit-for-bit while keeping only bounded incremental
//! state resident.
//!
//! Every engine emits its classified pairs through a [`UlcpSink`]. The
//! default [`CollectPairs`] sink materializes the historical pair list;
//! [`SiteAggregator`] instead folds each pair into a per-(code-site,
//! code-site, kind) aggregate at emission time, so dense traces (tens of
//! millions of pairs) can be analyzed with output memory proportional to the
//! number of *code sites*, which is what the report layer groups by anyway.
//! [`PlanAggregator`] extends the aggregate with the causal edges and benign
//! pairs — the only individual pairs any later pipeline stage needs — so one
//! pass produces a [`DetectionPlan`] that drives transformation, replay and
//! reporting without a pair list ever existing.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod classify;
mod inject;
mod kinds;
mod pairing;
mod parallel_stream;
mod plan;
mod reference;
mod shadow;
mod sink;
mod streaming;

pub use classify::{classify_by_sets, classify_pair, refine_conflicting_pair};
pub use inject::{corrupt_chunk_file, FaultInjector, FaultKind, FaultPlan};
pub use kinds::{PairClass, UlcpKind};
pub use pairing::{CausalEdge, Detector, DetectorConfig, Ulcp, UlcpAnalysis, UlcpBreakdown};
pub use parallel_stream::ParallelStreamingDetector;
pub use plan::{DetectionPlan, PlanAggregator, PlanError};
pub use reference::{reference_analyze, reference_analyze_with};
pub use shadow::{LastWriteIndex, MemorySnapshot, StartState, StateBefore};
pub use sink::{
    BodyOverlapGain, CollectPairs, EdgeAggregate, GainSource, NoGain, SectionCtx, SinkAnalysis,
    SiteAggregate, SiteAggregates, SiteAggregator, UlcpSink,
};
pub use streaming::{StreamingAnalysis, StreamingDetector, StreamingSinkAnalysis, StreamingStats};
