//! Statements of the lock-program intermediate representation.
//!
//! The IR models exactly the behaviours the PerfPlay paper's workloads
//! exhibit: thread-local computation, critical sections, shared reads and
//! writes, data-dependent branches (the source of null-locks, Figure 3),
//! loops, spin-waits (the OpenLDAP case of Figure 4), condition variables
//! (the pthread_cond_wait case), and barriers.

use perfplay_trace::{BarrierId, CodeSiteId, CondId, LockId, ObjectId, Time, WriteOp};
use serde::{Deserialize, Serialize};

/// Identifier of a thread-local variable.
///
/// Locals hold values read from shared memory so that later branches can
/// depend on them (e.g. `if (local_variable) shared_variable++` from the
/// paper's null-lock model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocalId(u32);

impl LocalId {
    /// Creates a local-variable id.
    pub const fn new(index: u32) -> Self {
        LocalId(index)
    }

    /// Returns the dense index of this local.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LocalId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// The source of a value used in a condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValueSource {
    /// A constant.
    Const(i64),
    /// A thread-local variable (set by a prior [`Stmt::Read`] or
    /// [`Stmt::SetLocal`]).
    Local(LocalId),
    /// A shared object, read at condition-evaluation time. When evaluated
    /// inside a critical section this counts as a shared read for the ULCP
    /// analysis.
    Shared(ObjectId),
}

/// Comparison operators for conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than.
    Lt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

/// A boolean condition comparing a value source against a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cond {
    /// Left-hand side of the comparison.
    pub lhs: ValueSource,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side constant.
    pub rhs: i64,
}

impl Cond {
    /// Condition `source == value`.
    pub fn eq(lhs: ValueSource, rhs: i64) -> Self {
        Cond {
            lhs,
            op: CmpOp::Eq,
            rhs,
        }
    }

    /// Condition `source != value`.
    pub fn ne(lhs: ValueSource, rhs: i64) -> Self {
        Cond {
            lhs,
            op: CmpOp::Ne,
            rhs,
        }
    }

    /// Condition `source < value`.
    pub fn lt(lhs: ValueSource, rhs: i64) -> Self {
        Cond {
            lhs,
            op: CmpOp::Lt,
            rhs,
        }
    }

    /// Condition `source >= value`.
    pub fn ge(lhs: ValueSource, rhs: i64) -> Self {
        Cond {
            lhs,
            op: CmpOp::Ge,
            rhs,
        }
    }
}

/// One statement of a thread body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// Thread-local computation costing `cost` virtual time.
    Compute {
        /// Virtual time consumed.
        cost: Time,
    },
    /// A critical section: acquire `lock`, run `body`, release `lock`.
    Lock {
        /// Lock protecting the section.
        lock: LockId,
        /// Static code site of this lock/unlock pair.
        site: CodeSiteId,
        /// Statements executed while holding the lock.
        body: Vec<Stmt>,
    },
    /// Read a shared object, optionally storing the observed value into a
    /// local variable.
    Read {
        /// Object to read.
        obj: ObjectId,
        /// Local to store the value into, if any.
        into: Option<LocalId>,
    },
    /// Write a shared object.
    Write {
        /// Object to write.
        obj: ObjectId,
        /// Operation applied to the object's current value.
        op: WriteOp,
    },
    /// Set a thread-local variable to a constant.
    SetLocal {
        /// Local to set.
        local: LocalId,
        /// New value.
        value: i64,
    },
    /// Two-armed conditional.
    If {
        /// Condition to evaluate.
        cond: Cond,
        /// Statements run when the condition holds.
        then_branch: Vec<Stmt>,
        /// Statements run otherwise.
        else_branch: Vec<Stmt>,
    },
    /// Fixed-count loop.
    Loop {
        /// Number of iterations.
        count: u32,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Condition-controlled loop (spin-wait). `max_iters` bounds execution so
    /// simulation always terminates; a spin loop that hits the bound simply
    /// stops iterating.
    While {
        /// Loop condition, re-evaluated before each iteration.
        cond: Cond,
        /// Loop body.
        body: Vec<Stmt>,
        /// Upper bound on iterations.
        max_iters: u32,
    },
    /// `pthread_cond_wait`-style wait on `cond` with `lock` held.
    CondWait {
        /// Condition variable.
        cond: CondId,
        /// Lock released while waiting.
        lock: LockId,
    },
    /// Signal or broadcast a condition variable.
    CondSignal {
        /// Condition variable.
        cond: CondId,
        /// Wake all waiters instead of one.
        broadcast: bool,
    },
    /// Wait at a barrier.
    Barrier {
        /// Barrier to wait at.
        barrier: BarrierId,
    },
    /// A selectively-recorded region (system call, library call) that replay
    /// bypasses, charging `cost` instead.
    SkipRegion {
        /// Code site naming the region.
        site: CodeSiteId,
        /// Original cost of the region.
        cost: Time,
    },
    /// Checkpoint marker.
    Checkpoint {
        /// User-assigned checkpoint number.
        id: u32,
    },
}

impl Stmt {
    /// Returns the nested statement lists of this statement (empty for
    /// leaves). Useful for structural traversals.
    pub fn children(&self) -> Vec<&[Stmt]> {
        match self {
            Stmt::Lock { body, .. } | Stmt::Loop { body, .. } | Stmt::While { body, .. } => {
                vec![body.as_slice()]
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => vec![then_branch.as_slice(), else_branch.as_slice()],
            _ => Vec::new(),
        }
    }

    /// Counts this statement plus all statements nested inside it.
    pub fn size(&self) -> usize {
        1 + self
            .children()
            .into_iter()
            .flat_map(|c| c.iter())
            .map(Stmt::size)
            .sum::<usize>()
    }
}

/// Counts all statements in a statement list, including nested ones.
pub fn stmt_count(stmts: &[Stmt]) -> usize {
    stmts.iter().map(Stmt::size).sum()
}

/// Visits every statement in a statement list in pre-order.
pub fn visit_stmts<'a>(stmts: &'a [Stmt], visit: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        visit(s);
        for child in s.children() {
            visit_stmts(child, visit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_eval() {
        assert!(CmpOp::Eq.eval(3, 3));
        assert!(CmpOp::Ne.eval(3, 4));
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
        assert!(!CmpOp::Eq.eval(1, 0));
    }

    #[test]
    fn cond_constructors() {
        let c = Cond::eq(ValueSource::Const(1), 1);
        assert_eq!(c.op, CmpOp::Eq);
        assert_eq!(Cond::ne(ValueSource::Const(0), 1).op, CmpOp::Ne);
        assert_eq!(Cond::lt(ValueSource::Const(0), 1).op, CmpOp::Lt);
        assert_eq!(Cond::ge(ValueSource::Const(0), 1).op, CmpOp::Ge);
    }

    #[test]
    fn stmt_size_counts_nested() {
        let inner = Stmt::Read {
            obj: ObjectId::new(0),
            into: None,
        };
        let cs = Stmt::Lock {
            lock: LockId::new(0),
            site: CodeSiteId::new(0),
            body: vec![inner.clone(), inner.clone()],
        };
        assert_eq!(cs.size(), 3);
        let ifs = Stmt::If {
            cond: Cond::eq(ValueSource::Const(0), 0),
            then_branch: vec![cs.clone()],
            else_branch: vec![],
        };
        assert_eq!(ifs.size(), 4);
        assert_eq!(stmt_count(&[ifs, cs]), 7);
    }

    #[test]
    fn visit_stmts_preorder() {
        let prog = vec![
            Stmt::Compute {
                cost: Time::from_nanos(1),
            },
            Stmt::Loop {
                count: 2,
                body: vec![Stmt::Write {
                    obj: ObjectId::new(1),
                    op: WriteOp::Add(1),
                }],
            },
        ];
        let mut kinds = Vec::new();
        visit_stmts(&prog, &mut |s| {
            kinds.push(std::mem::discriminant(s));
        });
        assert_eq!(kinds.len(), 3);
    }

    #[test]
    fn local_id_display() {
        assert_eq!(LocalId::new(4).to_string(), "l4");
        assert_eq!(LocalId::new(4).index(), 4);
    }

    #[test]
    fn stmt_serde_roundtrip() {
        let s = Stmt::While {
            cond: Cond::eq(ValueSource::Shared(ObjectId::new(2)), 0),
            body: vec![Stmt::Compute {
                cost: Time::from_nanos(10),
            }],
            max_iters: 100,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: Stmt = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
