//! # perfplay-program
//!
//! A small imperative intermediate representation (IR) for lock-based
//! multi-threaded programs, together with fluent builders.
//!
//! The PerfPlay paper instruments real x86 binaries with Intel Pin; this
//! reproduction instead expresses workloads in this IR and executes them on
//! the deterministic `perfplay-sim` simulator, recording exactly the event
//! stream the paper's recorder would capture (see `DESIGN.md` for the
//! substitution argument). The IR covers the behaviours that give rise to the
//! paper's four ULCP categories:
//!
//! * **null-locks** — critical sections whose shared accesses sit behind a
//!   data-dependent branch ([`Stmt::If`] on a local, Figure 3 of the paper),
//! * **read-read** — sections that only [`Stmt::Read`] shared data
//!   (Figure 4's `dbmfp->ref` spin-wait),
//! * **disjoint-write** — sections writing different
//!   [`ObjectId`](perfplay_trace::ObjectId)s under one lock,
//! * **benign** — conflicting but commuting writes (same-value stores,
//!   disjoint-bit style updates) expressed through
//!   [`WriteOp`](perfplay_trace::WriteOp).
//!
//! See [`ProgramBuilder`] for the entry point.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod program;
mod stmt;

pub use builder::{BodyBuilder, ProgramBuilder};
pub use program::{BarrierDecl, ObjectDecl, Program, ProgramError, ProgramStats, ThreadSpec};
pub use stmt::{stmt_count, visit_stmts, CmpOp, Cond, LocalId, Stmt, ValueSource};
