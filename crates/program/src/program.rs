//! The lock-program: declarations plus one statement list per thread.

use std::collections::BTreeSet;

use perfplay_trace::{BarrierId, CodeSiteId, CondId, LockId, ObjectId, SiteTable, Time};
use serde::{Deserialize, Serialize};

use crate::stmt::{stmt_count, visit_stmts, Stmt, ValueSource};

/// Declaration of a shared object with its initial value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectDecl {
    /// Human-readable name (e.g. `dbmfp->ref`).
    pub name: String,
    /// Initial value at program start.
    pub init: i64,
}

/// Declaration of a barrier and how many threads participate in it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BarrierDecl {
    /// Human-readable name.
    pub name: String,
    /// Number of arrivals that release the barrier.
    pub participants: usize,
}

/// The body of one thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadSpec {
    /// Human-readable name (e.g. `consumer-0`).
    pub name: String,
    /// Statements executed by the thread, in order.
    pub body: Vec<Stmt>,
}

/// A complete multi-threaded lock program.
///
/// Programs are produced by hand, by the
/// [`ProgramBuilder`](crate::ProgramBuilder), or by the workload generators,
/// and are executed by the `perfplay-sim` simulator under the control of the
/// `perfplay-record` recorder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Program name (used as the trace's program name).
    pub name: String,
    /// Free-form description of the input configuration.
    pub input: String,
    /// Interned code sites referenced by `Stmt::Lock` / `Stmt::SkipRegion`.
    pub sites: SiteTable,
    /// Lock names; index is the [`LockId`].
    pub locks: Vec<String>,
    /// Shared object declarations; index is the [`ObjectId`].
    pub objects: Vec<ObjectDecl>,
    /// Condition variable names; index is the [`CondId`].
    pub conds: Vec<String>,
    /// Barrier declarations; index is the [`BarrierId`].
    pub barriers: Vec<BarrierDecl>,
    /// Thread bodies.
    pub threads: Vec<ThreadSpec>,
}

/// Errors reported by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A statement references a lock that was never declared.
    UnknownLock(LockId),
    /// A statement references a shared object that was never declared.
    UnknownObject(ObjectId),
    /// A statement references a condition variable that was never declared.
    UnknownCond(CondId),
    /// A statement references a barrier that was never declared.
    UnknownBarrier(BarrierId),
    /// A statement references a code site missing from the site table.
    UnknownSite(CodeSiteId),
    /// A `While` loop with a zero iteration bound can never run and is
    /// almost certainly a construction bug.
    ZeroBoundWhile,
    /// A barrier declares zero participants.
    EmptyBarrier(BarrierId),
    /// The program has no threads.
    NoThreads,
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::UnknownLock(l) => write!(f, "statement references undeclared lock {l}"),
            ProgramError::UnknownObject(o) => {
                write!(f, "statement references undeclared object {o}")
            }
            ProgramError::UnknownCond(c) => {
                write!(f, "statement references undeclared condition variable {c}")
            }
            ProgramError::UnknownBarrier(b) => {
                write!(f, "statement references undeclared barrier {b}")
            }
            ProgramError::UnknownSite(s) => write!(f, "statement references unknown code site {s}"),
            ProgramError::ZeroBoundWhile => write!(f, "while loop has a zero iteration bound"),
            ProgramError::EmptyBarrier(b) => write!(f, "barrier {b} declares zero participants"),
            ProgramError::NoThreads => write!(f, "program has no threads"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// Structural statistics of a program.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramStats {
    /// Number of threads.
    pub threads: usize,
    /// Number of declared locks.
    pub locks: usize,
    /// Number of declared shared objects.
    pub objects: usize,
    /// Total statements across all threads (nested statements included).
    pub statements: usize,
    /// Number of static critical sections (`Stmt::Lock` occurrences).
    pub static_critical_sections: usize,
    /// Distinct code sites used by critical sections.
    pub critical_section_sites: usize,
}

impl Program {
    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Number of declared locks.
    pub fn num_locks(&self) -> usize {
        self.locks.len()
    }

    /// Number of declared shared objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Computes structural statistics.
    pub fn stats(&self) -> ProgramStats {
        let mut statements = 0;
        let mut static_cs = 0;
        let mut cs_sites = BTreeSet::new();
        for t in &self.threads {
            statements += stmt_count(&t.body);
            visit_stmts(&t.body, &mut |s| {
                if let Stmt::Lock { site, .. } = s {
                    static_cs += 1;
                    cs_sites.insert(*site);
                }
            });
        }
        ProgramStats {
            threads: self.threads.len(),
            locks: self.locks.len(),
            objects: self.objects.len(),
            statements,
            static_critical_sections: static_cs,
            critical_section_sites: cs_sites.len(),
        }
    }

    /// Sum of all `Compute` and `SkipRegion` costs in the program text (an
    /// upper bound on per-run intrinsic cost for programs without loops).
    pub fn static_compute_cost(&self) -> Time {
        let mut total = Time::ZERO;
        for t in &self.threads {
            visit_stmts(&t.body, &mut |s| match s {
                Stmt::Compute { cost } | Stmt::SkipRegion { cost, .. } => total += *cost,
                _ => {}
            });
        }
        total
    }

    /// Checks that every identifier referenced by a statement has been
    /// declared and that loop/barrier bounds are sane.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.threads.is_empty() {
            return Err(ProgramError::NoThreads);
        }
        for (i, b) in self.barriers.iter().enumerate() {
            if b.participants == 0 {
                return Err(ProgramError::EmptyBarrier(BarrierId::new(i as u32)));
            }
        }
        for t in &self.threads {
            let mut result = Ok(());
            visit_stmts(&t.body, &mut |s| {
                if result.is_ok() {
                    result = self.check_stmt(s);
                }
            });
            result?;
        }
        Ok(())
    }

    fn check_value_source(&self, v: ValueSource) -> Result<(), ProgramError> {
        if let ValueSource::Shared(obj) = v {
            if obj.raw() as usize >= self.objects.len() {
                return Err(ProgramError::UnknownObject(obj));
            }
        }
        Ok(())
    }

    fn check_stmt(&self, s: &Stmt) -> Result<(), ProgramError> {
        match s {
            Stmt::Lock { lock, site, .. } => {
                if lock.index() >= self.locks.len() {
                    return Err(ProgramError::UnknownLock(*lock));
                }
                if self.sites.get(*site).is_none() {
                    return Err(ProgramError::UnknownSite(*site));
                }
            }
            Stmt::Read { obj, .. } | Stmt::Write { obj, .. }
                if obj.raw() as usize >= self.objects.len() =>
            {
                return Err(ProgramError::UnknownObject(*obj));
            }
            Stmt::If { cond, .. } => self.check_value_source(cond.lhs)?,
            Stmt::While {
                cond, max_iters, ..
            } => {
                self.check_value_source(cond.lhs)?;
                if *max_iters == 0 {
                    return Err(ProgramError::ZeroBoundWhile);
                }
            }
            Stmt::CondWait { cond, lock } => {
                if cond.index() >= self.conds.len() {
                    return Err(ProgramError::UnknownCond(*cond));
                }
                if lock.index() >= self.locks.len() {
                    return Err(ProgramError::UnknownLock(*lock));
                }
            }
            Stmt::CondSignal { cond, .. } if cond.index() >= self.conds.len() => {
                return Err(ProgramError::UnknownCond(*cond));
            }
            Stmt::Barrier { barrier } if barrier.index() >= self.barriers.len() => {
                return Err(ProgramError::UnknownBarrier(*barrier));
            }
            Stmt::SkipRegion { site, .. } if self.sites.get(*site).is_none() => {
                return Err(ProgramError::UnknownSite(*site));
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use perfplay_trace::WriteOp;

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new("tiny");
        let lock = b.lock("m");
        let obj = b.shared("x", 0);
        let site = b.site("a.c", "f", 10);
        b.thread("t0", |t| {
            t.compute_ns(10);
            t.locked(lock, site, |cs| {
                cs.read(obj);
            });
        });
        b.thread("t1", |t| {
            t.locked(lock, site, |cs| {
                cs.write_add(obj, 1);
            });
        });
        b.build()
    }

    #[test]
    fn stats_count_threads_and_sections() {
        let p = tiny_program();
        let stats = p.stats();
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.locks, 1);
        assert_eq!(stats.objects, 1);
        assert_eq!(stats.static_critical_sections, 2);
        assert_eq!(stats.critical_section_sites, 1);
        assert!(stats.statements >= 5);
        assert_eq!(p.num_threads(), 2);
        assert_eq!(p.num_locks(), 1);
        assert_eq!(p.num_objects(), 1);
    }

    #[test]
    fn static_compute_cost_sums_compute() {
        let p = tiny_program();
        assert_eq!(p.static_compute_cost(), Time::from_nanos(10));
    }

    #[test]
    fn validate_accepts_builder_output() {
        assert_eq!(tiny_program().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_unknown_lock() {
        let mut p = tiny_program();
        p.threads[0].body.push(Stmt::Lock {
            lock: LockId::new(9),
            site: CodeSiteId::new(0),
            body: vec![],
        });
        assert_eq!(p.validate(), Err(ProgramError::UnknownLock(LockId::new(9))));
    }

    #[test]
    fn validate_rejects_unknown_object_and_site() {
        let mut p = tiny_program();
        p.threads[0].body.push(Stmt::Write {
            obj: ObjectId::new(77),
            op: WriteOp::Set(0),
        });
        assert!(matches!(p.validate(), Err(ProgramError::UnknownObject(_))));

        let mut p2 = tiny_program();
        p2.threads[0].body.push(Stmt::SkipRegion {
            site: CodeSiteId::new(99),
            cost: Time::ZERO,
        });
        assert!(matches!(p2.validate(), Err(ProgramError::UnknownSite(_))));
    }

    #[test]
    fn validate_rejects_zero_bound_while_and_empty_barrier() {
        let mut p = tiny_program();
        p.threads[0].body.push(Stmt::While {
            cond: crate::stmt::Cond::eq(ValueSource::Const(0), 0),
            body: vec![],
            max_iters: 0,
        });
        assert_eq!(p.validate(), Err(ProgramError::ZeroBoundWhile));

        let mut p2 = tiny_program();
        p2.barriers.push(BarrierDecl {
            name: "b".into(),
            participants: 0,
        });
        assert!(matches!(p2.validate(), Err(ProgramError::EmptyBarrier(_))));
    }

    #[test]
    fn validate_rejects_empty_program_and_unknown_cond() {
        let p = Program {
            name: "empty".into(),
            input: String::new(),
            sites: SiteTable::new(),
            locks: vec![],
            objects: vec![],
            conds: vec![],
            barriers: vec![],
            threads: vec![],
        };
        assert_eq!(p.validate(), Err(ProgramError::NoThreads));

        let mut p2 = tiny_program();
        p2.threads[0].body.push(Stmt::CondSignal {
            cond: CondId::new(3),
            broadcast: false,
        });
        assert!(matches!(p2.validate(), Err(ProgramError::UnknownCond(_))));
    }

    #[test]
    fn error_display() {
        assert!(ProgramError::UnknownLock(LockId::new(1))
            .to_string()
            .contains("L1"));
        assert!(ProgramError::NoThreads.to_string().contains("no threads"));
    }

    #[test]
    fn program_serde_roundtrip() {
        let p = tiny_program();
        let json = serde_json::to_string(&p).unwrap();
        let back: Program = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
