//! Fluent builders for constructing lock programs.
//!
//! The workloads crate builds every synthetic application model through this
//! API; examples use it directly. Declarations (locks, shared objects,
//! condition variables, barriers, code sites) are made on the
//! [`ProgramBuilder`]; thread bodies are described with a [`BodyBuilder`]
//! inside closures so nesting follows the program's lexical structure.
//!
//! ```
//! use perfplay_program::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new("demo");
//! let lock = b.lock("cache_mutex");
//! let hits = b.shared("hits", 0);
//! let site = b.site("cache.c", "lookup", 42);
//! for i in 0..2 {
//!     b.thread(format!("worker-{i}"), |t| {
//!         t.compute_us(1);
//!         t.locked(lock, site, |cs| {
//!             cs.read(hits);
//!             cs.compute_ns(50);
//!         });
//!     });
//! }
//! let program = b.build();
//! assert_eq!(program.num_threads(), 2);
//! assert!(program.validate().is_ok());
//! ```

use perfplay_trace::{
    BarrierId, CodeSite, CodeSiteId, CondId, LockId, ObjectId, SiteTable, Time, WriteOp,
};

use crate::program::{BarrierDecl, ObjectDecl, Program, ThreadSpec};
use crate::stmt::{Cond, LocalId, Stmt, ValueSource};

/// Builder for a [`Program`].
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    input: String,
    sites: SiteTable,
    locks: Vec<String>,
    objects: Vec<ObjectDecl>,
    conds: Vec<String>,
    barriers: Vec<BarrierDecl>,
    threads: Vec<ThreadSpec>,
}

impl ProgramBuilder {
    /// Starts building a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            input: String::new(),
            sites: SiteTable::new(),
            locks: Vec::new(),
            objects: Vec::new(),
            conds: Vec::new(),
            barriers: Vec::new(),
            threads: Vec::new(),
        }
    }

    /// Sets the free-form input description (e.g. `simlarge`).
    pub fn input(&mut self, input: impl Into<String>) -> &mut Self {
        self.input = input.into();
        self
    }

    /// Declares an application lock and returns its id.
    pub fn lock(&mut self, name: impl Into<String>) -> LockId {
        self.locks.push(name.into());
        LockId::new((self.locks.len() - 1) as u32)
    }

    /// Declares a shared object with an initial value and returns its id.
    pub fn shared(&mut self, name: impl Into<String>, init: i64) -> ObjectId {
        self.objects.push(ObjectDecl {
            name: name.into(),
            init,
        });
        ObjectId::new((self.objects.len() - 1) as u64)
    }

    /// Declares a condition variable and returns its id.
    pub fn condvar(&mut self, name: impl Into<String>) -> CondId {
        self.conds.push(name.into());
        CondId::new((self.conds.len() - 1) as u32)
    }

    /// Declares a barrier with the given participant count and returns its id.
    pub fn barrier(&mut self, name: impl Into<String>, participants: usize) -> BarrierId {
        self.barriers.push(BarrierDecl {
            name: name.into(),
            participants,
        });
        BarrierId::new((self.barriers.len() - 1) as u32)
    }

    /// Interns a code site (file, function, line) and returns its id.
    pub fn site(
        &mut self,
        file: impl Into<String>,
        function: impl Into<String>,
        line: u32,
    ) -> CodeSiteId {
        self.sites.intern(CodeSite::new(file, function, line))
    }

    /// Adds a thread whose body is described by the closure.
    pub fn thread(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut BodyBuilder),
    ) -> &mut Self {
        let mut body = BodyBuilder::new();
        f(&mut body);
        self.threads.push(ThreadSpec {
            name: name.into(),
            body: body.finish(),
        });
        self
    }

    /// Adds a thread with an explicit statement list.
    pub fn thread_with_body(&mut self, name: impl Into<String>, body: Vec<Stmt>) -> &mut Self {
        self.threads.push(ThreadSpec {
            name: name.into(),
            body,
        });
        self
    }

    /// Finishes the builder and returns the program.
    pub fn build(self) -> Program {
        Program {
            name: self.name,
            input: self.input,
            sites: self.sites,
            locks: self.locks,
            objects: self.objects,
            conds: self.conds,
            barriers: self.barriers,
            threads: self.threads,
        }
    }
}

/// Builder for a statement list (a thread body, critical-section body, loop
/// body or branch arm).
#[derive(Debug, Default)]
pub struct BodyBuilder {
    stmts: Vec<Stmt>,
    next_local: u32,
}

impl BodyBuilder {
    /// Creates an empty body builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn child(&self) -> BodyBuilder {
        BodyBuilder {
            stmts: Vec::new(),
            next_local: self.next_local,
        }
    }

    /// Returns the accumulated statements.
    pub fn finish(self) -> Vec<Stmt> {
        self.stmts
    }

    /// Allocates a fresh thread-local variable id.
    pub fn local(&mut self) -> LocalId {
        let id = LocalId::new(self.next_local);
        self.next_local += 1;
        id
    }

    /// Appends a raw statement.
    pub fn push(&mut self, stmt: Stmt) -> &mut Self {
        self.stmts.push(stmt);
        self
    }

    /// Thread-local computation of `nanos` virtual nanoseconds.
    pub fn compute_ns(&mut self, nanos: u64) -> &mut Self {
        self.push(Stmt::Compute {
            cost: Time::from_nanos(nanos),
        })
    }

    /// Thread-local computation of `micros` virtual microseconds.
    pub fn compute_us(&mut self, micros: u64) -> &mut Self {
        self.push(Stmt::Compute {
            cost: Time::from_micros(micros),
        })
    }

    /// Thread-local computation with an explicit [`Time`] cost.
    pub fn compute(&mut self, cost: Time) -> &mut Self {
        self.push(Stmt::Compute { cost })
    }

    /// A critical section protected by `lock`, attributed to `site`.
    pub fn locked(
        &mut self,
        lock: LockId,
        site: CodeSiteId,
        f: impl FnOnce(&mut BodyBuilder),
    ) -> &mut Self {
        let mut body = self.child();
        f(&mut body);
        self.next_local = body.next_local;
        let body = body.finish();
        self.push(Stmt::Lock { lock, site, body })
    }

    /// Reads a shared object (value discarded).
    pub fn read(&mut self, obj: ObjectId) -> &mut Self {
        self.push(Stmt::Read { obj, into: None })
    }

    /// Reads a shared object into a fresh local, returning the local id.
    pub fn read_into(&mut self, obj: ObjectId) -> LocalId {
        let local = self.local();
        self.push(Stmt::Read {
            obj,
            into: Some(local),
        });
        local
    }

    /// Writes an absolute value to a shared object.
    pub fn write_set(&mut self, obj: ObjectId, value: i64) -> &mut Self {
        self.push(Stmt::Write {
            obj,
            op: WriteOp::Set(value),
        })
    }

    /// Adds a delta to a shared object.
    pub fn write_add(&mut self, obj: ObjectId, delta: i64) -> &mut Self {
        self.push(Stmt::Write {
            obj,
            op: WriteOp::Add(delta),
        })
    }

    /// Sets a local variable to a constant.
    pub fn set_local(&mut self, local: LocalId, value: i64) -> &mut Self {
        self.push(Stmt::SetLocal { local, value })
    }

    /// Two-armed conditional.
    pub fn if_else(
        &mut self,
        cond: Cond,
        then_f: impl FnOnce(&mut BodyBuilder),
        else_f: impl FnOnce(&mut BodyBuilder),
    ) -> &mut Self {
        let mut then_b = self.child();
        then_f(&mut then_b);
        self.next_local = then_b.next_local;
        let mut else_b = self.child();
        else_f(&mut else_b);
        self.next_local = else_b.next_local;
        let (then_branch, else_branch) = (then_b.finish(), else_b.finish());
        self.push(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    /// One-armed conditional.
    pub fn if_then(&mut self, cond: Cond, then_f: impl FnOnce(&mut BodyBuilder)) -> &mut Self {
        self.if_else(cond, then_f, |_| {})
    }

    /// Fixed-count loop.
    pub fn loop_n(&mut self, count: u32, f: impl FnOnce(&mut BodyBuilder)) -> &mut Self {
        let mut body = self.child();
        f(&mut body);
        self.next_local = body.next_local;
        let body = body.finish();
        self.push(Stmt::Loop { count, body })
    }

    /// Condition-controlled loop bounded by `max_iters`.
    pub fn while_cond(
        &mut self,
        cond: Cond,
        max_iters: u32,
        f: impl FnOnce(&mut BodyBuilder),
    ) -> &mut Self {
        let mut body = self.child();
        f(&mut body);
        self.next_local = body.next_local;
        let body = body.finish();
        self.push(Stmt::While {
            cond,
            body,
            max_iters,
        })
    }

    /// Spin-wait: keep re-reading `obj` inside a critical section on `lock`
    /// until it compares equal to `until_value`, spending `spin_cost` per
    /// probe. This is the paper's Figure 4 pattern.
    pub fn spin_wait_shared(
        &mut self,
        lock: LockId,
        site: CodeSiteId,
        obj: ObjectId,
        until_value: i64,
        spin_cost: Time,
        max_iters: u32,
    ) -> &mut Self {
        self.while_cond(
            Cond::ne(ValueSource::Shared(obj), until_value),
            max_iters,
            |b| {
                b.locked(lock, site, |cs| {
                    cs.read(obj);
                    cs.compute(spin_cost);
                });
            },
        )
    }

    /// `pthread_cond_wait`-style wait.
    pub fn cond_wait(&mut self, cond: CondId, lock: LockId) -> &mut Self {
        self.push(Stmt::CondWait { cond, lock })
    }

    /// Signals one waiter of a condition variable.
    pub fn cond_signal(&mut self, cond: CondId) -> &mut Self {
        self.push(Stmt::CondSignal {
            cond,
            broadcast: false,
        })
    }

    /// Wakes all waiters of a condition variable.
    pub fn cond_broadcast(&mut self, cond: CondId) -> &mut Self {
        self.push(Stmt::CondSignal {
            cond,
            broadcast: true,
        })
    }

    /// Waits at a barrier.
    pub fn barrier(&mut self, barrier: BarrierId) -> &mut Self {
        self.push(Stmt::Barrier { barrier })
    }

    /// A selectively-recorded region replay bypasses (system call, library
    /// call), charging `cost`.
    pub fn skip_region(&mut self, site: CodeSiteId, cost: Time) -> &mut Self {
        self.push(Stmt::SkipRegion { site, cost })
    }

    /// Emits a checkpoint marker.
    pub fn checkpoint(&mut self, id: u32) -> &mut Self {
        self.push(Stmt::Checkpoint { id })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::stmt_count;

    #[test]
    fn builder_declarations_are_dense() {
        let mut b = ProgramBuilder::new("decl");
        assert_eq!(b.lock("a"), LockId::new(0));
        assert_eq!(b.lock("b"), LockId::new(1));
        assert_eq!(b.shared("x", 1), ObjectId::new(0));
        assert_eq!(b.condvar("cv"), CondId::new(0));
        assert_eq!(b.barrier("bar", 2), BarrierId::new(0));
        let s1 = b.site("f.c", "g", 1);
        let s2 = b.site("f.c", "g", 1);
        assert_eq!(s1, s2);
        b.input("small");
        b.thread("t", |t| {
            t.compute_ns(1);
        });
        let p = b.build();
        assert_eq!(p.input, "small");
        assert_eq!(p.objects[0].init, 1);
        assert_eq!(p.barriers[0].participants, 2);
    }

    #[test]
    fn nested_bodies_follow_lexical_structure() {
        let mut b = ProgramBuilder::new("nest");
        let lock = b.lock("m");
        let obj = b.shared("x", 0);
        let site = b.site("n.c", "f", 3);
        b.thread("t", |t| {
            t.loop_n(4, |l| {
                l.locked(lock, site, |cs| {
                    cs.read(obj);
                    cs.if_then(Cond::eq(ValueSource::Shared(obj), 0), |then| {
                        then.write_add(obj, 1);
                    });
                });
                l.compute_ns(5);
            });
        });
        let p = b.build();
        assert!(p.validate().is_ok());
        match &p.threads[0].body[0] {
            Stmt::Loop { count, body } => {
                assert_eq!(*count, 4);
                assert_eq!(body.len(), 2);
                match &body[0] {
                    Stmt::Lock { body: cs, .. } => assert_eq!(cs.len(), 2),
                    other => panic!("expected Lock, got {other:?}"),
                }
            }
            other => panic!("expected Loop, got {other:?}"),
        }
    }

    #[test]
    fn read_into_allocates_distinct_locals() {
        let mut b = ProgramBuilder::new("locals");
        let lock = b.lock("m");
        let obj = b.shared("x", 0);
        let site = b.site("l.c", "f", 1);
        b.thread("t", |t| {
            let a = t.read_into(obj);
            let mut captured = None;
            t.locked(lock, site, |cs| {
                captured = Some(cs.read_into(obj));
            });
            assert_ne!(a, captured.unwrap());
        });
        let p = b.build();
        assert!(p.validate().is_ok());
    }

    #[test]
    fn spin_wait_shared_expands_to_while_of_lock() {
        let mut b = ProgramBuilder::new("spin");
        let lock = b.lock("m");
        let obj = b.shared("ref", 0);
        let site = b.site("mp.c", "wait", 7);
        b.thread("t", |t| {
            t.spin_wait_shared(lock, site, obj, 1, Time::from_nanos(20), 50);
        });
        let p = b.build();
        match &p.threads[0].body[0] {
            Stmt::While {
                body, max_iters, ..
            } => {
                assert_eq!(*max_iters, 50);
                assert!(matches!(body[0], Stmt::Lock { .. }));
            }
            other => panic!("expected While, got {other:?}"),
        }
    }

    #[test]
    fn condvars_barriers_and_misc_statements() {
        let mut b = ProgramBuilder::new("sync");
        let lock = b.lock("m");
        let cv = b.condvar("cv");
        let bar = b.barrier("bar", 2);
        let site = b.site("s.c", "f", 1);
        b.thread("waiter", |t| {
            t.cond_wait(cv, lock);
            t.barrier(bar);
            t.checkpoint(1);
        });
        b.thread("signaller", |t| {
            t.cond_signal(cv);
            t.cond_broadcast(cv);
            t.barrier(bar);
            t.skip_region(site, Time::from_nanos(9));
        });
        let p = b.build();
        assert!(p.validate().is_ok());
        assert_eq!(stmt_count(&p.threads[0].body), 3);
        assert_eq!(stmt_count(&p.threads[1].body), 4);
    }

    #[test]
    fn thread_with_body_accepts_raw_statements() {
        let mut b = ProgramBuilder::new("raw");
        b.thread_with_body(
            "t",
            vec![Stmt::Compute {
                cost: Time::from_nanos(5),
            }],
        );
        let p = b.build();
        assert_eq!(p.threads[0].name, "t");
        assert_eq!(p.threads[0].body.len(), 1);
    }

    #[test]
    fn if_else_builds_both_arms() {
        let mut b = ProgramBuilder::new("branch");
        let obj = b.shared("flag", 0);
        b.thread("t", |t| {
            t.if_else(
                Cond::eq(ValueSource::Shared(obj), 1),
                |then| {
                    then.compute_ns(1);
                },
                |els| {
                    els.compute_ns(2);
                    els.compute_ns(3);
                },
            );
        });
        let p = b.build();
        match &p.threads[0].body[0] {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                assert_eq!(then_branch.len(), 1);
                assert_eq!(else_branch.len(), 2);
            }
            other => panic!("expected If, got {other:?}"),
        }
    }
}
