//! Pipelined chunk-file ingestion: overlapped framing, decode, and delivery.
//!
//! The sequential scanners in [`crate::stream`] interleave three kinds of
//! work on one thread: reading bytes, finding record boundaries, and
//! deserializing payloads. On large traces the deserialization dominates,
//! so this module splits the work across threads:
//!
//! 1. a **framing** thread walks raw record boundaries (frame
//!    marker/length for PBIN, line splitting for JSON-lines) without
//!    decoding anything, preserving resynchronization and byte-exact record
//!    coordinates;
//! 2. a pool of **decode workers** CRC-checks and deserializes frames out
//!    of order, recycling payload buffers through an allocation-free
//!    round-trip channel;
//! 3. the consumer restores record order by sequence number over bounded
//!    channels and feeds the shared [`ChunkFileReader`] state machine, so
//!    gap accounting, recovery policies, and error locations are literally
//!    the same code as the sequential path.
//!
//! The public face is [`PipelinedChunkReader`], a drop-in
//! [`EventSource`] that yields a bit-identical stream to
//! [`ChunkFileReader`] on well-formed, gapped, and fault-injected files.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::pbin::{decode_checked_payload, ChunkFormat, PbinFrameBody, PbinScanner};
use crate::site::SiteTable;
use crate::stream::{
    trim_line, ChunkFileReader, ChunkFileTrailer, EventSource, RawRecord, RecoveryPolicy,
    StreamError, StreamGap, StreamItem, TraceChunk, UTF8_ERROR,
};
use crate::trace::TraceMeta;

/// Default size of the decode-worker pool: the machine's available
/// parallelism, clamped to `1..=8` — past that the workers contend on the
/// ordered hand-off instead of decoding.
pub fn default_decode_workers() -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .clamp(1, 8)
}

/// One undecoded record handed from the framing thread to a decode worker.
#[derive(Debug)]
struct WorkItem {
    /// Dense stream sequence number assigned by the framing thread; the
    /// consumer restores delivery order by it.
    seq: u64,
    /// 1-based record ordinal (line number for JSON-lines).
    ordinal: usize,
    /// Byte offset of the record's start.
    offset: u64,
    /// Byte extent of the record.
    bytes: u64,
    payload: FramedPayload,
}

/// The raw bytes of one framed record, format-tagged.
#[derive(Debug)]
enum FramedPayload {
    /// A JSON-lines record with its line terminator stripped.
    JsonLine(Vec<u8>),
    /// A structurally complete PBIN frame pending CRC check and decode.
    PbinFrame {
        kind: u8,
        stored_crc: u32,
        payload: Vec<u8>,
    },
}

/// One decoded record tagged with its stream position. `terminal` marks the
/// record after which the sequential scanner would have stopped; the
/// consumer ends the stream there and discards anything the pipeline read
/// ahead, keeping the observable record sequence identical.
#[derive(Debug)]
struct Decoded {
    seq: u64,
    record: RawRecord,
    terminal: bool,
}

/// Framing loop for PBIN files: walks frames with [`PbinScanner::next_frame`]
/// (identical resynchronization and byte accounting as the sequential
/// scanner), shipping complete frames to the decode pool and framing-level
/// failures straight to the results channel in sequence order.
fn frame_pbin(
    mut scanner: PbinScanner,
    work: SyncSender<WorkItem>,
    results: SyncSender<Decoded>,
    recycle: Receiver<Vec<u8>>,
) {
    let mut seq = 0u64;
    loop {
        let mut buf: Vec<u8> = recycle.try_recv().unwrap_or_default();
        buf.clear();
        let Some(frame) = scanner.next_frame(&mut buf) else {
            return;
        };
        let sent = match frame.body {
            PbinFrameBody::Payload { kind, stored_crc } => work
                .send(WorkItem {
                    seq,
                    ordinal: frame.ordinal,
                    offset: frame.offset,
                    bytes: frame.bytes,
                    payload: FramedPayload::PbinFrame {
                        kind,
                        stored_crc,
                        payload: buf,
                    },
                })
                .is_ok(),
            PbinFrameBody::Failed(e) => results
                .send(Decoded {
                    seq,
                    terminal: scanner.is_done(),
                    record: RawRecord {
                        line: frame.ordinal,
                        offset: frame.offset,
                        bytes: frame.bytes,
                        record: Err(e),
                    },
                })
                .is_ok(),
        };
        if !sent {
            return;
        }
        seq += 1;
    }
}

/// Framing loop for JSON-lines files: splits lines with a reused buffer and
/// the same terminator/byte-accounting rules as the sequential scanner.
/// UTF-8 validation happens in the decode workers; when a worker flags a bad
/// line as terminal the consumer truncates the stream there, so lines this
/// loop reads past the failure are never observable.
fn frame_json(
    mut input: BufReader<std::fs::File>,
    work: SyncSender<WorkItem>,
    results: SyncSender<Decoded>,
    recycle: Receiver<Vec<u8>>,
) {
    let mut seq = 0u64;
    let mut line_no = 0usize;
    let mut offset = 0u64;
    loop {
        let mut buf: Vec<u8> = recycle.try_recv().unwrap_or_default();
        buf.clear();
        let this_line = line_no + 1;
        let line_offset = offset;
        let n = match input.read_until(b'\n', &mut buf) {
            Ok(n) => n,
            Err(e) => {
                let _ = results.send(Decoded {
                    seq,
                    terminal: true,
                    record: RawRecord {
                        line: this_line,
                        offset: line_offset,
                        bytes: 0,
                        record: Err(StreamError::Io(e.to_string())),
                    },
                });
                return;
            }
        };
        if n == 0 {
            return;
        }
        let stripped = trim_line(&buf).len();
        buf.truncate(stripped);
        line_no = this_line;
        let bytes = stripped as u64 + 1;
        offset += bytes;
        if work
            .send(WorkItem {
                seq,
                ordinal: this_line,
                offset: line_offset,
                bytes,
                payload: FramedPayload::JsonLine(buf),
            })
            .is_err()
        {
            return;
        }
        seq += 1;
    }
}

/// Decode-worker loop: pulls framed records off the shared work channel,
/// deserializes them (CRC check included for PBIN), recycles the payload
/// buffer back to the framing thread, and ships the decoded record to the
/// consumer. Exits when either side of the pipeline disconnects.
fn run_decoder(
    work: Arc<Mutex<Receiver<WorkItem>>>,
    results: SyncSender<Decoded>,
    recycle: Sender<Vec<u8>>,
) {
    loop {
        let item = {
            let Ok(guard) = work.lock() else { return };
            match guard.recv() {
                Ok(i) => i,
                Err(_) => return,
            }
        };
        let WorkItem {
            seq,
            ordinal,
            offset,
            bytes,
            payload,
        } = item;
        let (decoded, buf) = match payload {
            FramedPayload::JsonLine(line) => match std::str::from_utf8(&line) {
                Ok(text) => {
                    let record = serde_json::from_str(text).map_err(|e| StreamError::Parse {
                        line: ordinal,
                        message: e.0,
                    });
                    (
                        Decoded {
                            seq,
                            terminal: false,
                            record: RawRecord {
                                line: ordinal,
                                offset,
                                bytes,
                                record,
                            },
                        },
                        line,
                    )
                }
                // `BufRead::lines` surfaces invalid UTF-8 as an I/O error
                // and the sequential scanner stops there; reproduce both.
                Err(_) => (
                    Decoded {
                        seq,
                        terminal: true,
                        record: RawRecord {
                            line: ordinal,
                            offset,
                            bytes: 0,
                            record: Err(StreamError::Io(UTF8_ERROR.into())),
                        },
                    },
                    line,
                ),
            },
            FramedPayload::PbinFrame {
                kind,
                stored_crc,
                payload,
            } => {
                let record = decode_checked_payload(kind, stored_crc, &payload, ordinal);
                (
                    Decoded {
                        seq,
                        terminal: false,
                        record: RawRecord {
                            line: ordinal,
                            offset,
                            bytes,
                            record,
                        },
                    },
                    payload,
                )
            }
        };
        let _ = recycle.send(buf);
        if results.send(decoded).is_err() {
            return;
        }
    }
}

/// Record scanner that overlaps framing and decoding across threads while
/// presenting the same pull-based interface as the single-threaded
/// scanners: same records, same order, same errors, same end-of-stream.
///
/// Shutdown is disconnect-driven: dropping the results receiver unblocks
/// the workers, whose exit drops the work receiver and unblocks the framing
/// thread. [`Drop`] joins every thread, so no scan outlives its scanner.
#[derive(Debug)]
pub(crate) struct PipelinedScanner {
    /// `None` once the stream is exhausted (disconnecting the pipeline).
    results: Option<Receiver<Decoded>>,
    /// Out-of-order arrivals waiting for their turn. Bounded by the channel
    /// capacities plus the number of in-flight workers.
    pending: BTreeMap<u64, Decoded>,
    next_seq: u64,
    exhausted: bool,
    handles: Vec<JoinHandle<()>>,
}

impl PipelinedScanner {
    /// Opens `path` and spawns the framing thread plus `decode_workers`
    /// decode threads (`0` sizes the pool from [`default_decode_workers`]).
    ///
    /// File-open failures are reported synchronously, like the sequential
    /// scanners; thread-spawn failures surface as [`StreamError::Io`].
    pub(crate) fn spawn(
        path: &Path,
        format: ChunkFormat,
        decode_workers: usize,
    ) -> Result<Self, StreamError> {
        let workers = if decode_workers == 0 {
            default_decode_workers()
        } else {
            decode_workers
        };
        let (work_tx, work_rx) = sync_channel::<WorkItem>(workers * 2);
        let (res_tx, res_rx) = sync_channel::<Decoded>(workers * 2 + 2);
        let (rec_tx, rec_rx) = channel::<Vec<u8>>();
        let spawn_err = |e: std::io::Error| StreamError::Io(e.to_string());
        let mut handles = Vec::with_capacity(workers + 1);
        let framing = std::thread::Builder::new().name("pingest-frame".into());
        let handle = match format {
            ChunkFormat::Pbin => {
                let scanner = PbinScanner::open(path)?;
                let results = res_tx.clone();
                framing
                    .spawn(move || frame_pbin(scanner, work_tx, results, rec_rx))
                    .map_err(spawn_err)?
            }
            ChunkFormat::Json => {
                let file = std::fs::File::open(path).map_err(StreamError::from)?;
                let input = BufReader::new(file);
                let results = res_tx.clone();
                framing
                    .spawn(move || frame_json(input, work_tx, results, rec_rx))
                    .map_err(spawn_err)?
            }
        };
        handles.push(handle);
        let work_rx = Arc::new(Mutex::new(work_rx));
        for i in 0..workers {
            let work = Arc::clone(&work_rx);
            let results = res_tx.clone();
            let recycle = rec_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("pingest-d{i}"))
                .spawn(move || run_decoder(work, results, recycle))
                .map_err(spawn_err)?;
            handles.push(handle);
        }
        drop(res_tx);
        drop(rec_tx);
        Ok(PipelinedScanner {
            results: Some(res_rx),
            pending: BTreeMap::new(),
            next_seq: 0,
            exhausted: false,
            handles,
        })
    }

    /// Pulls the next record in stream order, blocking on the pipeline as
    /// needed. Mirrors the sequential scanners' contract exactly: yields
    /// every record (parse failures included) and returns `None` after a
    /// terminal record or a clean end of file.
    pub(crate) fn next_record(&mut self) -> Option<RawRecord> {
        if self.exhausted {
            return None;
        }
        loop {
            if let Some(d) = self.pending.remove(&self.next_seq) {
                self.next_seq += 1;
                if d.terminal {
                    // The sequential scanner stops here; drop whatever the
                    // pipeline read ahead so the streams stay identical.
                    self.exhausted = true;
                    self.results = None;
                    self.pending.clear();
                }
                return Some(d.record);
            }
            let arrival = match &self.results {
                Some(rx) => rx.recv().ok(),
                None => None,
            };
            match arrival {
                Some(d) => {
                    self.pending.insert(d.seq, d);
                }
                None => {
                    // Every sender hung up: clean end of stream.
                    self.exhausted = true;
                    self.results = None;
                    return None;
                }
            }
        }
    }
}

impl Drop for PipelinedScanner {
    fn drop(&mut self) {
        // Disconnect first so blocked senders unwind, then reap the threads.
        self.results = None;
        self.pending.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Pipelined [`EventSource`] over a chunked trace file, in either
/// [`ChunkFormat`].
///
/// A drop-in replacement for [`ChunkFileReader`] that overlaps file
/// reading, record decoding, and the caller's detection work across
/// threads. The chunk/gap stream it yields is bit-identical to the
/// sequential reader's under every [`RecoveryPolicy`] — it shares the same
/// validation, gap-accounting, and trailer-reconciliation state machine and
/// swaps only the record scanner underneath.
///
/// Prefer it when ingesting large traces on a multi-core machine,
/// especially feeding a parallel detector; prefer [`ChunkFileReader`] for
/// small files or single-core environments, where pipeline hand-off
/// overhead buys nothing.
pub struct PipelinedChunkReader {
    inner: ChunkFileReader,
}

impl PipelinedChunkReader {
    /// Opens a chunked trace file for pipelined reading with the default
    /// [`RecoveryPolicy::Fail`] policy, autodetected format, and an
    /// auto-sized decode pool.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ChunkFileReader::open`], plus thread-spawn
    /// failures reported as [`StreamError::Io`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StreamError> {
        Self::with_options(path, RecoveryPolicy::Fail, None, 0)
    }

    /// Opens a chunked trace file for pipelined reading under `policy`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`open`](Self::open).
    pub fn with_policy(
        path: impl AsRef<Path>,
        policy: RecoveryPolicy,
    ) -> Result<Self, StreamError> {
        Self::with_options(path, policy, None, 0)
    }

    /// Opens a chunked trace file for pipelined reading with every knob
    /// exposed: recovery `policy`, an optional `format` override (`None`
    /// autodetects by magic bytes), and the decode-pool size (`0` sizes it
    /// from [`default_decode_workers`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`open`](Self::open).
    pub fn with_options(
        path: impl AsRef<Path>,
        policy: RecoveryPolicy,
        format: Option<ChunkFormat>,
        decode_workers: usize,
    ) -> Result<Self, StreamError> {
        Ok(PipelinedChunkReader {
            inner: ChunkFileReader::open_pipelined(path, policy, format, decode_workers)?,
        })
    }

    /// The path of the file being read.
    pub fn path(&self) -> &str {
        self.inner.path()
    }

    /// The on-disk format of the file being read.
    pub fn format(&self) -> ChunkFormat {
        self.inner.format()
    }

    /// The recovery policy in effect.
    pub fn policy(&self) -> RecoveryPolicy {
        self.inner.policy()
    }

    /// The interned code sites from the file header.
    pub fn sites(&self) -> &SiteTable {
        self.inner.sites()
    }

    /// The file trailer, once the end of the stream has been reached.
    pub fn trailer(&self) -> Option<&ChunkFileTrailer> {
        self.inner.trailer()
    }

    /// Every gap recorded so far (non-empty only under a recovering policy).
    pub fn gaps(&self) -> &[StreamGap] {
        self.inner.gaps()
    }

    /// Total events known lost across all recorded gaps.
    pub fn events_lost(&self) -> u64 {
        self.inner.events_lost()
    }
}

impl EventSource for PipelinedChunkReader {
    fn meta(&self) -> &TraceMeta {
        self.inner.meta()
    }

    fn num_threads(&self) -> usize {
        self.inner.num_threads()
    }

    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, StreamError> {
        self.inner.next_chunk()
    }

    fn next_item(&mut self) -> Result<Option<StreamItem>, StreamError> {
        self.inner.next_item()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, LockGrant};
    use crate::ids::{CodeSiteId, LockId, ObjectId, ThreadId};
    use crate::stream::{ChunkFileHeader, ChunkFileRecord, RawChunkRecords, TraceChunks};
    use crate::time::Time;
    use crate::trace::Trace;

    fn two_thread_trace() -> Trace {
        let mut trace = Trace::new(TraceMeta::default(), 2);
        for (ti, base) in [(0usize, 0u64), (1, 5)] {
            let t = &mut trace.threads[ti];
            t.push(
                Time::from_nanos(base + 1),
                Event::LockAcquire {
                    lock: LockId::new(0),
                    site: CodeSiteId::new(0),
                },
            );
            t.push(
                Time::from_nanos(base + 2),
                Event::Read {
                    obj: ObjectId::new(0),
                    value: 0,
                },
            );
            t.push(
                Time::from_nanos(base + 3),
                Event::LockRelease {
                    lock: LockId::new(0),
                },
            );
            t.push(Time::from_nanos(base + 4), Event::ThreadExit);
        }
        trace.lock_schedule = vec![
            LockGrant {
                seq: 0,
                lock: LockId::new(0),
                thread: ThreadId::new(0),
                event_index: 0,
                at: Time::from_nanos(1),
            },
            LockGrant {
                seq: 1,
                lock: LockId::new(0),
                thread: ThreadId::new(1),
                event_index: 0,
                at: Time::from_nanos(6),
            },
        ];
        trace.total_time = Time::from_nanos(9);
        trace
    }

    fn encode_chunk_file(trace: &Trace, format: ChunkFormat, chunk_events: usize) -> Vec<u8> {
        let mut out = format.prelude();
        let mut buf = Vec::new();
        let header = ChunkFileRecord::Header(ChunkFileHeader {
            meta: TraceMeta::default(),
            num_threads: trace.num_threads(),
            sites: trace.sites.clone(),
        });
        format.encode_record(&header, &mut buf).unwrap();
        out.extend_from_slice(&buf);
        let mut source = TraceChunks::new(trace, chunk_events);
        let mut chunks = 0u64;
        let mut events = 0u64;
        while let Some(chunk) = source.next_chunk().unwrap() {
            chunks += 1;
            events += chunk.num_events() as u64;
            buf.clear();
            format
                .encode_record(&ChunkFileRecord::Chunk(chunk), &mut buf)
                .unwrap();
            out.extend_from_slice(&buf);
        }
        buf.clear();
        let trailer = ChunkFileRecord::Trailer(ChunkFileTrailer {
            total_time: trace.total_time,
            finish_times: vec![trace.total_time; trace.num_threads()],
            chunks,
            events,
        });
        format.encode_record(&trailer, &mut buf).unwrap();
        out.extend_from_slice(&buf);
        out
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("perfplay-pipelined-{}-{tag}", std::process::id()))
    }

    fn raw_drain(
        records: RawChunkRecords,
    ) -> Vec<(usize, u64, u64, Result<ChunkFileRecord, StreamError>)> {
        records
            .map(|r| (r.line, r.offset, r.bytes, r.record))
            .collect()
    }

    fn item_drain(source: &mut dyn EventSource) -> (Vec<StreamItem>, Option<StreamError>) {
        let mut items = Vec::new();
        loop {
            match source.next_item() {
                Ok(Some(item)) => items.push(item),
                Ok(None) => return (items, None),
                Err(e) => return (items, Some(e)),
            }
        }
    }

    #[test]
    fn pipelined_records_match_sequential_on_clean_files() {
        let trace = two_thread_trace();
        for format in [ChunkFormat::Json, ChunkFormat::Pbin] {
            for chunk_events in [1, 3, 100] {
                let path = temp_path(&format!("clean-{format:?}-{chunk_events}"));
                std::fs::write(&path, encode_chunk_file(&trace, format, chunk_events)).unwrap();
                let sequential = raw_drain(RawChunkRecords::open(&path).unwrap());
                for workers in [1usize, 2, 4] {
                    let pipelined =
                        raw_drain(RawChunkRecords::open_pipelined(&path, None, workers).unwrap());
                    assert_eq!(sequential, pipelined, "{format:?} workers={workers}");
                }
                std::fs::remove_file(&path).unwrap();
            }
        }
    }

    #[test]
    fn pipelined_records_match_sequential_on_corrupt_files() {
        let trace = two_thread_trace();
        for format in [ChunkFormat::Json, ChunkFormat::Pbin] {
            let clean = encode_chunk_file(&trace, format, 2);
            // Corrupt one byte at a stride of positions across the file —
            // record interiors, frame heads, and boundaries all get hit.
            for pos in (0..clean.len()).step_by(17) {
                let mut bad = clean.clone();
                bad[pos] ^= 0x20;
                let path = temp_path(&format!("corrupt-{format:?}-{pos}"));
                std::fs::write(&path, &bad).unwrap();
                let sequential =
                    raw_drain(RawChunkRecords::open_with_format(&path, Some(format)).unwrap());
                let pipelined =
                    raw_drain(RawChunkRecords::open_pipelined(&path, Some(format), 2).unwrap());
                assert_eq!(sequential, pipelined, "{format:?} corrupt byte {pos}");
                std::fs::remove_file(&path).unwrap();
            }
        }
    }

    #[test]
    fn pipelined_records_match_sequential_on_truncated_files() {
        let trace = two_thread_trace();
        for format in [ChunkFormat::Json, ChunkFormat::Pbin] {
            let clean = encode_chunk_file(&trace, format, 2);
            for cut in (0..clean.len()).step_by(13) {
                let path = temp_path(&format!("trunc-{format:?}-{cut}"));
                std::fs::write(&path, &clean[..cut]).unwrap();
                let sequential =
                    raw_drain(RawChunkRecords::open_with_format(&path, Some(format)).unwrap());
                let pipelined =
                    raw_drain(RawChunkRecords::open_pipelined(&path, Some(format), 3).unwrap());
                assert_eq!(sequential, pipelined, "{format:?} truncated at {cut}");
                std::fs::remove_file(&path).unwrap();
            }
        }
    }

    #[test]
    fn pipelined_reader_streams_match_sequential_under_every_policy() {
        let trace = two_thread_trace();
        for format in [ChunkFormat::Json, ChunkFormat::Pbin] {
            let clean = encode_chunk_file(&trace, format, 2);
            let mut bad = clean.clone();
            let mid = clean.len() / 2;
            bad[mid] ^= 0xFF;
            for (tag, bytes) in [("clean", &clean), ("bad", &bad)] {
                let path = temp_path(&format!("reader-{format:?}-{tag}"));
                std::fs::write(&path, bytes).unwrap();
                for policy in [
                    RecoveryPolicy::Fail,
                    RecoveryPolicy::SkipChunk,
                    RecoveryPolicy::SkipStream,
                ] {
                    let mut seq =
                        ChunkFileReader::with_policy_and_format(&path, policy, Some(format))
                            .unwrap();
                    let mut pip =
                        PipelinedChunkReader::with_options(&path, policy, Some(format), 2).unwrap();
                    let (seq_items, seq_err) = item_drain(&mut seq);
                    let (pip_items, pip_err) = item_drain(&mut pip);
                    assert_eq!(seq_items, pip_items, "{format:?} {tag} {policy:?}");
                    assert_eq!(seq_err, pip_err, "{format:?} {tag} {policy:?}");
                    assert_eq!(seq.gaps(), pip.gaps(), "{format:?} {tag} {policy:?}");
                    assert_eq!(seq.events_lost(), pip.events_lost());
                    assert_eq!(seq.trailer(), pip.trailer());
                }
                std::fs::remove_file(&path).unwrap();
            }
        }
    }

    #[test]
    fn pipelined_jsonl_bad_utf8_matches_sequential() {
        let trace = two_thread_trace();
        let mut bytes = encode_chunk_file(&trace, ChunkFormat::Json, 2);
        // Splice an invalid UTF-8 byte into the middle of the second line.
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes.insert(first_nl + 10, 0xFF);
        let path = temp_path("bad-utf8");
        std::fs::write(&path, &bytes).unwrap();
        let sequential = raw_drain(RawChunkRecords::open(&path).unwrap());
        let pipelined = raw_drain(RawChunkRecords::open_pipelined(&path, None, 2).unwrap());
        assert_eq!(sequential, pipelined);
        let last = pipelined.last().unwrap();
        assert!(matches!(last.3, Err(StreamError::Io(ref m)) if m == UTF8_ERROR));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_fails_synchronously() {
        let path = temp_path("does-not-exist");
        assert!(PipelinedChunkReader::open(&path).is_err());
        assert!(RawChunkRecords::open_pipelined(&path, Some(ChunkFormat::Pbin), 1).is_err());
    }

    #[test]
    fn dropping_reader_mid_stream_joins_cleanly() {
        let trace = two_thread_trace();
        let path = temp_path("early-drop");
        std::fs::write(&path, encode_chunk_file(&trace, ChunkFormat::Pbin, 1)).unwrap();
        let mut reader = PipelinedChunkReader::open(&path).unwrap();
        let first = reader.next_chunk().unwrap();
        assert!(first.is_some());
        drop(reader); // must not hang or panic
        std::fs::remove_file(&path).unwrap();
    }
}
