//! Virtual time used by the recorder, simulator and replayer.
//!
//! All performance quantities in this reproduction are expressed in *virtual
//! nanoseconds*. The discrete-event simulator advances a virtual clock
//! deterministically, so replayed times are exactly reproducible; wall-clock
//! time is never consulted by the analysis.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in, or span of, virtual time measured in nanoseconds.
///
/// `Time` is deliberately a single scalar type used for both instants and
/// durations (mirroring how the paper manipulates `Time1`, `Time2`, `Time3`
/// and their differences); arithmetic saturates rather than wrapping so that
/// malformed traces degrade gracefully instead of panicking.
///
/// ```
/// use perfplay_trace::Time;
/// let a = Time::from_micros(2);
/// let b = Time::from_nanos(500);
/// assert_eq!((a + b).as_nanos(), 2_500);
/// assert_eq!((b - a), Time::ZERO); // saturating
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Time(u64);

impl Time {
    /// The zero instant / empty duration.
    pub const ZERO: Time = Time(0);
    /// The largest representable time; used as "infinity" by schedulers.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Time(nanos)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Time(micros * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Time(millis * 1_000_000)
    }

    /// Returns the value in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the value in (truncated) microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the value in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the value as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns true if this is the zero time.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction; returns [`Time::ZERO`] instead of underflowing.
    pub const fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    pub const fn saturating_add(self, other: Time) -> Time {
        Time(self.0.saturating_add(other.0))
    }

    /// Returns the larger of two times.
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns this time scaled by a floating-point factor (rounded to the
    /// nearest nanosecond). Useful for input-size scaling of workloads.
    pub fn scale(self, factor: f64) -> Time {
        Time((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// Returns `self / other` as a ratio, or 0.0 when `other` is zero.
    pub fn ratio(self, other: Time) -> f64 {
        if other.is_zero() {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        Time(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Time {
    type Output = Time;
    fn div(self, rhs: u64) -> Time {
        self.0.checked_div(rhs).map_or(Time::ZERO, Time)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |acc, t| acc + t)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Time::from_nanos(5).as_nanos(), 5);
        assert_eq!(Time::from_micros(2).as_nanos(), 2_000);
        assert_eq!(Time::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(Time::from_millis(3).as_micros(), 3_000);
        assert_eq!(Time::from_millis(3).as_millis(), 3);
        assert!(Time::ZERO.is_zero());
        assert!(!Time::from_nanos(1).is_zero());
    }

    #[test]
    fn arithmetic_saturates() {
        let small = Time::from_nanos(1);
        let big = Time::from_nanos(10);
        assert_eq!(small - big, Time::ZERO);
        assert_eq!(big - small, Time::from_nanos(9));
        assert_eq!(Time::MAX + big, Time::MAX);
        assert_eq!(Time::MAX * 2, Time::MAX);
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut t = Time::from_nanos(10);
        t += Time::from_nanos(5);
        assert_eq!(t.as_nanos(), 15);
        t -= Time::from_nanos(20);
        assert_eq!(t, Time::ZERO);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(Time::from_nanos(100) / 0, Time::ZERO);
        assert_eq!(Time::from_nanos(100) / 4, Time::from_nanos(25));
    }

    #[test]
    fn min_max_and_sum() {
        let a = Time::from_nanos(3);
        let b = Time::from_nanos(7);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let total: Time = vec![a, b, Time::from_nanos(10)].into_iter().sum();
        assert_eq!(total.as_nanos(), 20);
    }

    #[test]
    fn scale_and_ratio() {
        let t = Time::from_nanos(1_000);
        assert_eq!(t.scale(1.5).as_nanos(), 1_500);
        assert_eq!(t.scale(0.0), Time::ZERO);
        assert!((Time::from_nanos(500).ratio(t) - 0.5).abs() < 1e-12);
        assert_eq!(t.ratio(Time::ZERO), 0.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Time::from_nanos(15).to_string(), "15ns");
        assert_eq!(Time::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(Time::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(Time::from_millis(1_500).to_string(), "1.500s");
    }

    #[test]
    fn serde_roundtrip() {
        let t = Time::from_micros(7);
        let json = serde_json::to_string(&t).unwrap();
        let back: Time = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
