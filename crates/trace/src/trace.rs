//! The whole-execution trace: per-thread event streams plus the global lock
//! grant schedule recorded at runtime.

use serde::{Deserialize, Serialize};

use crate::event::{Event, LockGrant, TimedEvent};
use crate::ids::{LockId, ThreadId};
use crate::site::SiteTable;
use crate::time::Time;

/// The sequence of events recorded for one thread, in program order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadTrace {
    /// Thread the events belong to.
    pub thread: ThreadId,
    /// Events in program order. Timestamps are completion times in the
    /// original execution and are strictly non-decreasing.
    pub events: Vec<TimedEvent>,
    /// Time at which the thread finished in the original execution.
    pub finish_time: Time,
}

impl ThreadTrace {
    /// Creates an empty thread trace.
    pub fn new(thread: ThreadId) -> Self {
        ThreadTrace {
            thread,
            events: Vec::new(),
            finish_time: Time::ZERO,
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns true if the thread recorded no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an event with the given completion time.
    ///
    /// Timestamps must be non-decreasing in program order — the streaming
    /// chunk contract and every time-indexed consumer depend on it. A
    /// violation panics in debug builds; in release builds the event is
    /// still appended (and `finish_time` keeps the maximum seen), so the
    /// offence remains detectable by [`Trace::validate`], which reports the
    /// offending thread and event index.
    pub fn push(&mut self, at: Time, event: Event) {
        debug_assert!(
            self.events.last().is_none_or(|prev| at >= prev.at),
            "non-monotonic push on {}: event {} at {at} is earlier than its predecessor at {}",
            self.thread,
            self.events.len(),
            self.events.last().map(|p| p.at).unwrap_or(Time::ZERO),
        );
        self.events.push(TimedEvent::new(at, event));
        self.finish_time = self.finish_time.max(at);
    }

    /// Total intrinsic (compute + skipped) cost of the thread's events.
    pub fn intrinsic_cost(&self) -> Time {
        self.events.iter().map(|e| e.event.intrinsic_cost()).sum()
    }

    /// Number of lock acquisitions recorded for this thread.
    pub fn acquisition_count(&self) -> usize {
        self.events.iter().filter(|e| e.event.is_acquire()).count()
    }
}

/// Metadata describing the recorded execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Human-readable name of the recorded program / workload.
    pub program: String,
    /// Number of worker threads recorded.
    pub num_threads: usize,
    /// Number of distinct application locks.
    pub num_locks: usize,
    /// Number of distinct shared objects.
    pub num_objects: usize,
    /// Free-form description of the input (e.g. `simlarge`, `2000 entries`).
    pub input: String,
}

/// Errors produced by [`Trace::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A thread released a lock it did not hold, or exited holding locks.
    UnbalancedLocking {
        /// Offending thread.
        thread: ThreadId,
        /// Lock involved (the released-but-not-held lock, or one still held
        /// at exit).
        lock: LockId,
    },
    /// Event timestamps go backwards within a thread.
    NonMonotonicTime {
        /// Offending thread.
        thread: ThreadId,
        /// Index of the event whose timestamp is earlier than its
        /// predecessor's.
        event_index: usize,
    },
    /// The global lock schedule references an event that is not a matching
    /// acquisition.
    InconsistentSchedule {
        /// Position in the schedule.
        seq: u64,
    },
    /// Thread ids are not dense (`threads[i].thread != i`).
    MisnumberedThread {
        /// Index into [`Trace::threads`].
        index: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::UnbalancedLocking { thread, lock } => {
                write!(f, "unbalanced locking of {lock} on thread {thread}")
            }
            TraceError::NonMonotonicTime {
                thread,
                event_index,
            } => {
                write!(
                    f,
                    "non-monotonic timestamp at event {event_index} of {thread}"
                )
            }
            TraceError::InconsistentSchedule { seq } => {
                write!(f, "lock schedule entry {seq} does not match an acquisition")
            }
            TraceError::MisnumberedThread { index } => {
                write!(f, "thread at index {index} has a mismatched id")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A recorded execution: one [`ThreadTrace`] per thread, the interned code
/// sites, and the global order in which lock acquisitions were granted.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Execution metadata.
    pub meta: TraceMeta,
    /// Per-thread event streams, indexed by [`ThreadId::index`].
    pub threads: Vec<ThreadTrace>,
    /// Interned code sites.
    pub sites: SiteTable,
    /// Global lock-grant order recorded at runtime (consumed by ELSC replay).
    pub lock_schedule: Vec<LockGrant>,
    /// Makespan (finish time of the last thread) of the original execution.
    pub total_time: Time,
}

impl Trace {
    /// Creates an empty trace with the given number of threads.
    pub fn new(meta: TraceMeta, num_threads: usize) -> Self {
        Trace {
            meta,
            threads: (0..num_threads)
                .map(|i| ThreadTrace::new(ThreadId::new(i as u32)))
                .collect(),
            sites: SiteTable::new(),
            lock_schedule: Vec::new(),
            total_time: Time::ZERO,
        }
    }

    /// Number of threads in the trace.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total number of events across all threads.
    pub fn num_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Total number of lock acquisitions across all threads (the paper's
    /// "# Locks" column in Table 1 counts dynamic lock protections).
    pub fn num_acquisitions(&self) -> usize {
        self.threads.iter().map(|t| t.acquisition_count()).sum()
    }

    /// Returns the thread trace for a thread id.
    ///
    /// # Panics
    ///
    /// Panics if the thread id is out of range.
    pub fn thread(&self, thread: ThreadId) -> &ThreadTrace {
        &self.threads[thread.index()]
    }

    /// Returns an event by thread and index, if present.
    pub fn event(&self, thread: ThreadId, index: usize) -> Option<&TimedEvent> {
        self.threads
            .get(thread.index())
            .and_then(|t| t.events.get(index))
    }

    /// Iterates over `(thread, index, event)` for every event in the trace.
    pub fn iter_events(&self) -> impl Iterator<Item = (ThreadId, usize, &TimedEvent)> {
        self.threads.iter().flat_map(|t| {
            t.events
                .iter()
                .enumerate()
                .map(move |(i, e)| (t.thread, i, e))
        })
    }

    /// Checks structural well-formedness: dense thread ids, monotone
    /// timestamps, balanced lock/unlock pairs, and a lock schedule whose
    /// entries point at real acquisitions.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), TraceError> {
        for (i, t) in self.threads.iter().enumerate() {
            if t.thread.index() != i {
                return Err(TraceError::MisnumberedThread { index: i });
            }
            let mut last = Time::ZERO;
            let mut held: Vec<LockId> = Vec::new();
            for (idx, te) in t.events.iter().enumerate() {
                if te.at < last {
                    return Err(TraceError::NonMonotonicTime {
                        thread: t.thread,
                        event_index: idx,
                    });
                }
                last = te.at;
                match &te.event {
                    Event::LockAcquire { lock, .. } => held.push(*lock),
                    Event::LockRelease { lock } => match held.iter().rposition(|l| l == lock) {
                        Some(pos) => {
                            held.remove(pos);
                        }
                        None => {
                            return Err(TraceError::UnbalancedLocking {
                                thread: t.thread,
                                lock: *lock,
                            })
                        }
                    },
                    _ => {}
                }
            }
            if let Some(lock) = held.first() {
                return Err(TraceError::UnbalancedLocking {
                    thread: t.thread,
                    lock: *lock,
                });
            }
        }
        for g in &self.lock_schedule {
            let ok = self
                .event(g.thread, g.event_index)
                .map(|te| matches!(te.event, Event::LockAcquire { lock, .. } if lock == g.lock))
                .unwrap_or(false);
            if !ok {
                return Err(TraceError::InconsistentSchedule { seq: g.seq });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::WriteOp;
    use crate::ids::{CodeSiteId, ObjectId};

    fn acquire(lock: u32) -> Event {
        Event::LockAcquire {
            lock: LockId::new(lock),
            site: CodeSiteId::new(0),
        }
    }

    fn release(lock: u32) -> Event {
        Event::LockRelease {
            lock: LockId::new(lock),
        }
    }

    fn simple_trace() -> Trace {
        let mut trace = Trace::new(
            TraceMeta {
                program: "demo".into(),
                num_threads: 2,
                num_locks: 1,
                num_objects: 1,
                input: "unit".into(),
            },
            2,
        );
        let t0 = &mut trace.threads[0];
        t0.push(
            Time::from_nanos(10),
            Event::Compute {
                cost: Time::from_nanos(10),
            },
        );
        t0.push(Time::from_nanos(11), acquire(0));
        t0.push(
            Time::from_nanos(12),
            Event::Read {
                obj: ObjectId::new(0),
                value: 0,
            },
        );
        t0.push(Time::from_nanos(13), release(0));
        t0.push(Time::from_nanos(13), Event::ThreadExit);
        let t1 = &mut trace.threads[1];
        t1.push(Time::from_nanos(14), acquire(0));
        t1.push(
            Time::from_nanos(15),
            Event::Write {
                obj: ObjectId::new(0),
                op: WriteOp::Set(1),
                value: 1,
            },
        );
        t1.push(Time::from_nanos(16), release(0));
        t1.push(Time::from_nanos(16), Event::ThreadExit);
        trace.lock_schedule = vec![
            LockGrant {
                seq: 0,
                lock: LockId::new(0),
                thread: ThreadId::new(0),
                event_index: 1,
                at: Time::from_nanos(11),
            },
            LockGrant {
                seq: 1,
                lock: LockId::new(0),
                thread: ThreadId::new(1),
                event_index: 0,
                at: Time::from_nanos(14),
            },
        ];
        trace.total_time = Time::from_nanos(16);
        trace
    }

    #[test]
    fn counts_and_accessors() {
        let trace = simple_trace();
        assert_eq!(trace.num_threads(), 2);
        assert_eq!(trace.num_events(), 9);
        assert_eq!(trace.num_acquisitions(), 2);
        assert_eq!(trace.thread(ThreadId::new(0)).len(), 5);
        assert!(trace.event(ThreadId::new(1), 0).unwrap().event.is_acquire());
        assert_eq!(trace.event(ThreadId::new(1), 99), None);
        assert_eq!(trace.iter_events().count(), 9);
    }

    #[test]
    fn thread_trace_intrinsic_cost() {
        let trace = simple_trace();
        assert_eq!(
            trace.thread(ThreadId::new(0)).intrinsic_cost(),
            Time::from_nanos(10)
        );
        assert_eq!(trace.thread(ThreadId::new(1)).intrinsic_cost(), Time::ZERO);
    }

    #[test]
    fn validate_accepts_well_formed_trace() {
        assert_eq!(simple_trace().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_unbalanced_release() {
        let mut trace = simple_trace();
        trace.threads[0]
            .events
            .push(TimedEvent::new(Time::from_nanos(20), release(0)));
        assert!(matches!(
            trace.validate(),
            Err(TraceError::UnbalancedLocking { .. })
        ));
    }

    #[test]
    fn validate_rejects_held_lock_at_exit() {
        let mut trace = simple_trace();
        trace.threads[1]
            .events
            .push(TimedEvent::new(Time::from_nanos(20), acquire(0)));
        assert!(matches!(
            trace.validate(),
            Err(TraceError::UnbalancedLocking { .. })
        ));
    }

    #[test]
    fn validate_rejects_time_going_backwards() {
        let mut trace = simple_trace();
        trace.threads[0].events[2].at = Time::from_nanos(1);
        assert!(matches!(
            trace.validate(),
            Err(TraceError::NonMonotonicTime { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_schedule() {
        let mut trace = simple_trace();
        trace.lock_schedule[1].event_index = 2; // points at a Write, not an acquire
        assert!(matches!(
            trace.validate(),
            Err(TraceError::InconsistentSchedule { seq: 1 })
        ));
    }

    #[test]
    fn validate_rejects_misnumbered_thread() {
        let mut trace = simple_trace();
        trace.threads[1].thread = ThreadId::new(5);
        assert!(matches!(
            trace.validate(),
            Err(TraceError::MisnumberedThread { index: 1 })
        ));
    }

    // Release builds accept the out-of-order push; validate() is the
    // backstop there (see validate_rejects_time_going_backwards).
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-monotonic push")]
    fn push_rejects_time_going_backwards_in_debug() {
        let mut tt = ThreadTrace::new(ThreadId::new(0));
        tt.push(Time::from_nanos(10), Event::ThreadExit);
        tt.push(Time::from_nanos(5), Event::ThreadExit);
    }

    #[test]
    fn push_accepts_equal_timestamps() {
        let mut tt = ThreadTrace::new(ThreadId::new(0));
        tt.push(Time::from_nanos(10), Event::ThreadExit);
        tt.push(Time::from_nanos(10), Event::ThreadExit);
        assert_eq!(tt.len(), 2);
        assert_eq!(tt.finish_time, Time::from_nanos(10));
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceError::UnbalancedLocking {
            thread: ThreadId::new(1),
            lock: LockId::new(3),
        };
        assert!(e.to_string().contains("L3"));
        assert!(e.to_string().contains("T1"));
    }

    #[test]
    fn trace_serde_roundtrip() {
        let trace = simple_trace();
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }
}
