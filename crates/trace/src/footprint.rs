//! Interned access footprints: the shared-object sets of a critical section.
//!
//! The ULCP detector's hot path is deciding whether two critical sections
//! conflict, which reduces to set-intersection tests over their read/write
//! sets. A [`Footprint`] stores those sets as a sorted, deduplicated object
//! list plus a 64-bit *summary word* (a one-word Bloom filter): each object
//! hashes to one of 64 bits, and two footprints can only intersect if the
//! bitwise AND of their summaries is non-zero. The common case in ULCP
//! analysis — sections touching *different* objects — is therefore rejected
//! with a single AND before any list walk happens.
//!
//! ```
//! use perfplay_trace::{Footprint, ObjectId};
//!
//! let a: Footprint = [ObjectId::new(1), ObjectId::new(2)].into_iter().collect();
//! let b: Footprint = [ObjectId::new(2)].into_iter().collect();
//! let c: Footprint = [ObjectId::new(9)].into_iter().collect();
//! assert!(a.intersects(&b));
//! assert!(!a.intersects(&c));
//! assert!(a.contains(ObjectId::new(1)));
//! assert_eq!(a.len(), 2);
//! ```

use serde::{DeError, Deserialize, Serialize, Value};

use crate::ids::ObjectId;

/// A sorted, summary-indexed set of shared objects.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Sorted, deduplicated object list.
    objs: Vec<ObjectId>,
    /// One-word Bloom summary over the objects; kept consistent with `objs`.
    summary: u64,
}

/// Hashes an object id onto one of the 64 summary bits.
fn summary_bit(obj: ObjectId) -> u64 {
    // Multiplicative (Fibonacci) hash; the top six bits select the slot so
    // that dense id ranges still spread across the word.
    1u64 << (obj.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58)
}

impl Footprint {
    /// Creates an empty footprint.
    pub fn new() -> Self {
        Footprint::default()
    }

    /// Builds a footprint from an unsorted object list, sorting and
    /// deduplicating it.
    pub fn from_unsorted(mut objs: Vec<ObjectId>) -> Self {
        objs.sort_unstable();
        objs.dedup();
        let summary = objs.iter().map(|&o| summary_bit(o)).fold(0, |a, b| a | b);
        Footprint { objs, summary }
    }

    /// Inserts an object, keeping the list sorted. Returns true if the object
    /// was not already present.
    pub fn insert(&mut self, obj: ObjectId) -> bool {
        match self.objs.binary_search(&obj) {
            Ok(_) => false,
            Err(pos) => {
                self.objs.insert(pos, obj);
                self.summary |= summary_bit(obj);
                true
            }
        }
    }

    /// Returns true if the footprint contains the object.
    pub fn contains(&self, obj: ObjectId) -> bool {
        self.summary & summary_bit(obj) != 0 && self.objs.binary_search(&obj).is_ok()
    }

    /// Number of distinct objects in the footprint.
    pub fn len(&self) -> usize {
        self.objs.len()
    }

    /// Returns true if the footprint is empty.
    pub fn is_empty(&self) -> bool {
        self.objs.is_empty()
    }

    /// Iterates over the objects in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objs.iter().copied()
    }

    /// The sorted object list as a slice.
    pub fn as_slice(&self) -> &[ObjectId] {
        &self.objs
    }

    /// The 64-bit Bloom summary word over the objects.
    ///
    /// If `a.summary() & b.summary() == 0` the two footprints are certainly
    /// disjoint; a non-zero AND says nothing (bits collide). An empty
    /// footprint has summary `0`, and every non-empty footprint has a
    /// non-zero summary, so `summary() == 0` is equivalent to
    /// [`is_empty`](Self::is_empty). Consumers can therefore classify the
    /// overwhelmingly common disjoint case from two words without touching
    /// the object lists.
    pub fn summary(&self) -> u64 {
        self.summary
    }

    /// Returns true if the two footprints share at least one object.
    ///
    /// The summary AND rejects disjoint footprints in O(1); surviving pairs
    /// fall back to an O(min(n, m)) walk — a galloping binary-search probe
    /// when one side is much smaller, a linear merge otherwise.
    pub fn intersects(&self, other: &Footprint) -> bool {
        if self.summary & other.summary == 0 {
            return false;
        }
        let (small, large) = if self.objs.len() <= other.objs.len() {
            (&self.objs, &other.objs)
        } else {
            (&other.objs, &self.objs)
        };
        if small.is_empty() {
            return false;
        }
        // Probe mode: each small element costs O(log |large|), which wins
        // when the size imbalance is bigger than the log factor.
        if small.len() * 16 < large.len() {
            return small.iter().any(|o| large.binary_search(o).is_ok());
        }
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Merges any number of footprints into one sorted, deduplicated object
    /// list (the union footprint a reversed replay executes over).
    pub fn union_of(parts: &[&Footprint]) -> Vec<ObjectId> {
        let mut out: Vec<ObjectId> = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for part in parts {
            out.extend(part.iter());
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl FromIterator<ObjectId> for Footprint {
    fn from_iter<I: IntoIterator<Item = ObjectId>>(iter: I) -> Self {
        Footprint::from_unsorted(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Footprint {
    type Item = ObjectId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ObjectId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.objs.iter().copied()
    }
}

// The wire format is the plain object array; the summary word is an index
// and is rebuilt on deserialization.
impl Serialize for Footprint {
    fn to_value(&self) -> Value {
        self.objs.to_value()
    }
}

impl Deserialize for Footprint {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Footprint::from_unsorted(Vec::<ObjectId>::from_value(v)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(ids: &[u64]) -> Footprint {
        Footprint::from_unsorted(ids.iter().map(|&i| ObjectId::new(i)).collect())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let f = fp(&[5, 1, 3, 1, 5]);
        assert_eq!(f.len(), 3);
        assert_eq!(
            f.iter().collect::<Vec<_>>(),
            vec![ObjectId::new(1), ObjectId::new(3), ObjectId::new(5)]
        );
    }

    #[test]
    fn insert_and_contains() {
        let mut f = Footprint::new();
        assert!(f.is_empty());
        assert!(f.insert(ObjectId::new(4)));
        assert!(f.insert(ObjectId::new(2)));
        assert!(!f.insert(ObjectId::new(4)));
        assert_eq!(f.len(), 2);
        assert!(f.contains(ObjectId::new(2)));
        assert!(!f.contains(ObjectId::new(3)));
        assert_eq!(f.as_slice(), &[ObjectId::new(2), ObjectId::new(4)]);
    }

    #[test]
    fn intersects_matches_naive_set_semantics() {
        let a = fp(&[1, 2, 3]);
        let b = fp(&[3, 4]);
        let c = fp(&[7, 8]);
        let empty = Footprint::new();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(!a.intersects(&empty));
        assert!(!empty.intersects(&empty));
    }

    #[test]
    fn intersects_galloping_path_and_summary_collisions() {
        // A large footprint forces the probe path for small counterparts and
        // exercises summary-bit collisions among many ids.
        let large = Footprint::from_unsorted((0..2_000).map(ObjectId::new).collect());
        let hit = fp(&[1_999]);
        let miss = fp(&[2_001]);
        assert!(large.intersects(&hit));
        // `miss` may collide in the summary word; the list walk must still
        // reject it.
        assert!(!large.intersects(&miss));
    }

    #[test]
    fn union_of_merges_sorted() {
        let a = fp(&[1, 5]);
        let b = fp(&[2, 5]);
        let union = Footprint::union_of(&[&a, &b, &a]);
        assert_eq!(
            union,
            vec![ObjectId::new(1), ObjectId::new(2), ObjectId::new(5)]
        );
    }

    #[test]
    fn equality_ignores_construction_order() {
        assert_eq!(fp(&[2, 1]), fp(&[1, 2, 2]));
        assert_ne!(fp(&[1]), fp(&[2]));
    }

    #[test]
    fn serde_roundtrip_rebuilds_summary() {
        let f = fp(&[10, 20, 30]);
        let json = serde_json::to_string(&f).unwrap();
        assert_eq!(json, "[10,20,30]");
        let back: Footprint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
        assert!(back.intersects(&fp(&[20])));
    }
}
