//! Code sites and code regions.
//!
//! PerfPlay attributes every dynamic critical section to the *static* code
//! site (lock/unlock pair in the source) that produced it, and groups ULCPs by
//! *code region* — a set of code sites — when fusing and accumulating their
//! performance impact (Section 4.1, Algorithm 2).

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::CodeSiteId;

/// A static source location of a lock/unlock pair.
///
/// For the synthetic workloads in this reproduction the `function` and `line`
/// fields model the positions the paper reports (e.g. `fil0fil.cc:5473`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CodeSite {
    /// File or module the critical section lives in.
    pub file: String,
    /// Function name containing the critical section.
    pub function: String,
    /// Line of the lock operation.
    pub line: u32,
}

impl CodeSite {
    /// Creates a code site description.
    pub fn new(file: impl Into<String>, function: impl Into<String>, line: u32) -> Self {
        CodeSite {
            file: file.into(),
            function: function.into(),
            line,
        }
    }
}

impl fmt::Display for CodeSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.function, self.line)
    }
}

/// Interning table mapping [`CodeSiteId`]s to their [`CodeSite`] descriptions.
///
/// Traces carry only ids; the table travels with the [`Trace`](crate::Trace).
///
/// Interning is O(1) amortized: a hash index over the site descriptions backs
/// [`intern`](Self::intern), instead of the historical linear scan that made
/// interning N distinct sites O(N²). The index is derived state — it is not
/// serialized and two tables compare equal iff their site lists do — and is
/// rebuilt lazily after deserialization.
#[derive(Debug, Default, Clone)]
pub struct SiteTable {
    sites: Vec<CodeSite>,
    index: HashMap<CodeSite, u32>,
}

impl PartialEq for SiteTable {
    fn eq(&self, other: &Self) -> bool {
        self.sites == other.sites
    }
}

impl Eq for SiteTable {}

// Manual serde impls: the hash index is derived state and stays out of the
// wire format, which remains exactly the historical `{"sites": [...]}`.
impl Serialize for SiteTable {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![("sites".to_string(), self.sites.to_value())])
    }
}

impl Deserialize for SiteTable {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let entries = serde::expect_object(v, "SiteTable")?;
        let sites = Vec::<CodeSite>::from_value(serde::field(entries, "sites", "SiteTable")?)?;
        Ok(SiteTable {
            sites,
            index: HashMap::new(),
        })
    }
}

impl SiteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a code site, returning its id. Identical sites share one id.
    pub fn intern(&mut self, site: CodeSite) -> CodeSiteId {
        // A deserialized table arrives without its derived index; rebuild it
        // once before the first probe. Keyed on emptiness (not length) so a
        // hand-crafted table carrying duplicate sites does not re-trigger
        // the O(N) rebuild on every call; `or_insert` keeps the *first*
        // occurrence, matching the historical linear scan.
        if self.index.is_empty() && !self.sites.is_empty() {
            for (i, s) in self.sites.iter().enumerate() {
                self.index.entry(s.clone()).or_insert(i as u32);
            }
        }
        if let Some(&pos) = self.index.get(&site) {
            return CodeSiteId::new(pos);
        }
        let id = self.sites.len() as u32;
        self.index.insert(site.clone(), id);
        self.sites.push(site);
        CodeSiteId::new(id)
    }

    /// Looks up the description for an id.
    pub fn get(&self, id: CodeSiteId) -> Option<&CodeSite> {
        self.sites.get(id.index())
    }

    /// Returns the number of interned sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Returns true if no site has been interned.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Iterates over `(id, site)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (CodeSiteId, &CodeSite)> {
        self.sites
            .iter()
            .enumerate()
            .map(|(i, s)| (CodeSiteId::new(i as u32), s))
    }

    /// Merges another table into this one, returning the id remapping for the
    /// other table's ids (`other_id -> new_id`).
    pub fn merge(&mut self, other: &SiteTable) -> Vec<CodeSiteId> {
        other.sites.iter().map(|s| self.intern(s.clone())).collect()
    }
}

/// A code region: a non-empty set of code sites treated as one source-level
/// unit for ULCP fusion.
///
/// The paper's Algorithm 2 uses two operators on code regions: `⊓` (do two
/// regions share code?) and `⊔` (the conflated region). They map to
/// [`CodeRegion::overlaps`] and [`CodeRegion::merge`].
///
/// ```
/// use perfplay_trace::{CodeRegion, CodeSiteId};
/// let a = CodeRegion::single(CodeSiteId::new(1));
/// let b = CodeRegion::single(CodeSiteId::new(2));
/// assert!(!a.overlaps(&b));
/// let ab = a.merge(&b);
/// assert!(ab.overlaps(&a) && ab.overlaps(&b));
/// assert_eq!(ab.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CodeRegion {
    sites: BTreeSet<CodeSiteId>,
}

impl CodeRegion {
    /// Creates a region containing a single code site.
    pub fn single(site: CodeSiteId) -> Self {
        let mut sites = BTreeSet::new();
        sites.insert(site);
        CodeRegion { sites }
    }

    /// Creates a region from an iterator of sites.
    ///
    /// Returns `None` if the iterator is empty (regions are never empty).
    pub fn from_sites<I: IntoIterator<Item = CodeSiteId>>(iter: I) -> Option<Self> {
        let sites: BTreeSet<_> = iter.into_iter().collect();
        if sites.is_empty() {
            None
        } else {
            Some(CodeRegion { sites })
        }
    }

    /// The paper's `⊓` operator: do the two regions involve shared code?
    pub fn overlaps(&self, other: &CodeRegion) -> bool {
        self.sites.intersection(&other.sites).next().is_some()
    }

    /// The paper's `⊔` operator: the conflated region of both.
    pub fn merge(&self, other: &CodeRegion) -> CodeRegion {
        CodeRegion {
            sites: self.sites.union(&other.sites).copied().collect(),
        }
    }

    /// Returns true if the region contains the given site.
    pub fn contains(&self, site: CodeSiteId) -> bool {
        self.sites.contains(&site)
    }

    /// Number of code sites in the region.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Regions are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Iterates over the sites in the region.
    pub fn iter(&self) -> impl Iterator<Item = CodeSiteId> + '_ {
        self.sites.iter().copied()
    }
}

impl fmt::Display for CodeRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.sites.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_table_interns_and_dedupes() {
        let mut t = SiteTable::new();
        assert!(t.is_empty());
        let a = t.intern(CodeSite::new("fil0fil.cc", "fil_flush", 5473));
        let b = t.intern(CodeSite::new("fil0fil.cc", "fil_flush_file_spaces", 5609));
        let a2 = t.intern(CodeSite::new("fil0fil.cc", "fil_flush", 5473));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).unwrap().line, 5473);
        assert_eq!(t.get(CodeSiteId::new(99)), None);
    }

    #[test]
    fn site_table_iter_and_merge() {
        let mut t1 = SiteTable::new();
        let _x = t1.intern(CodeSite::new("a.c", "f", 1));
        let mut t2 = SiteTable::new();
        let y = t2.intern(CodeSite::new("b.c", "g", 2));
        let z = t2.intern(CodeSite::new("a.c", "f", 1));
        let remap = t1.merge(&t2);
        assert_eq!(remap.len(), 2);
        // b.c:g:2 is new, a.c:f:1 dedupes onto the existing entry.
        assert_eq!(t1.len(), 2);
        assert_eq!(t1.get(remap[y.index()]).unwrap().function, "g");
        assert_eq!(remap[z.index()].index(), 0);
        assert_eq!(t1.iter().count(), 2);
    }

    #[test]
    fn intern_is_o1_amortized_for_many_distinct_sites() {
        // Regression: `intern` used to be a linear scan, making this loop
        // O(N²) string comparisons (minutes for 50k sites in a debug build).
        // With the hash index it completes instantly; a timeout here means
        // the index regressed.
        let mut t = SiteTable::new();
        let n = 50_000u32;
        for i in 0..n {
            let id = t.intern(CodeSite::new("big.c", format!("f{i}"), i));
            assert_eq!(id.index(), i as usize);
        }
        assert_eq!(t.len(), n as usize);
        // Re-interning still dedupes onto the original ids.
        assert_eq!(t.intern(CodeSite::new("big.c", "f17", 17)).index(), 17);
        assert_eq!(t.intern(CodeSite::new("big.c", "f0", 0)).index(), 0);
        assert_eq!(t.len(), n as usize);
    }

    #[test]
    fn intern_dedupes_after_a_serde_roundtrip() {
        // The hash index is derived state and not serialized; a deserialized
        // table must rebuild it instead of forgetting its existing sites.
        let mut t = SiteTable::new();
        let a = t.intern(CodeSite::new("a.c", "f", 1));
        let b = t.intern(CodeSite::new("b.c", "g", 2));
        let json = serde_json::to_string(&t).unwrap();
        let mut back: SiteTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.intern(CodeSite::new("a.c", "f", 1)), a);
        assert_eq!(back.intern(CodeSite::new("b.c", "g", 2)), b);
        assert_eq!(back.intern(CodeSite::new("c.c", "h", 3)).index(), 2);
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn intern_on_a_deserialized_table_with_duplicates_keeps_first_occurrence() {
        // A table with duplicate entries can only arise from hand-crafted
        // JSON (intern always dedupes), but the rebuilt index must still
        // resolve to the first occurrence — what the historical linear scan
        // returned — and must not re-trigger the O(N) rebuild per call.
        let json = r#"{"sites":[
            {"file":"a.c","function":"f","line":1},
            {"file":"b.c","function":"g","line":2},
            {"file":"a.c","function":"f","line":1}
        ]}"#;
        let mut table: SiteTable = serde_json::from_str(json).unwrap();
        assert_eq!(table.len(), 3);
        assert_eq!(table.intern(CodeSite::new("a.c", "f", 1)).index(), 0);
        assert_eq!(table.intern(CodeSite::new("b.c", "g", 2)).index(), 1);
        let c = table.intern(CodeSite::new("c.c", "h", 3));
        assert_eq!(c.index(), 3);
        assert_eq!(table.intern(CodeSite::new("c.c", "h", 3)), c);
    }

    #[test]
    fn code_site_display() {
        let s = CodeSite::new("mf.c", "consumer", 2109);
        assert_eq!(s.to_string(), "mf.c:consumer:2109");
    }

    #[test]
    fn region_overlap_and_merge() {
        let a = CodeRegion::single(CodeSiteId::new(0));
        let b = CodeRegion::single(CodeSiteId::new(1));
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&a));
        let m = a.merge(&b);
        assert_eq!(m.len(), 2);
        assert!(m.contains(CodeSiteId::new(0)));
        assert!(m.contains(CodeSiteId::new(1)));
        assert!(m.overlaps(&a));
        assert_eq!(m.to_string(), "{site0,site1}");
    }

    #[test]
    fn region_from_sites_rejects_empty() {
        assert!(CodeRegion::from_sites(std::iter::empty()).is_none());
        let r = CodeRegion::from_sites([CodeSiteId::new(3), CodeSiteId::new(3)]).unwrap();
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![CodeSiteId::new(3)]);
    }

    #[test]
    fn region_merge_is_commutative_and_idempotent() {
        let a = CodeRegion::from_sites([CodeSiteId::new(0), CodeSiteId::new(2)]).unwrap();
        let b = CodeRegion::from_sites([CodeSiteId::new(2), CodeSiteId::new(5)]).unwrap();
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&a), a);
        assert!(a.overlaps(&b));
    }
}
