//! # perfplay-trace
//!
//! Execution-trace model for the PerfPlay lock-contention performance
//! debugging framework (a reproduction of *"On Performance Debugging of
//! Unnecessary Lock Contentions on Multicore Processors: A Replay-based
//! Approach"*, CGO 2015).
//!
//! A [`Trace`] is what PerfPlay's recorder produces and what every later
//! stage consumes:
//!
//! * per-thread streams of [`Event`]s (computation, lock acquire/release,
//!   shared reads/writes, condition variables, barriers, selective-recording
//!   skips, checkpoints) with original-execution timestamps,
//! * an interned [`SiteTable`] mapping events to static [`CodeSite`]s, and
//! * the global [`LockGrant`] schedule recorded at runtime, which the ELSC
//!   replay scheduler re-enforces to obtain stable, faithful replay timing.
//!
//! [`extract_critical_sections`] turns the raw streams into
//! [`CriticalSection`] values — the unit the ULCP analysis operates on.
//!
//! ```
//! use perfplay_trace::{
//!     extract_critical_sections, CodeSiteId, Event, LockId, ObjectId, Time, Trace, TraceMeta,
//! };
//!
//! let mut trace = Trace::new(TraceMeta::default(), 1);
//! trace.threads[0].push(
//!     Time::from_nanos(1),
//!     Event::LockAcquire { lock: LockId::new(0), site: CodeSiteId::new(0) },
//! );
//! trace.threads[0].push(
//!     Time::from_nanos(2),
//!     Event::Read { obj: ObjectId::new(0), value: 7 },
//! );
//! trace.threads[0].push(Time::from_nanos(3), Event::LockRelease { lock: LockId::new(0) });
//!
//! trace.validate()?;
//! let sections = extract_critical_sections(&trace);
//! assert_eq!(sections.len(), 1);
//! assert!(sections[0].is_read_only());
//! # Ok::<(), perfplay_trace::TraceError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod event;
mod footprint;
mod ids;
pub mod pbin;
mod pipelined;
mod section;
mod site;
mod stats;
mod stream;
mod time;
mod trace;

pub use event::{Event, LockGrant, TimedEvent, WriteOp};
pub use footprint::Footprint;
pub use ids::{AuxLockId, BarrierId, CodeSiteId, CondId, LockId, ObjectId, SectionId, ThreadId};
pub use pbin::ChunkFormat;
pub use pipelined::{default_decode_workers, PipelinedChunkReader};
pub use section::{extract_critical_sections, sections_by_lock, CriticalSection, MemAccess};
pub use site::{CodeRegion, CodeSite, SiteTable};
pub use stats::TraceStats;
pub use stream::{
    read_chunked_trace, ChunkFileHeader, ChunkFileReader, ChunkFileRecord, ChunkFileTrailer,
    EventSource, RawChunkRecords, RawRecord, RecoveryPolicy, StreamError, StreamGap, StreamItem,
    ThreadSpan, TraceChunk, TraceChunks,
};
pub use time::Time;
pub use trace::{ThreadTrace, Trace, TraceError, TraceMeta};
