//! Streaming trace ingestion: time-windowed event chunks.
//!
//! The detection pass of the paper (Algorithm 1) assumes the whole event log
//! is resident. This module defines the abstraction that lifts that
//! assumption: an [`EventSource`] hands out [`TraceChunk`]s — per-thread runs
//! of events covering one window of original-execution time, plus the lock
//! grants of that window — so a consumer can analyze a trace far larger than
//! memory while holding only one window (and whatever incremental state it
//! keeps) resident.
//!
//! The chunk contract, which every source must honour and consumers may rely
//! on:
//!
//! 1. chunks arrive in ascending `window_end` order;
//! 2. chunk `k` contains **every** event with `prev_window_end < at <=
//!    window_end`, for every thread — equal-timestamp ties never straddle a
//!    chunk boundary;
//! 3. within a chunk, each thread's events are a contiguous run of that
//!    thread's stream (the [`ThreadSpan::base_index`] makes the absolute
//!    event indices recoverable), and spans are listed in ascending thread
//!    order.
//!
//! The contract is only satisfiable because [`ThreadTrace`] timestamps are
//! non-decreasing — the invariant [`ThreadTrace::push`] enforces.
//!
//! Two sources are provided: [`TraceChunks`], which adapts an in-memory
//! [`Trace`] (the executable spec and the bridge for already-recorded
//! traces), and [`ChunkFileReader`], which streams a chunked trace file
//! (JSON-lines; one [`ChunkFileRecord`] per line) written by
//! `perfplay-record`'s `ChunkedWriter`, so detection never needs the full
//! log in memory at all.

use std::io::{BufRead, BufReader};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::event::{LockGrant, TimedEvent};
use crate::ids::ThreadId;
use crate::site::SiteTable;
use crate::time::Time;
use crate::trace::{Trace, TraceError, TraceMeta};

/// A contiguous run of one thread's events inside a [`TraceChunk`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadSpan {
    /// Thread the events belong to.
    pub thread: ThreadId,
    /// Absolute index (into the thread's full event stream) of `events[0]`.
    pub base_index: usize,
    /// The events of this thread falling in the chunk's time window, in
    /// program order.
    pub events: Vec<TimedEvent>,
}

/// One time window of a recorded execution: every thread's events with
/// `prev_window_end < at <= window_end`, plus the lock grants of the window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceChunk {
    /// Dense chunk sequence number (0-based).
    pub seq: u64,
    /// Inclusive upper bound of the window; all events of later chunks are
    /// strictly later than this.
    pub window_end: Time,
    /// Per-thread event runs, ascending thread order. Threads with no events
    /// in the window are omitted.
    pub spans: Vec<ThreadSpan>,
    /// Lock grants whose timestamps fall inside the window.
    pub grants: Vec<LockGrant>,
}

impl TraceChunk {
    /// Total number of events carried by this chunk.
    pub fn num_events(&self) -> usize {
        self.spans.iter().map(|s| s.events.len()).sum()
    }
}

/// Errors produced while producing or consuming an event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// An underlying I/O operation failed.
    Io(String),
    /// A line of a chunked trace file did not parse.
    Parse {
        /// 1-based line number in the file.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// The stream violated the chunk contract (out-of-order windows,
    /// non-contiguous spans, missing header, …).
    Format(String),
    /// The streamed events violated a trace invariant.
    Trace(TraceError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "stream I/O error: {e}"),
            StreamError::Parse { line, message } => {
                write!(f, "chunk file line {line} does not parse: {message}")
            }
            StreamError::Format(msg) => write!(f, "malformed event stream: {msg}"),
            StreamError::Trace(e) => write!(f, "streamed trace is invalid: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<TraceError> for StreamError {
    fn from(e: TraceError) -> Self {
        StreamError::Trace(e)
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e.to_string())
    }
}

/// A producer of [`TraceChunk`]s honouring the chunk contract.
pub trait EventSource {
    /// Metadata of the recorded execution.
    fn meta(&self) -> &TraceMeta;

    /// Number of threads in the recorded execution (dense ids `0..n`).
    fn num_threads(&self) -> usize;

    /// Pulls the next chunk, or `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// Sources backed by files report I/O and parse failures.
    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, StreamError>;
}

/// [`EventSource`] adapter over an in-memory [`Trace`].
///
/// Windows are chosen so each chunk carries roughly `chunk_events` events
/// (exactly honouring the chunk contract: a window always closes on a
/// timestamp boundary, so dense windows may exceed the target).
#[derive(Debug)]
pub struct TraceChunks<'a> {
    trace: &'a Trace,
    chunk_events: usize,
    cursors: Vec<usize>,
    grant_cursor: usize,
    seq: u64,
}

impl<'a> TraceChunks<'a> {
    /// Creates a chunked view over `trace` targeting `chunk_events` events
    /// per chunk (clamped to at least 1).
    pub fn new(trace: &'a Trace, chunk_events: usize) -> Self {
        TraceChunks {
            trace,
            chunk_events: chunk_events.max(1),
            cursors: vec![0; trace.threads.len()],
            grant_cursor: 0,
            seq: 0,
        }
    }
}

impl EventSource for TraceChunks<'_> {
    fn meta(&self) -> &TraceMeta {
        &self.trace.meta
    }

    fn num_threads(&self) -> usize {
        self.trace.threads.len()
    }

    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, StreamError> {
        let active: Vec<usize> = self
            .trace
            .threads
            .iter()
            .enumerate()
            .filter(|(i, t)| self.cursors[*i] < t.events.len())
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            // All events emitted; flush any stray grants in a final empty
            // chunk so a reassembled trace is complete.
            if self.grant_cursor < self.trace.lock_schedule.len() {
                let grants = self.trace.lock_schedule[self.grant_cursor..].to_vec();
                self.grant_cursor = self.trace.lock_schedule.len();
                let chunk = TraceChunk {
                    seq: self.seq,
                    window_end: Time::MAX,
                    spans: Vec::new(),
                    grants,
                };
                self.seq += 1;
                return Ok(Some(chunk));
            }
            return Ok(None);
        }

        // Aim the window so each active thread contributes about its share of
        // the per-chunk budget: the boundary is the earliest of the threads'
        // budget-th upcoming timestamps, which guarantees at least one
        // thread's whole budget fits while every thread stays within the
        // same time window.
        let budget = (self.chunk_events / active.len()).max(1);
        let mut window_end = Time::MAX;
        for &i in &active {
            let events = &self.trace.threads[i].events;
            let probe = (self.cursors[i] + budget - 1).min(events.len() - 1);
            window_end = window_end.min(events[probe].at);
        }

        let mut spans = Vec::new();
        for &i in &active {
            let events = &self.trace.threads[i].events;
            let start = self.cursors[i];
            let mut end = start;
            while end < events.len() && events[end].at <= window_end {
                end += 1;
            }
            self.cursors[i] = end;
            if end > start {
                spans.push(ThreadSpan {
                    thread: self.trace.threads[i].thread,
                    base_index: start,
                    events: events[start..end].to_vec(),
                });
            }
        }

        let grant_start = self.grant_cursor;
        while self.grant_cursor < self.trace.lock_schedule.len()
            && self.trace.lock_schedule[self.grant_cursor].at <= window_end
        {
            self.grant_cursor += 1;
        }
        let grants = self.trace.lock_schedule[grant_start..self.grant_cursor].to_vec();

        let chunk = TraceChunk {
            seq: self.seq,
            window_end,
            spans,
            grants,
        };
        self.seq += 1;
        Ok(Some(chunk))
    }
}

/// First record of a chunked trace file: everything a consumer needs before
/// the first event arrives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkFileHeader {
    /// Execution metadata.
    pub meta: TraceMeta,
    /// Number of threads (dense ids `0..n`).
    pub num_threads: usize,
    /// Interned code sites of the recorded execution.
    pub sites: SiteTable,
}

/// Last record of a chunked trace file: the whole-execution quantities that
/// are only known once recording ends.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkFileTrailer {
    /// Makespan of the original execution.
    pub total_time: Time,
    /// Per-thread finish times, indexed by thread id.
    pub finish_times: Vec<Time>,
    /// Number of chunk records written (for integrity checking).
    pub chunks: u64,
    /// Total events written across all chunks.
    pub events: u64,
}

/// One line of a chunked trace file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkFileRecord {
    /// File header; always the first line.
    Header(ChunkFileHeader),
    /// One time-window of events.
    Chunk(TraceChunk),
    /// File trailer; always the last line.
    Trailer(ChunkFileTrailer),
}

/// Streaming reader of a chunked trace file (JSON-lines, one
/// [`ChunkFileRecord`] per line).
///
/// Only one line is resident at a time; the file can be arbitrarily larger
/// than memory.
pub struct ChunkFileReader {
    lines: std::io::Lines<BufReader<std::fs::File>>,
    header: ChunkFileHeader,
    trailer: Option<ChunkFileTrailer>,
    line_no: usize,
    chunks_seen: u64,
    events_seen: u64,
    done: bool,
}

impl std::fmt::Debug for ChunkFileReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkFileReader")
            .field("header", &self.header)
            .field("chunks_seen", &self.chunks_seen)
            .field("events_seen", &self.events_seen)
            .finish_non_exhaustive()
    }
}

impl ChunkFileReader {
    /// Opens a chunked trace file and reads its header.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened, the first line does not parse, or
    /// it is not a [`ChunkFileRecord::Header`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StreamError> {
        let file = std::fs::File::open(path)?;
        let mut lines = BufReader::new(file).lines();
        let first = lines
            .next()
            .ok_or_else(|| StreamError::Format("empty chunk file".into()))??;
        let record: ChunkFileRecord =
            serde_json::from_str(&first).map_err(|e| StreamError::Parse {
                line: 1,
                message: e.0,
            })?;
        let ChunkFileRecord::Header(header) = record else {
            return Err(StreamError::Format(
                "chunk file does not start with a header record".into(),
            ));
        };
        Ok(ChunkFileReader {
            lines,
            header,
            trailer: None,
            line_no: 1,
            chunks_seen: 0,
            events_seen: 0,
            done: false,
        })
    }

    /// The interned code sites from the file header.
    pub fn sites(&self) -> &SiteTable {
        &self.header.sites
    }

    /// The file trailer; available once the stream has been fully consumed.
    pub fn trailer(&self) -> Option<&ChunkFileTrailer> {
        self.trailer.as_ref()
    }
}

impl EventSource for ChunkFileReader {
    fn meta(&self) -> &TraceMeta {
        &self.header.meta
    }

    fn num_threads(&self) -> usize {
        self.header.num_threads
    }

    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, StreamError> {
        if self.done {
            return Ok(None);
        }
        let Some(line) = self.lines.next() else {
            return Err(StreamError::Format(
                "chunk file ended without a trailer record".into(),
            ));
        };
        let line = line?;
        self.line_no += 1;
        let record: ChunkFileRecord =
            serde_json::from_str(&line).map_err(|e| StreamError::Parse {
                line: self.line_no,
                message: e.0,
            })?;
        match record {
            ChunkFileRecord::Header(_) => Err(StreamError::Format(format!(
                "unexpected second header at line {}",
                self.line_no
            ))),
            ChunkFileRecord::Chunk(chunk) => {
                self.chunks_seen += 1;
                self.events_seen += chunk.num_events() as u64;
                Ok(Some(chunk))
            }
            ChunkFileRecord::Trailer(trailer) => {
                if trailer.chunks != self.chunks_seen || trailer.events != self.events_seen {
                    return Err(StreamError::Format(format!(
                        "trailer claims {} chunks / {} events but {} / {} were read",
                        trailer.chunks, trailer.events, self.chunks_seen, self.events_seen
                    )));
                }
                self.trailer = Some(trailer);
                self.done = true;
                Ok(None)
            }
        }
    }
}

/// Reads a chunked trace file back into a full in-memory [`Trace`].
///
/// This is the inverse of `perfplay-record`'s `ChunkedWriter`: useful for
/// tests and for feeding chunk-recorded traces to consumers that have not
/// been converted to streaming yet.
///
/// # Errors
///
/// Propagates reader errors and reports spans that are not contiguous.
pub fn read_chunked_trace(path: impl AsRef<Path>) -> Result<Trace, StreamError> {
    let mut reader = ChunkFileReader::open(path)?;
    let mut trace = Trace::new(reader.meta().clone(), reader.num_threads());
    trace.sites = reader.sites().clone();
    while let Some(chunk) = reader.next_chunk()? {
        for span in chunk.spans {
            let Some(tt) = trace.threads.get_mut(span.thread.index()) else {
                return Err(StreamError::Format(format!(
                    "span for out-of-range thread {}",
                    span.thread
                )));
            };
            if span.base_index != tt.events.len() {
                return Err(StreamError::Format(format!(
                    "non-contiguous span for {}: base {} but {} events seen",
                    span.thread,
                    span.base_index,
                    tt.events.len()
                )));
            }
            for te in span.events {
                tt.push(te.at, te.event);
            }
        }
        trace.lock_schedule.extend(chunk.grants);
    }
    let trailer = reader
        .trailer()
        .ok_or_else(|| StreamError::Format("missing trailer".into()))?;
    trace.total_time = trailer.total_time;
    for (tt, finish) in trace.threads.iter_mut().zip(&trailer.finish_times) {
        tt.finish_time = *finish;
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::ids::{CodeSiteId, LockId, ObjectId};

    fn two_thread_trace() -> Trace {
        let mut trace = Trace::new(TraceMeta::default(), 2);
        for (ti, base) in [(0usize, 0u64), (1, 5)] {
            let t = &mut trace.threads[ti];
            t.push(
                Time::from_nanos(base + 1),
                Event::LockAcquire {
                    lock: LockId::new(0),
                    site: CodeSiteId::new(0),
                },
            );
            t.push(
                Time::from_nanos(base + 2),
                Event::Read {
                    obj: ObjectId::new(0),
                    value: 0,
                },
            );
            t.push(
                Time::from_nanos(base + 3),
                Event::LockRelease {
                    lock: LockId::new(0),
                },
            );
            t.push(Time::from_nanos(base + 4), Event::ThreadExit);
        }
        trace.lock_schedule = vec![
            LockGrant {
                seq: 0,
                lock: LockId::new(0),
                thread: ThreadId::new(0),
                event_index: 0,
                at: Time::from_nanos(1),
            },
            LockGrant {
                seq: 1,
                lock: LockId::new(0),
                thread: ThreadId::new(1),
                event_index: 0,
                at: Time::from_nanos(6),
            },
        ];
        trace.total_time = Time::from_nanos(9);
        trace
    }

    fn collect_chunks(source: &mut impl EventSource) -> Vec<TraceChunk> {
        let mut chunks = Vec::new();
        while let Some(c) = source.next_chunk().unwrap() {
            chunks.push(c);
        }
        chunks
    }

    #[test]
    fn trace_chunks_cover_every_event_once_in_order() {
        let trace = two_thread_trace();
        for chunk_events in 1..=10 {
            let mut source = TraceChunks::new(&trace, chunk_events);
            let chunks = collect_chunks(&mut source);
            // Contract 1: windows strictly ascend (ignoring the grant-flush
            // tail chunk, which carries no events).
            let mut prev: Option<Time> = None;
            let mut total_events = 0;
            let mut total_grants = 0;
            for chunk in &chunks {
                if let Some(p) = prev {
                    assert!(chunk.window_end > p, "chunk_events={chunk_events}");
                }
                for span in &chunk.spans {
                    for te in &span.events {
                        assert!(te.at <= chunk.window_end);
                        if let Some(p) = prev {
                            assert!(te.at > p, "tie straddled a boundary");
                        }
                    }
                    total_events += span.events.len();
                }
                total_grants += chunk.grants.len();
                prev = Some(chunk.window_end);
            }
            assert_eq!(total_events, trace.num_events());
            assert_eq!(total_grants, trace.lock_schedule.len());
        }
    }

    #[test]
    fn trace_chunks_spans_are_contiguous_per_thread() {
        let trace = two_thread_trace();
        let mut source = TraceChunks::new(&trace, 3);
        let chunks = collect_chunks(&mut source);
        let mut next_index = vec![0usize; trace.num_threads()];
        for chunk in &chunks {
            let mut prev_thread: Option<ThreadId> = None;
            for span in &chunk.spans {
                if let Some(p) = prev_thread {
                    assert!(span.thread > p, "spans not in ascending thread order");
                }
                prev_thread = Some(span.thread);
                assert_eq!(span.base_index, next_index[span.thread.index()]);
                next_index[span.thread.index()] += span.events.len();
            }
        }
        assert_eq!(next_index[0], trace.threads[0].len());
        assert_eq!(next_index[1], trace.threads[1].len());
    }

    #[test]
    fn empty_trace_produces_no_chunks() {
        let trace = Trace::new(TraceMeta::default(), 2);
        let mut source = TraceChunks::new(&trace, 4);
        assert_eq!(source.next_chunk().unwrap(), None);
    }

    #[test]
    fn chunk_records_roundtrip_through_serde() {
        let trace = two_thread_trace();
        let mut source = TraceChunks::new(&trace, 2);
        let chunk = source.next_chunk().unwrap().unwrap();
        let json = serde_json::to_string(&ChunkFileRecord::Chunk(chunk.clone())).unwrap();
        let back: ChunkFileRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ChunkFileRecord::Chunk(chunk));
    }

    #[test]
    fn stream_error_display_is_informative() {
        let e = StreamError::Parse {
            line: 7,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e: StreamError = TraceError::MisnumberedThread { index: 2 }.into();
        assert!(matches!(e, StreamError::Trace(_)));
    }
}
