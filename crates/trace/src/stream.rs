//! Streaming trace ingestion: time-windowed event chunks.
//!
//! The detection pass of the paper (Algorithm 1) assumes the whole event log
//! is resident. This module defines the abstraction that lifts that
//! assumption: an [`EventSource`] hands out [`TraceChunk`]s — per-thread runs
//! of events covering one window of original-execution time, plus the lock
//! grants of that window — so a consumer can analyze a trace far larger than
//! memory while holding only one window (and whatever incremental state it
//! keeps) resident.
//!
//! The chunk contract, which every source must honour and consumers may rely
//! on:
//!
//! 1. chunks arrive in ascending `window_end` order;
//! 2. chunk `k` contains **every** event with `prev_window_end < at <=
//!    window_end`, for every thread — equal-timestamp ties never straddle a
//!    chunk boundary;
//! 3. within a chunk, each thread's events are a contiguous run of that
//!    thread's stream (the [`ThreadSpan::base_index`] makes the absolute
//!    event indices recoverable), and spans are listed in ascending thread
//!    order.
//!
//! The contract is only satisfiable because [`ThreadTrace`] timestamps are
//! non-decreasing — the invariant [`ThreadTrace::push`] enforces.
//!
//! Two sources are provided: [`TraceChunks`], which adapts an in-memory
//! [`Trace`] (the executable spec and the bridge for already-recorded
//! traces), and [`ChunkFileReader`], which streams a chunked trace file
//! written by `perfplay-record`'s `ChunkedWriter`, so detection never needs
//! the full log in memory at all.
//!
//! Chunk files come in two on-disk formats carrying the identical record
//! stream — JSON-lines (one [`ChunkFileRecord`] per line) and the compact
//! PBIN binary framing (see [`crate::pbin`]) — discriminated by
//! [`ChunkFormat`]. Readers autodetect by magic bytes and accept an explicit
//! override; all location reporting is format-agnostic: `line` is the
//! 1-based record ordinal (the line number for JSON) and `offset` the byte
//! offset of the record's start.

use std::io::{BufRead, BufReader};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::event::{LockGrant, TimedEvent};
use crate::ids::ThreadId;
use crate::pbin::{ChunkFormat, PbinScanner};
use crate::pipelined::PipelinedScanner;
use crate::site::SiteTable;
use crate::time::Time;
use crate::trace::{Trace, TraceError, TraceMeta};

/// A contiguous run of one thread's events inside a [`TraceChunk`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadSpan {
    /// Thread the events belong to.
    pub thread: ThreadId,
    /// Absolute index (into the thread's full event stream) of `events[0]`.
    pub base_index: usize,
    /// The events of this thread falling in the chunk's time window, in
    /// program order.
    pub events: Vec<TimedEvent>,
}

/// One time window of a recorded execution: every thread's events with
/// `prev_window_end < at <= window_end`, plus the lock grants of the window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceChunk {
    /// Dense chunk sequence number (0-based).
    pub seq: u64,
    /// Inclusive upper bound of the window; all events of later chunks are
    /// strictly later than this.
    pub window_end: Time,
    /// Per-thread event runs, ascending thread order. Threads with no events
    /// in the window are omitted.
    pub spans: Vec<ThreadSpan>,
    /// Lock grants whose timestamps fall inside the window.
    pub grants: Vec<LockGrant>,
}

impl TraceChunk {
    /// Total number of events carried by this chunk.
    pub fn num_events(&self) -> usize {
        self.spans.iter().map(|s| s.events.len()).sum()
    }
}

/// Errors produced while producing or consuming an event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// An underlying I/O operation failed.
    Io(String),
    /// A line of a chunked trace file did not parse.
    Parse {
        /// 1-based line number in the file.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// The stream violated the chunk contract (out-of-order windows,
    /// non-contiguous spans, missing header, …).
    Format(String),
    /// The streamed events violated a trace invariant.
    Trace(TraceError),
    /// The consumer was configured in a way it cannot honour (e.g. a
    /// parallel flag on an entry point that cannot satisfy it). The message
    /// names the unsupported combination and the entry point that supports
    /// it.
    Config(String),
    /// An error located in a specific file: the path and byte offset make
    /// failures attributable when a daemon ingests many streams at once.
    At {
        /// Path of the chunk file the error occurred in.
        path: String,
        /// 1-based line number of the offending record.
        line: usize,
        /// Byte offset of the start of the offending line.
        offset: u64,
        /// The underlying error.
        source: Box<StreamError>,
    },
}

impl StreamError {
    /// Unwraps [`StreamError::At`] location layers down to the underlying
    /// error.
    pub fn root_cause(&self) -> &StreamError {
        match self {
            StreamError::At { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "stream I/O error: {e}"),
            StreamError::Parse { line, message } => {
                write!(f, "chunk file line {line} does not parse: {message}")
            }
            StreamError::Format(msg) => write!(f, "malformed event stream: {msg}"),
            StreamError::Trace(e) => write!(f, "streamed trace is invalid: {e}"),
            StreamError::Config(msg) => write!(f, "unsupported configuration: {msg}"),
            StreamError::At {
                path,
                line,
                offset,
                source,
            } => write!(f, "{path}:{line} (byte {offset}): {source}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// How a chunk-file reader responds to a corrupt or contract-violating
/// record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Surface the first failure as a [`StreamError`] and stop (the
    /// historical behavior).
    #[default]
    Fail,
    /// Skip the offending record, emit a [`StreamGap`], resynchronize on the
    /// next record boundary and keep going.
    SkipChunk,
    /// Emit a [`StreamGap`] for the first failure and end the stream cleanly
    /// with whatever valid prefix was read.
    SkipStream,
}

/// One hole a recovering reader left in the event stream: the consumer saw
/// every chunk around the gap but none of the events inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamGap {
    /// Number of chunks successfully delivered before the gap.
    pub chunk_index: u64,
    /// 1-based line number of the skipped record (or of end-of-file for a
    /// truncation gap).
    pub line: usize,
    /// Byte offset of the start of the skipped record.
    pub offset: u64,
    /// Events known to be lost in this gap. `0` when the record was
    /// unreadable and the loss is unknown until trailer reconciliation.
    pub events_lost: u64,
    /// The failure that opened the gap.
    pub cause: Box<StreamError>,
}

impl std::fmt::Display for StreamGap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gap after chunk {} at line {} (byte {}), {} events lost: {}",
            self.chunk_index, self.line, self.offset, self.events_lost, self.cause
        )
    }
}

/// One item of a recoverable event stream: a chunk, or a gap where a chunk
/// could not be delivered.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamItem {
    /// The next chunk of events.
    Chunk(TraceChunk),
    /// A hole: events were lost here and the consumer should resynchronize.
    Gap(StreamGap),
}

impl From<TraceError> for StreamError {
    fn from(e: TraceError) -> Self {
        StreamError::Trace(e)
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e.to_string())
    }
}

/// A producer of [`TraceChunk`]s honouring the chunk contract.
pub trait EventSource {
    /// Metadata of the recorded execution.
    fn meta(&self) -> &TraceMeta;

    /// Number of threads in the recorded execution (dense ids `0..n`).
    fn num_threads(&self) -> usize;

    /// Pulls the next chunk, or `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// Sources backed by files report I/O and parse failures.
    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, StreamError>;

    /// Pulls the next stream item — a chunk, or a [`StreamGap`] where a
    /// recovering source skipped unreadable input.
    ///
    /// The default forwards to [`next_chunk`](Self::next_chunk) and never
    /// produces gaps; recovering sources override it. Gap-aware consumers
    /// should prefer this over `next_chunk` so losses reach them instead of
    /// being skipped silently.
    ///
    /// # Errors
    ///
    /// Same conditions as [`next_chunk`](Self::next_chunk).
    fn next_item(&mut self) -> Result<Option<StreamItem>, StreamError> {
        Ok(self.next_chunk()?.map(StreamItem::Chunk))
    }
}

/// [`EventSource`] adapter over an in-memory [`Trace`].
///
/// Windows are chosen so each chunk carries roughly `chunk_events` events
/// (exactly honouring the chunk contract: a window always closes on a
/// timestamp boundary, so dense windows may exceed the target).
#[derive(Debug)]
pub struct TraceChunks<'a> {
    trace: &'a Trace,
    chunk_events: usize,
    cursors: Vec<usize>,
    grant_cursor: usize,
    seq: u64,
}

impl<'a> TraceChunks<'a> {
    /// Creates a chunked view over `trace` targeting `chunk_events` events
    /// per chunk (clamped to at least 1).
    pub fn new(trace: &'a Trace, chunk_events: usize) -> Self {
        TraceChunks {
            trace,
            chunk_events: chunk_events.max(1),
            cursors: vec![0; trace.threads.len()],
            grant_cursor: 0,
            seq: 0,
        }
    }
}

impl EventSource for TraceChunks<'_> {
    fn meta(&self) -> &TraceMeta {
        &self.trace.meta
    }

    fn num_threads(&self) -> usize {
        self.trace.threads.len()
    }

    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, StreamError> {
        let active: Vec<usize> = self
            .trace
            .threads
            .iter()
            .enumerate()
            .filter(|(i, t)| self.cursors[*i] < t.events.len())
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            // All events emitted; flush any stray grants in a final empty
            // chunk so a reassembled trace is complete.
            if self.grant_cursor < self.trace.lock_schedule.len() {
                let grants = self.trace.lock_schedule[self.grant_cursor..].to_vec();
                self.grant_cursor = self.trace.lock_schedule.len();
                let chunk = TraceChunk {
                    seq: self.seq,
                    window_end: Time::MAX,
                    spans: Vec::new(),
                    grants,
                };
                self.seq += 1;
                return Ok(Some(chunk));
            }
            return Ok(None);
        }

        // Aim the window so each active thread contributes about its share of
        // the per-chunk budget: the boundary is the earliest of the threads'
        // budget-th upcoming timestamps, which guarantees at least one
        // thread's whole budget fits while every thread stays within the
        // same time window.
        let budget = (self.chunk_events / active.len()).max(1);
        let mut window_end = Time::MAX;
        for &i in &active {
            let events = &self.trace.threads[i].events;
            let probe = (self.cursors[i] + budget - 1).min(events.len() - 1);
            window_end = window_end.min(events[probe].at);
        }

        let mut spans = Vec::new();
        for &i in &active {
            let events = &self.trace.threads[i].events;
            let start = self.cursors[i];
            let mut end = start;
            while end < events.len() && events[end].at <= window_end {
                end += 1;
            }
            self.cursors[i] = end;
            if end > start {
                spans.push(ThreadSpan {
                    thread: self.trace.threads[i].thread,
                    base_index: start,
                    events: events[start..end].to_vec(),
                });
            }
        }

        let grant_start = self.grant_cursor;
        while self.grant_cursor < self.trace.lock_schedule.len()
            && self.trace.lock_schedule[self.grant_cursor].at <= window_end
        {
            self.grant_cursor += 1;
        }
        let grants = self.trace.lock_schedule[grant_start..self.grant_cursor].to_vec();

        let chunk = TraceChunk {
            seq: self.seq,
            window_end,
            spans,
            grants,
        };
        self.seq += 1;
        Ok(Some(chunk))
    }
}

/// First record of a chunked trace file: everything a consumer needs before
/// the first event arrives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkFileHeader {
    /// Execution metadata.
    pub meta: TraceMeta,
    /// Number of threads (dense ids `0..n`).
    pub num_threads: usize,
    /// Interned code sites of the recorded execution.
    pub sites: SiteTable,
}

/// Last record of a chunked trace file: the whole-execution quantities that
/// are only known once recording ends.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkFileTrailer {
    /// Makespan of the original execution.
    pub total_time: Time,
    /// Per-thread finish times, indexed by thread id.
    pub finish_times: Vec<Time>,
    /// Number of chunk records written (for integrity checking).
    pub chunks: u64,
    /// Total events written across all chunks.
    pub events: u64,
}

/// One line of a chunked trace file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkFileRecord {
    /// File header; always the first line.
    Header(ChunkFileHeader),
    /// One time-window of events.
    Chunk(TraceChunk),
    /// File trailer; always the last line.
    Trailer(ChunkFileTrailer),
}

/// Streaming reader of a chunked trace file, in either [`ChunkFormat`].
///
/// Only one record is resident at a time; the file can be arbitrarily
/// larger than memory. Binary records are decoded from a reused frame
/// buffer with no intermediate `String`/JSON value allocations.
///
/// Every error the reader produces is wrapped in [`StreamError::At`] with
/// the file path, record ordinal (`line`) and byte offset, so multi-stream
/// logs are attributable. Under a non-[`Fail`](RecoveryPolicy::Fail) policy
/// the reader converts failures into [`StreamGap`]s instead: it validates
/// each chunk against the chunk contract before delivering it, skips bad
/// records, resynchronizes on the next record boundary (the next line, or
/// the next binary frame marker), and reconciles the total event loss
/// against the trailer when one is present.
pub struct ChunkFileReader {
    scanner: RecordScanner,
    format: ChunkFormat,
    path: String,
    policy: RecoveryPolicy,
    header: ChunkFileHeader,
    trailer: Option<ChunkFileTrailer>,
    line_no: usize,
    /// Byte offset of the start of the next unread record.
    offset: u64,
    chunks_seen: u64,
    events_seen: u64,
    /// Per-thread count of events delivered, for contiguity validation.
    next_index: Vec<usize>,
    /// Threads whose next span may jump forward (set after a gap).
    resync: Vec<bool>,
    /// Window of the last delivered non-empty chunk.
    last_window_end: Option<Time>,
    gaps: Vec<StreamGap>,
    done: bool,
}

impl std::fmt::Debug for ChunkFileReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkFileReader")
            .field("path", &self.path)
            .field("format", &self.format)
            .field("policy", &self.policy)
            .field("header", &self.header)
            .field("chunks_seen", &self.chunks_seen)
            .field("events_seen", &self.events_seen)
            .field("gaps", &self.gaps.len())
            .finish_non_exhaustive()
    }
}

impl ChunkFileReader {
    /// Opens a chunked trace file (format autodetected by magic bytes) and
    /// reads its header, failing on the first malformed record
    /// ([`RecoveryPolicy::Fail`]).
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened, the first record does not parse,
    /// or it is not a [`ChunkFileRecord::Header`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StreamError> {
        Self::with_policy(path, RecoveryPolicy::Fail)
    }

    /// Opens a chunked trace file with an explicit format instead of
    /// autodetection, under [`RecoveryPolicy::Fail`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`open`](Self::open).
    pub fn open_with_format(
        path: impl AsRef<Path>,
        format: ChunkFormat,
    ) -> Result<Self, StreamError> {
        Self::with_policy_and_format(path, RecoveryPolicy::Fail, Some(format))
    }

    /// Opens a chunked trace file with an explicit [`RecoveryPolicy`]
    /// (format autodetected).
    ///
    /// The header must be readable under every policy — without it the
    /// stream has no thread count or site table and nothing downstream can
    /// run.
    ///
    /// # Errors
    ///
    /// Same conditions as [`open`](Self::open).
    pub fn with_policy(
        path: impl AsRef<Path>,
        policy: RecoveryPolicy,
    ) -> Result<Self, StreamError> {
        Self::with_policy_and_format(path, policy, None)
    }

    /// Opens a chunked trace file with an explicit [`RecoveryPolicy`] and an
    /// optional format override (`None` autodetects by magic bytes).
    ///
    /// # Errors
    ///
    /// Same conditions as [`open`](Self::open).
    pub fn with_policy_and_format(
        path: impl AsRef<Path>,
        policy: RecoveryPolicy,
        format: Option<ChunkFormat>,
    ) -> Result<Self, StreamError> {
        let path_str = path.as_ref().display().to_string();
        let (format, scanner) =
            RecordScanner::open(&path, format).map_err(|e| StreamError::At {
                path: path_str.clone(),
                line: 0,
                offset: 0,
                source: Box::new(e),
            })?;
        Self::from_scanner(path_str, format, scanner, policy)
    }

    /// Opens a chunked trace file through the pipelined scanner
    /// ([`crate::PipelinedChunkReader`] is the public face): a framing
    /// thread plus `decode_workers` deserialization workers (`0` sizes the
    /// pool from `available_parallelism`), delivering the identical record
    /// stream the sequential scanner would.
    ///
    /// # Errors
    ///
    /// Same conditions as [`open`](Self::open), plus thread-spawn failures
    /// reported as [`StreamError::Io`].
    pub fn open_pipelined(
        path: impl AsRef<Path>,
        policy: RecoveryPolicy,
        format: Option<ChunkFormat>,
        decode_workers: usize,
    ) -> Result<Self, StreamError> {
        let path_str = path.as_ref().display().to_string();
        let at0 = |source: StreamError| StreamError::At {
            path: path_str.clone(),
            line: 0,
            offset: 0,
            source: Box::new(source),
        };
        let format = match format {
            Some(f) => f,
            None => ChunkFormat::detect(&path).map_err(&at0)?,
        };
        let scanner =
            PipelinedScanner::spawn(path.as_ref(), format, decode_workers).map_err(&at0)?;
        Self::from_scanner(path_str, format, RecordScanner::Pipelined(scanner), policy)
    }

    /// Shared constructor tail: reads the header record (required under
    /// every policy) and seeds the reader state.
    fn from_scanner(
        path_str: String,
        format: ChunkFormat,
        mut scanner: RecordScanner,
        policy: RecoveryPolicy,
    ) -> Result<Self, StreamError> {
        let at = |line: usize, offset: u64, source: StreamError| StreamError::At {
            path: path_str.clone(),
            line,
            offset,
            source: Box::new(source),
        };
        let first = scanner
            .next_record()
            .ok_or_else(|| at(1, 0, StreamError::Format("empty chunk file".into())))?;
        let record = first.record.map_err(|e| at(first.line, first.offset, e))?;
        let ChunkFileRecord::Header(header) = record else {
            return Err(at(
                first.line,
                first.offset,
                StreamError::Format("chunk file does not start with a header record".into()),
            ));
        };
        let num_threads = header.num_threads;
        Ok(ChunkFileReader {
            scanner,
            format,
            path: path_str,
            policy,
            header,
            trailer: None,
            line_no: first.line,
            offset: first.offset + first.bytes,
            chunks_seen: 0,
            events_seen: 0,
            next_index: vec![0; num_threads],
            resync: vec![false; num_threads],
            last_window_end: None,
            gaps: Vec::new(),
            done: false,
        })
    }

    /// The path of the file being read.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The on-disk format of the file being read.
    pub fn format(&self) -> ChunkFormat {
        self.format
    }

    /// The recovery policy in effect.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// The interned code sites from the file header.
    pub fn sites(&self) -> &SiteTable {
        &self.header.sites
    }

    /// The file trailer; available once the stream has been fully consumed.
    pub fn trailer(&self) -> Option<&ChunkFileTrailer> {
        self.trailer.as_ref()
    }

    /// Every gap recorded so far (non-empty only under a recovering policy).
    pub fn gaps(&self) -> &[StreamGap] {
        &self.gaps
    }

    /// Total events known lost across all recorded gaps.
    pub fn events_lost(&self) -> u64 {
        self.gaps.iter().map(|g| g.events_lost).sum()
    }

    /// Wraps an error with this file's path and the given location.
    fn locate(&self, line: usize, offset: u64, source: StreamError) -> StreamError {
        StreamError::At {
            path: self.path.clone(),
            line,
            offset,
            source: Box::new(source),
        }
    }

    /// Records a gap at the given location and marks every thread for
    /// forward resynchronization.
    fn record_gap(
        &mut self,
        line: usize,
        offset: u64,
        events_lost: u64,
        cause: StreamError,
    ) -> StreamGap {
        let gap = StreamGap {
            chunk_index: self.chunks_seen,
            line,
            offset,
            events_lost,
            cause: Box::new(cause),
        };
        self.gaps.push(gap.clone());
        for flag in &mut self.resync {
            *flag = true;
        }
        gap
    }

    /// Checks one parsed chunk against the chunk contract: advancing window,
    /// ascending in-range spans, per-thread contiguity (allowing a forward
    /// jump right after a gap), and every event inside the window in
    /// non-decreasing order. Read-only; [`admit_chunk`](Self::admit_chunk)
    /// commits the state updates once the chunk is accepted.
    fn validate_chunk(&self, chunk: &TraceChunk) -> Result<(), StreamError> {
        if let Some(prev) = self.last_window_end {
            if chunk.window_end <= prev && chunk.num_events() > 0 {
                return Err(StreamError::Format(format!(
                    "chunk {} window {} does not advance past {}",
                    chunk.seq, chunk.window_end, prev
                )));
            }
        }
        let mut prev_thread: Option<ThreadId> = None;
        for span in &chunk.spans {
            if prev_thread.is_some_and(|p| span.thread <= p) {
                return Err(StreamError::Format(format!(
                    "chunk {} spans not in ascending thread order",
                    chunk.seq
                )));
            }
            prev_thread = Some(span.thread);
            let ti = span.thread.index();
            if ti >= self.header.num_threads {
                return Err(StreamError::Format(format!(
                    "span for out-of-range thread {}",
                    span.thread
                )));
            }
            if self.resync[ti] {
                if span.base_index < self.next_index[ti] {
                    return Err(StreamError::Format(format!(
                        "span for {} rewinds across a gap: base {} but {} events seen",
                        span.thread, span.base_index, self.next_index[ti]
                    )));
                }
            } else if span.base_index != self.next_index[ti] {
                return Err(StreamError::Format(format!(
                    "non-contiguous span for {}: base {} but {} events seen",
                    span.thread, span.base_index, self.next_index[ti]
                )));
            }
            let mut last = self.last_window_end;
            for (offset, te) in span.events.iter().enumerate() {
                if te.at > chunk.window_end {
                    return Err(StreamError::Format(format!(
                        "event {} of {} at {} is outside chunk {}'s window",
                        span.base_index + offset,
                        span.thread,
                        te.at,
                        chunk.seq
                    )));
                }
                if last.is_some_and(|p| te.at < p) {
                    return Err(StreamError::Trace(TraceError::NonMonotonicTime {
                        thread: span.thread,
                        event_index: span.base_index + offset,
                    }));
                }
                // Events of the first span position must additionally clear
                // the previous window: `last` starts at the window boundary
                // (inclusive is fine — the strict check lives in the
                // detector, which knows the exact previous window).
                last = Some(te.at);
            }
        }
        Ok(())
    }

    /// Commits the reader-side bookkeeping for an accepted chunk.
    fn admit_chunk(&mut self, chunk: &TraceChunk) {
        for span in &chunk.spans {
            let ti = span.thread.index();
            self.next_index[ti] = span.base_index + span.events.len();
            self.resync[ti] = false;
        }
        self.last_window_end = Some(chunk.window_end);
        self.chunks_seen += 1;
        self.events_seen += chunk.num_events() as u64;
    }

    /// Reads one record, applying the recovery policy. Returns `Ok(None)`
    /// only at a clean end of stream.
    fn read_item(&mut self) -> Result<Option<StreamItem>, StreamError> {
        if self.done {
            return Ok(None);
        }
        {
            let Some(raw) = self.scanner.next_record() else {
                let line_no = self.line_no + 1;
                let line_offset = self.offset;
                let cause = StreamError::Format("chunk file ended without a trailer record".into());
                return match self.policy {
                    RecoveryPolicy::Fail => Err(self.locate(line_no, line_offset, cause)),
                    _ => {
                        self.done = true;
                        Ok(Some(StreamItem::Gap(self.record_gap(
                            line_no,
                            line_offset,
                            0,
                            cause,
                        ))))
                    }
                };
            };
            let line_no = raw.line;
            let line_offset = raw.offset;
            self.line_no = raw.line;
            self.offset = raw.offset + raw.bytes;
            let record = match raw.record {
                Ok(r) => r,
                Err(cause) => {
                    // The stream position is unknowable after a read error,
                    // so even recovering policies end the stream on I/O
                    // failures; parse failures resynchronize on the next
                    // record boundary under SkipChunk.
                    let ends_stream = matches!(cause.root_cause(), StreamError::Io(_))
                        || !matches!(self.policy, RecoveryPolicy::SkipChunk);
                    match self.policy {
                        RecoveryPolicy::Fail => {
                            return Err(self.locate(line_no, line_offset, cause));
                        }
                        RecoveryPolicy::SkipChunk | RecoveryPolicy::SkipStream => {
                            if ends_stream {
                                self.done = true;
                            }
                            return Ok(Some(StreamItem::Gap(self.record_gap(
                                line_no,
                                line_offset,
                                0,
                                cause,
                            ))));
                        }
                    }
                }
            };
            let (cause, events_lost) = match record {
                ChunkFileRecord::Header(_) => (
                    StreamError::Format(format!("unexpected second header at line {line_no}")),
                    0u64,
                ),
                ChunkFileRecord::Chunk(chunk) => match self.validate_chunk(&chunk) {
                    Ok(()) => {
                        self.admit_chunk(&chunk);
                        return Ok(Some(StreamItem::Chunk(chunk)));
                    }
                    Err(cause) => {
                        let lost = chunk.num_events() as u64;
                        (cause, lost)
                    }
                },
                ChunkFileRecord::Trailer(trailer) => {
                    return self.finish_at_trailer(trailer, line_no, line_offset);
                }
            };
            match self.policy {
                RecoveryPolicy::Fail => Err(self.locate(line_no, line_offset, cause)),
                RecoveryPolicy::SkipChunk => Ok(Some(StreamItem::Gap(self.record_gap(
                    line_no,
                    line_offset,
                    events_lost,
                    cause,
                )))),
                RecoveryPolicy::SkipStream => {
                    self.done = true;
                    Ok(Some(StreamItem::Gap(self.record_gap(
                        line_no,
                        line_offset,
                        events_lost,
                        cause,
                    ))))
                }
            }
        }
    }

    /// Handles the trailer record: verifies the integrity counts, and under
    /// a recovering policy reconciles the true event loss (the trailer is
    /// the writer's ground truth) into one final accounting gap.
    fn finish_at_trailer(
        &mut self,
        trailer: ChunkFileTrailer,
        line_no: usize,
        line_offset: u64,
    ) -> Result<Option<StreamItem>, StreamError> {
        let counts_match = trailer.chunks == self.chunks_seen && trailer.events == self.events_seen;
        if counts_match {
            self.trailer = Some(trailer);
            self.done = true;
            return Ok(None);
        }
        let cause = StreamError::Format(format!(
            "trailer claims {} chunks / {} events but {} / {} were read",
            trailer.chunks, trailer.events, self.chunks_seen, self.events_seen
        ));
        if matches!(self.policy, RecoveryPolicy::Fail) {
            return Err(self.locate(line_no, line_offset, cause));
        }
        let counted: u64 = self.events_lost();
        let residual = trailer
            .events
            .saturating_sub(self.events_seen)
            .saturating_sub(counted);
        self.trailer = Some(trailer);
        self.done = true;
        if residual > 0 || self.gaps.is_empty() {
            return Ok(Some(StreamItem::Gap(self.record_gap(
                line_no,
                line_offset,
                residual,
                cause,
            ))));
        }
        Ok(None)
    }
}

impl EventSource for ChunkFileReader {
    fn meta(&self) -> &TraceMeta {
        &self.header.meta
    }

    fn num_threads(&self) -> usize {
        self.header.num_threads
    }

    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, StreamError> {
        // Gap-unaware consumers skip over gaps; the losses stay queryable
        // through [`gaps`](Self::gaps).
        loop {
            match self.read_item()? {
                Some(StreamItem::Chunk(chunk)) => return Ok(Some(chunk)),
                Some(StreamItem::Gap(_)) => continue,
                None => return Ok(None),
            }
        }
    }

    fn next_item(&mut self) -> Result<Option<StreamItem>, StreamError> {
        self.read_item()
    }
}

/// One record scanned by [`RawChunkRecords`]: its exact file coordinates
/// plus the parse outcome. Parse failures are data, not stream terminators —
/// the scanner keeps going on the next record boundary.
#[derive(Debug)]
pub struct RawRecord {
    /// 1-based record ordinal (the line number for JSON-lines files).
    pub line: usize,
    /// Byte offset of the start of the record.
    pub offset: u64,
    /// Bytes consumed by the record (including the newline for JSON-lines;
    /// including the file prelude for the first binary record, so a clean
    /// file's record extents tile the whole file).
    pub bytes: u64,
    /// The parsed record, or why it did not parse.
    pub record: Result<ChunkFileRecord, StreamError>,
}

/// The I/O-error message `BufRead::lines` reports for invalid UTF-8; the
/// buffer-reusing scanner and the pipelined decode workers reproduce it so
/// the error surface is independent of the read path.
pub(crate) const UTF8_ERROR: &str = "stream did not contain valid UTF-8";

/// Strips the line terminator the way `BufRead::lines` does: a trailing
/// `\n`, then a single `\r` before it (only when the `\n` was present).
pub(crate) fn trim_line(buf: &[u8]) -> &[u8] {
    match buf {
        [head @ .., b'\r', b'\n'] => head,
        [head @ .., b'\n'] => head,
        _ => buf,
    }
}

/// Format-dispatching record scanner: yields every record of a chunk file,
/// parse failures included, in either [`ChunkFormat`].
#[derive(Debug)]
enum RecordScanner {
    Json {
        input: BufReader<std::fs::File>,
        /// Reused line buffer: one allocation serves every record.
        buf: Vec<u8>,
        line_no: usize,
        offset: u64,
        done: bool,
    },
    Pbin(PbinScanner),
    /// Three-stage pipelined scanner (framing thread + decode workers),
    /// delivering the identical record stream as the two above.
    Pipelined(PipelinedScanner),
}

impl RecordScanner {
    /// Opens `path` for record scanning, autodetecting the format by magic
    /// bytes unless `format` overrides it.
    fn open(
        path: impl AsRef<Path>,
        format: Option<ChunkFormat>,
    ) -> Result<(ChunkFormat, Self), StreamError> {
        let format = match format {
            Some(f) => f,
            None => ChunkFormat::detect(&path)?,
        };
        let scanner = match format {
            ChunkFormat::Json => {
                let file = std::fs::File::open(&path).map_err(StreamError::from)?;
                RecordScanner::Json {
                    input: BufReader::new(file),
                    buf: Vec::new(),
                    line_no: 0,
                    offset: 0,
                    done: false,
                }
            }
            ChunkFormat::Pbin => RecordScanner::Pbin(PbinScanner::open(path)?),
        };
        Ok((format, scanner))
    }

    fn next_record(&mut self) -> Option<RawRecord> {
        match self {
            RecordScanner::Json {
                input,
                buf,
                line_no,
                offset,
                done,
            } => {
                if *done {
                    return None;
                }
                let this_line = *line_no + 1;
                let line_offset = *offset;
                buf.clear();
                let n = match input.read_until(b'\n', buf) {
                    Ok(n) => n,
                    Err(e) => {
                        *done = true;
                        return Some(RawRecord {
                            line: this_line,
                            offset: line_offset,
                            bytes: 0,
                            record: Err(StreamError::Io(e.to_string())),
                        });
                    }
                };
                if n == 0 {
                    *done = true;
                    return None;
                }
                let content = trim_line(buf);
                let Ok(text) = std::str::from_utf8(content) else {
                    *done = true;
                    return Some(RawRecord {
                        line: this_line,
                        offset: line_offset,
                        bytes: 0,
                        record: Err(StreamError::Io(UTF8_ERROR.into())),
                    });
                };
                *line_no = this_line;
                let bytes = content.len() as u64 + 1;
                *offset += bytes;
                let record = serde_json::from_str(text).map_err(|e| StreamError::Parse {
                    line: this_line,
                    message: e.0,
                });
                Some(RawRecord {
                    line: this_line,
                    offset: line_offset,
                    bytes,
                    record,
                })
            }
            RecordScanner::Pbin(scanner) => scanner.next_record(),
            RecordScanner::Pipelined(scanner) => scanner.next_record(),
        }
    }
}

/// Low-level record-by-record scanner of a chunked trace file, in either
/// [`ChunkFormat`].
///
/// Unlike [`ChunkFileReader`] this performs **no** contract validation and
/// **no** recovery bookkeeping: every record is surfaced verbatim with its
/// 1-based ordinal and byte offset, parse failures included, so a consumer
/// (e.g. a lint pass) can attribute each finding to exact file coordinates
/// and keep scanning past malformed records. Only one record is resident at
/// a time.
///
/// An unreadable record (an I/O error mid-file) is reported as one final
/// [`RawRecord`] carrying [`StreamError::Io`], after which the scanner ends:
/// the stream position is unknowable past a failed read.
#[derive(Debug)]
pub struct RawChunkRecords {
    scanner: RecordScanner,
    format: ChunkFormat,
}

impl RawChunkRecords {
    /// Opens a chunk file for raw scanning, autodetecting the format by
    /// magic bytes.
    ///
    /// # Errors
    ///
    /// Fails only if the file cannot be opened; everything else — including
    /// an empty file — is reported through the iterator.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StreamError> {
        Self::open_with_format(path, None)
    }

    /// Opens a chunk file for raw scanning with an optional format override
    /// (`None` autodetects by magic bytes).
    ///
    /// # Errors
    ///
    /// Same conditions as [`open`](Self::open).
    pub fn open_with_format(
        path: impl AsRef<Path>,
        format: Option<ChunkFormat>,
    ) -> Result<Self, StreamError> {
        let (format, scanner) = RecordScanner::open(path, format)?;
        Ok(RawChunkRecords { scanner, format })
    }

    /// Opens a chunk file for raw scanning through the three-stage pipelined
    /// scanner: a framing thread walks record boundaries while a pool of
    /// `decode_workers` threads deserializes payloads (`0` sizes the pool
    /// from [`crate::default_decode_workers`]). Yields the identical record
    /// sequence as [`open`](Self::open).
    ///
    /// # Errors
    ///
    /// Same conditions as [`open`](Self::open), plus thread-spawn failures.
    pub fn open_pipelined(
        path: impl AsRef<Path>,
        format: Option<ChunkFormat>,
        decode_workers: usize,
    ) -> Result<Self, StreamError> {
        let format = match format {
            Some(f) => f,
            None => ChunkFormat::detect(&path)?,
        };
        let scanner = PipelinedScanner::spawn(path.as_ref(), format, decode_workers)?;
        Ok(RawChunkRecords {
            scanner: RecordScanner::Pipelined(scanner),
            format,
        })
    }

    /// The on-disk format being scanned.
    pub fn format(&self) -> ChunkFormat {
        self.format
    }
}

impl Iterator for RawChunkRecords {
    type Item = RawRecord;

    fn next(&mut self) -> Option<RawRecord> {
        self.scanner.next_record()
    }
}

/// Reads a chunked trace file back into a full in-memory [`Trace`].
///
/// This is the inverse of `perfplay-record`'s `ChunkedWriter`: useful for
/// tests and for feeding chunk-recorded traces to consumers that have not
/// been converted to streaming yet.
///
/// # Errors
///
/// Propagates reader errors and reports spans that are not contiguous.
pub fn read_chunked_trace(path: impl AsRef<Path>) -> Result<Trace, StreamError> {
    let mut reader = ChunkFileReader::open(path)?;
    let mut trace = Trace::new(reader.meta().clone(), reader.num_threads());
    trace.sites = reader.sites().clone();
    while let Some(chunk) = reader.next_chunk()? {
        for span in chunk.spans {
            let Some(tt) = trace.threads.get_mut(span.thread.index()) else {
                return Err(StreamError::Format(format!(
                    "span for out-of-range thread {}",
                    span.thread
                )));
            };
            if span.base_index != tt.events.len() {
                return Err(StreamError::Format(format!(
                    "non-contiguous span for {}: base {} but {} events seen",
                    span.thread,
                    span.base_index,
                    tt.events.len()
                )));
            }
            for te in span.events {
                // Pre-check monotonicity: `ThreadTrace::push` debug-asserts
                // it, and an untrusted file must yield a typed error in every
                // build profile, not a panic.
                if tt.events.last().is_some_and(|prev| te.at < prev.at) {
                    return Err(StreamError::Trace(TraceError::NonMonotonicTime {
                        thread: span.thread,
                        event_index: tt.events.len(),
                    }));
                }
                tt.push(te.at, te.event);
            }
        }
        trace.lock_schedule.extend(chunk.grants);
    }
    let trailer = reader
        .trailer()
        .ok_or_else(|| StreamError::Format("missing trailer".into()))?;
    trace.total_time = trailer.total_time;
    for (tt, finish) in trace.threads.iter_mut().zip(&trailer.finish_times) {
        tt.finish_time = *finish;
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::ids::{CodeSiteId, LockId, ObjectId};

    fn two_thread_trace() -> Trace {
        let mut trace = Trace::new(TraceMeta::default(), 2);
        for (ti, base) in [(0usize, 0u64), (1, 5)] {
            let t = &mut trace.threads[ti];
            t.push(
                Time::from_nanos(base + 1),
                Event::LockAcquire {
                    lock: LockId::new(0),
                    site: CodeSiteId::new(0),
                },
            );
            t.push(
                Time::from_nanos(base + 2),
                Event::Read {
                    obj: ObjectId::new(0),
                    value: 0,
                },
            );
            t.push(
                Time::from_nanos(base + 3),
                Event::LockRelease {
                    lock: LockId::new(0),
                },
            );
            t.push(Time::from_nanos(base + 4), Event::ThreadExit);
        }
        trace.lock_schedule = vec![
            LockGrant {
                seq: 0,
                lock: LockId::new(0),
                thread: ThreadId::new(0),
                event_index: 0,
                at: Time::from_nanos(1),
            },
            LockGrant {
                seq: 1,
                lock: LockId::new(0),
                thread: ThreadId::new(1),
                event_index: 0,
                at: Time::from_nanos(6),
            },
        ];
        trace.total_time = Time::from_nanos(9);
        trace
    }

    fn collect_chunks(source: &mut impl EventSource) -> Vec<TraceChunk> {
        let mut chunks = Vec::new();
        while let Some(c) = source.next_chunk().unwrap() {
            chunks.push(c);
        }
        chunks
    }

    #[test]
    fn trace_chunks_cover_every_event_once_in_order() {
        let trace = two_thread_trace();
        for chunk_events in 1..=10 {
            let mut source = TraceChunks::new(&trace, chunk_events);
            let chunks = collect_chunks(&mut source);
            // Contract 1: windows strictly ascend (ignoring the grant-flush
            // tail chunk, which carries no events).
            let mut prev: Option<Time> = None;
            let mut total_events = 0;
            let mut total_grants = 0;
            for chunk in &chunks {
                if let Some(p) = prev {
                    assert!(chunk.window_end > p, "chunk_events={chunk_events}");
                }
                for span in &chunk.spans {
                    for te in &span.events {
                        assert!(te.at <= chunk.window_end);
                        if let Some(p) = prev {
                            assert!(te.at > p, "tie straddled a boundary");
                        }
                    }
                    total_events += span.events.len();
                }
                total_grants += chunk.grants.len();
                prev = Some(chunk.window_end);
            }
            assert_eq!(total_events, trace.num_events());
            assert_eq!(total_grants, trace.lock_schedule.len());
        }
    }

    #[test]
    fn trace_chunks_spans_are_contiguous_per_thread() {
        let trace = two_thread_trace();
        let mut source = TraceChunks::new(&trace, 3);
        let chunks = collect_chunks(&mut source);
        let mut next_index = vec![0usize; trace.num_threads()];
        for chunk in &chunks {
            let mut prev_thread: Option<ThreadId> = None;
            for span in &chunk.spans {
                if let Some(p) = prev_thread {
                    assert!(span.thread > p, "spans not in ascending thread order");
                }
                prev_thread = Some(span.thread);
                assert_eq!(span.base_index, next_index[span.thread.index()]);
                next_index[span.thread.index()] += span.events.len();
            }
        }
        assert_eq!(next_index[0], trace.threads[0].len());
        assert_eq!(next_index[1], trace.threads[1].len());
    }

    #[test]
    fn empty_trace_produces_no_chunks() {
        let trace = Trace::new(TraceMeta::default(), 2);
        let mut source = TraceChunks::new(&trace, 4);
        assert_eq!(source.next_chunk().unwrap(), None);
    }

    #[test]
    fn chunk_records_roundtrip_through_serde() {
        let trace = two_thread_trace();
        let mut source = TraceChunks::new(&trace, 2);
        let chunk = source.next_chunk().unwrap().unwrap();
        let json = serde_json::to_string(&ChunkFileRecord::Chunk(chunk.clone())).unwrap();
        let back: ChunkFileRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ChunkFileRecord::Chunk(chunk));
    }

    #[test]
    fn stream_error_display_is_informative() {
        let e = StreamError::Parse {
            line: 7,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e: StreamError = TraceError::MisnumberedThread { index: 2 }.into();
        assert!(matches!(e, StreamError::Trace(_)));
    }
}
