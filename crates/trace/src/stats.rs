//! Summary statistics over a recorded trace.

use serde::{Deserialize, Serialize};

use crate::event::Event;
use crate::section::extract_critical_sections;
use crate::time::Time;
use crate::trace::Trace;

/// Aggregate statistics of a trace, used by reports and by the Table 1
/// reproduction ("# Locks" is `lock_acquisitions`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of threads.
    pub threads: usize,
    /// Total events recorded.
    pub events: usize,
    /// Dynamic lock acquisitions.
    pub lock_acquisitions: usize,
    /// Dynamic critical sections (equals acquisitions for balanced traces).
    pub critical_sections: usize,
    /// Shared reads recorded.
    pub reads: usize,
    /// Shared writes recorded.
    pub writes: usize,
    /// Condition-variable waits.
    pub cond_waits: usize,
    /// Barrier waits.
    pub barrier_waits: usize,
    /// Distinct static code sites that produced critical sections.
    pub static_sites: usize,
    /// Makespan of the original execution.
    pub total_time: Time,
    /// Sum of per-thread intrinsic compute cost.
    pub total_compute: Time,
}

impl TraceStats {
    /// Computes statistics for a trace.
    pub fn of(trace: &Trace) -> Self {
        let mut stats = TraceStats {
            threads: trace.num_threads(),
            total_time: trace.total_time,
            ..TraceStats::default()
        };
        let mut sites = std::collections::BTreeSet::new();
        for (_, _, te) in trace.iter_events() {
            stats.events += 1;
            stats.total_compute += te.event.intrinsic_cost();
            match &te.event {
                Event::LockAcquire { site, .. } => {
                    stats.lock_acquisitions += 1;
                    sites.insert(*site);
                }
                Event::Read { .. } => stats.reads += 1,
                Event::Write { .. } => stats.writes += 1,
                Event::CondWait { .. } => stats.cond_waits += 1,
                Event::BarrierWait { .. } => stats.barrier_waits += 1,
                _ => {}
            }
        }
        stats.static_sites = sites.len();
        stats.critical_sections = extract_critical_sections(trace).len();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::WriteOp;
    use crate::ids::{CodeSiteId, LockId, ObjectId};
    use crate::trace::TraceMeta;

    #[test]
    fn stats_count_event_categories() {
        let mut trace = Trace::new(TraceMeta::default(), 2);
        {
            let t0 = &mut trace.threads[0];
            t0.push(
                Time::from_nanos(3),
                Event::Compute {
                    cost: Time::from_nanos(3),
                },
            );
            t0.push(
                Time::from_nanos(4),
                Event::LockAcquire {
                    lock: LockId::new(0),
                    site: CodeSiteId::new(0),
                },
            );
            t0.push(
                Time::from_nanos(5),
                Event::Read {
                    obj: ObjectId::new(0),
                    value: 0,
                },
            );
            t0.push(
                Time::from_nanos(6),
                Event::LockRelease {
                    lock: LockId::new(0),
                },
            );
        }
        {
            let t1 = &mut trace.threads[1];
            t1.push(
                Time::from_nanos(1),
                Event::LockAcquire {
                    lock: LockId::new(0),
                    site: CodeSiteId::new(1),
                },
            );
            t1.push(
                Time::from_nanos(2),
                Event::Write {
                    obj: ObjectId::new(0),
                    op: WriteOp::Set(1),
                    value: 1,
                },
            );
            t1.push(
                Time::from_nanos(3),
                Event::LockRelease {
                    lock: LockId::new(0),
                },
            );
        }
        trace.total_time = Time::from_nanos(6);

        let stats = TraceStats::of(&trace);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.events, 7);
        assert_eq!(stats.lock_acquisitions, 2);
        assert_eq!(stats.critical_sections, 2);
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.static_sites, 2);
        assert_eq!(stats.total_compute, Time::from_nanos(3));
        assert_eq!(stats.total_time, Time::from_nanos(6));
    }

    #[test]
    fn stats_of_empty_trace_are_zero() {
        let stats = TraceStats::of(&Trace::new(TraceMeta::default(), 0));
        assert_eq!(stats, TraceStats::default());
    }
}
