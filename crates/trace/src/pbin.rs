//! PBIN — the versioned binary chunk-file format.
//!
//! A PBIN file carries exactly the same record stream as the JSON-lines
//! format (`Header`, `Chunk`*, `Trailer`) in a compact, length-prefixed
//! binary framing:
//!
//! ```text
//! file    := prelude frame*
//! prelude := magic "PBIN" (4) | version u16 LE | reserved u16 LE
//! frame   := marker (4) | kind u8 | len u32 LE | payload (len) | crc32 u32 LE
//! ```
//!
//! * `kind` is 0 (header), 1 (chunk) or 2 (trailer);
//! * `len` is the payload length, sanity-capped so a corrupt length can
//!   never drive an unbounded allocation;
//! * `crc32` (IEEE, hand-rolled table) covers `kind | len | payload`, so a
//!   single flipped bit anywhere in a frame is always detected;
//! * the `marker` exists purely for resynchronization: after a corrupt
//!   frame, the scanner scans forward for the next marker — the binary
//!   analogue of skipping to the next newline in a JSON-lines file.
//!
//! Payloads are hand-rolled varint/zigzag records (LEB128-style, no serde
//! in the loop): strings are length-prefixed UTF-8, timestamps are absolute
//! varint nanoseconds (deliberately not deltas — injected fault mutations
//! may regress timestamps, and the codec must round-trip those too), and
//! events are a one-byte tag plus their fields.
//!
//! [`PbinScanner`] is the reading half: it decodes frames out of one reused
//! buffer (no per-record `String` / `serde_json::Value` allocations) and
//! reports records with the same `(ordinal, offset, bytes)` coordinates the
//! JSON scanner reports `(line, offset, bytes)`, so located errors,
//! [`StreamGap`](crate::StreamGap) accounting and lint diagnostics are
//! format-agnostic. The file prelude is accounted to the first record: a
//! clean file's record extents tile the whole file.

use std::io::{BufReader, Read};
use std::path::Path;

use crate::event::{Event, LockGrant, TimedEvent, WriteOp};
use crate::ids::{BarrierId, CodeSiteId, CondId, LockId, ObjectId, ThreadId};
use crate::site::{CodeSite, SiteTable};
use crate::stream::{
    ChunkFileHeader, ChunkFileRecord, ChunkFileTrailer, RawRecord, StreamError, ThreadSpan,
    TraceChunk,
};
use crate::time::Time;
use crate::trace::TraceMeta;

/// File magic: the first four bytes of every PBIN chunk file.
pub const MAGIC: [u8; 4] = *b"PBIN";

/// Current format version, written into (and required from) the prelude.
pub const FORMAT_VERSION: u16 = 1;

/// Byte length of the file prelude (magic + version + reserved).
pub const PRELUDE_LEN: usize = 8;

/// Frame marker preceding every record; scanning for it resynchronizes the
/// reader after a corrupt frame, like a newline does for JSON-lines.
const FRAME_MARKER: [u8; 4] = [0xF7, 0x50, 0x42, 0xF7];

/// marker + kind + len.
const FRAME_HEAD_LEN: usize = 9;

const KIND_HEADER: u8 = 0;
const KIND_CHUNK: u8 = 1;
const KIND_TRAILER: u8 = 2;

/// Sanity cap on one frame's payload: a corrupt length field must never
/// drive an unbounded read or allocation.
const MAX_PAYLOAD: usize = 1 << 28;

/// Returns the 8-byte file prelude for the current format version.
pub fn file_prelude() -> [u8; PRELUDE_LEN] {
    let mut p = [0u8; PRELUDE_LEN];
    p[0..4].copy_from_slice(&MAGIC);
    p[4..6].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    p
}

/// On-disk chunk-file format: human-readable JSON-lines or the compact PBIN
/// binary framing. Readers autodetect by magic bytes ([`detect`](Self::detect));
/// writers pick by extension ([`for_path`](Self::for_path)) unless overridden.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ChunkFormat {
    /// One JSON [`ChunkFileRecord`] per line.
    #[default]
    Json,
    /// Length-prefixed, CRC-framed binary records (this module).
    Pbin,
}

impl ChunkFormat {
    /// Canonical short name (also the preferred file extension).
    pub fn name(self) -> &'static str {
        match self {
            ChunkFormat::Json => "jsonl",
            ChunkFormat::Pbin => "pbin",
        }
    }

    /// Parses a user-supplied format name (`json`, `jsonl`, `pbin`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "json" | "jsonl" => Some(ChunkFormat::Json),
            "pbin" => Some(ChunkFormat::Pbin),
            _ => None,
        }
    }

    /// Maps a file extension to a format, if recognized.
    pub fn from_extension(ext: &str) -> Option<Self> {
        Self::parse(ext)
    }

    /// Picks the format for a path by extension; unknown or missing
    /// extensions default to JSON-lines (the historical format).
    pub fn for_path(path: impl AsRef<Path>) -> Self {
        path.as_ref()
            .extension()
            .and_then(|e| e.to_str())
            .and_then(Self::from_extension)
            .unwrap_or(ChunkFormat::Json)
    }

    /// Detects the format of an existing file by its magic bytes: a file
    /// beginning with `PBIN` is binary, anything else (including files
    /// shorter than the magic) is JSON-lines.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened or its first bytes cannot be read.
    pub fn detect(path: impl AsRef<Path>) -> Result<Self, StreamError> {
        let mut file = std::fs::File::open(&path).map_err(StreamError::from)?;
        let mut magic = [0u8; 4];
        let mut n = 0;
        while n < magic.len() {
            match file.read(&mut magic[n..]) {
                Ok(0) => break,
                Ok(k) => n += k,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(StreamError::from(e)),
            }
        }
        if n == magic.len() && magic == MAGIC {
            Ok(ChunkFormat::Pbin)
        } else {
            Ok(ChunkFormat::Json)
        }
    }

    /// Bytes a writer must emit before the first record (empty for JSON).
    pub fn prelude(self) -> Vec<u8> {
        match self {
            ChunkFormat::Json => Vec::new(),
            ChunkFormat::Pbin => file_prelude().to_vec(),
        }
    }

    /// Appends one encoded record (newline-terminated JSON line, or a PBIN
    /// frame) to `out`.
    ///
    /// # Errors
    ///
    /// Fails only if a JSON record does not serialize (which no well-formed
    /// [`ChunkFileRecord`] can trigger); the binary encoder is infallible.
    pub fn encode_record(
        self,
        record: &ChunkFileRecord,
        out: &mut Vec<u8>,
    ) -> Result<(), StreamError> {
        match self {
            ChunkFormat::Json => {
                let json = serde_json::to_string(record).map_err(|e| {
                    StreamError::Format(format!("record does not serialize: {}", e.0))
                })?;
                out.extend_from_slice(json.as_bytes());
                out.push(b'\n');
            }
            ChunkFormat::Pbin => encode_frame(record, out),
        }
        Ok(())
    }
}

impl std::fmt::Display for ChunkFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) — hand-rolled, no crate.
// ---------------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Varint / zigzag primitives.
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_varint(out, zigzag(v));
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Borrowing decode cursor over one frame payload.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, String> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| format!("payload ends early at byte {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err("varint overflows u64".into());
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err("varint longer than 10 bytes".into());
            }
        }
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(unzigzag(self.varint()?))
    }

    fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.varint()?).map_err(|_| "count does not fit in usize".to_string())
    }

    fn u32(&mut self) -> Result<u32, String> {
        u32::try_from(self.varint()?).map_err(|_| "id does not fit in u32".to_string())
    }

    fn time(&mut self) -> Result<Time, String> {
        Ok(Time::from_nanos(self.varint()?))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.usize()?;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("string of {len} bytes overruns payload"))?;
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|e| format!("string is not UTF-8: {e}"))?
            .to_string();
        self.pos = end;
        Ok(s)
    }

    /// Reads an element count about to drive a `Vec` reservation; it must be
    /// backed by at least one payload byte per element, or a corrupt count
    /// could allocate unboundedly.
    fn counted(&mut self, what: &str) -> Result<usize, String> {
        let count = self.usize()?;
        if count > self.buf.len().saturating_sub(self.pos) {
            return Err(format!(
                "{what} count {count} exceeds remaining payload bytes"
            ));
        }
        Ok(count)
    }

    fn finish(&self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after record payload",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Record payload codecs.
// ---------------------------------------------------------------------------

const TAG_COMPUTE: u8 = 0;
const TAG_LOCK_ACQUIRE: u8 = 1;
const TAG_LOCK_RELEASE: u8 = 2;
const TAG_READ: u8 = 3;
const TAG_WRITE: u8 = 4;
const TAG_COND_WAIT: u8 = 5;
const TAG_COND_SIGNAL: u8 = 6;
const TAG_BARRIER_WAIT: u8 = 7;
const TAG_SKIP_REGION: u8 = 8;
const TAG_CHECKPOINT: u8 = 9;
const TAG_THREAD_EXIT: u8 = 10;

fn encode_event(out: &mut Vec<u8>, te: &TimedEvent) {
    put_varint(out, te.at.as_nanos());
    match &te.event {
        Event::Compute { cost } => {
            out.push(TAG_COMPUTE);
            put_varint(out, cost.as_nanos());
        }
        Event::LockAcquire { lock, site } => {
            out.push(TAG_LOCK_ACQUIRE);
            put_varint(out, u64::from(lock.raw()));
            put_varint(out, u64::from(site.raw()));
        }
        Event::LockRelease { lock } => {
            out.push(TAG_LOCK_RELEASE);
            put_varint(out, u64::from(lock.raw()));
        }
        Event::Read { obj, value } => {
            out.push(TAG_READ);
            put_varint(out, obj.raw());
            put_i64(out, *value);
        }
        Event::Write { obj, op, value } => {
            out.push(TAG_WRITE);
            put_varint(out, obj.raw());
            match op {
                WriteOp::Set(v) => {
                    out.push(0);
                    put_i64(out, *v);
                }
                WriteOp::Add(d) => {
                    out.push(1);
                    put_i64(out, *d);
                }
            }
            put_i64(out, *value);
        }
        Event::CondWait { cond, lock } => {
            out.push(TAG_COND_WAIT);
            put_varint(out, cond.index() as u64);
            put_varint(out, u64::from(lock.raw()));
        }
        Event::CondSignal { cond, broadcast } => {
            out.push(TAG_COND_SIGNAL);
            put_varint(out, cond.index() as u64);
            out.push(u8::from(*broadcast));
        }
        Event::BarrierWait { barrier } => {
            out.push(TAG_BARRIER_WAIT);
            put_varint(out, barrier.index() as u64);
        }
        Event::SkipRegion { site, saved_cost } => {
            out.push(TAG_SKIP_REGION);
            put_varint(out, u64::from(site.raw()));
            put_varint(out, saved_cost.as_nanos());
        }
        Event::Checkpoint { id } => {
            out.push(TAG_CHECKPOINT);
            put_varint(out, u64::from(*id));
        }
        Event::ThreadExit => out.push(TAG_THREAD_EXIT),
    }
}

fn decode_event(cur: &mut Cur<'_>) -> Result<TimedEvent, String> {
    let at = cur.time()?;
    let event = match cur.u8()? {
        TAG_COMPUTE => Event::Compute { cost: cur.time()? },
        TAG_LOCK_ACQUIRE => Event::LockAcquire {
            lock: LockId::new(cur.u32()?),
            site: CodeSiteId::new(cur.u32()?),
        },
        TAG_LOCK_RELEASE => Event::LockRelease {
            lock: LockId::new(cur.u32()?),
        },
        TAG_READ => Event::Read {
            obj: ObjectId::new(cur.varint()?),
            value: cur.i64()?,
        },
        TAG_WRITE => {
            let obj = ObjectId::new(cur.varint()?);
            let op = match cur.u8()? {
                0 => WriteOp::Set(cur.i64()?),
                1 => WriteOp::Add(cur.i64()?),
                t => return Err(format!("unknown write-op tag {t}")),
            };
            Event::Write {
                obj,
                op,
                value: cur.i64()?,
            }
        }
        TAG_COND_WAIT => Event::CondWait {
            cond: CondId::new(cur.u32()?),
            lock: LockId::new(cur.u32()?),
        },
        TAG_COND_SIGNAL => Event::CondSignal {
            cond: CondId::new(cur.u32()?),
            broadcast: cur.u8()? != 0,
        },
        TAG_BARRIER_WAIT => Event::BarrierWait {
            barrier: BarrierId::new(cur.u32()?),
        },
        TAG_SKIP_REGION => Event::SkipRegion {
            site: CodeSiteId::new(cur.u32()?),
            saved_cost: cur.time()?,
        },
        TAG_CHECKPOINT => Event::Checkpoint { id: cur.u32()? },
        TAG_THREAD_EXIT => Event::ThreadExit,
        t => return Err(format!("unknown event tag {t}")),
    };
    Ok(TimedEvent { at, event })
}

fn encode_header(out: &mut Vec<u8>, h: &ChunkFileHeader) {
    put_str(out, &h.meta.program);
    put_varint(out, h.meta.num_threads as u64);
    put_varint(out, h.meta.num_locks as u64);
    put_varint(out, h.meta.num_objects as u64);
    put_str(out, &h.meta.input);
    put_varint(out, h.num_threads as u64);
    put_varint(out, h.sites.len() as u64);
    for (_, site) in h.sites.iter() {
        put_str(out, &site.file);
        put_str(out, &site.function);
        put_varint(out, u64::from(site.line));
    }
}

fn decode_header(payload: &[u8]) -> Result<ChunkFileHeader, String> {
    let mut cur = Cur::new(payload);
    let meta = TraceMeta {
        program: cur.str()?,
        num_threads: cur.usize()?,
        num_locks: cur.usize()?,
        num_objects: cur.usize()?,
        input: cur.str()?,
    };
    let num_threads = cur.usize()?;
    let site_count = cur.counted("site")?;
    let mut sites = SiteTable::new();
    for _ in 0..site_count {
        let file = cur.str()?;
        let function = cur.str()?;
        let line = cur.u32()?;
        sites.intern(CodeSite::new(file, function, line));
    }
    cur.finish()?;
    Ok(ChunkFileHeader {
        meta,
        num_threads,
        sites,
    })
}

fn encode_chunk(out: &mut Vec<u8>, c: &TraceChunk) {
    put_varint(out, c.seq);
    put_varint(out, c.window_end.as_nanos());
    put_varint(out, c.spans.len() as u64);
    for span in &c.spans {
        put_varint(out, u64::from(span.thread.raw()));
        put_varint(out, span.base_index as u64);
        put_varint(out, span.events.len() as u64);
        for te in &span.events {
            encode_event(out, te);
        }
    }
    put_varint(out, c.grants.len() as u64);
    for g in &c.grants {
        put_varint(out, g.seq);
        put_varint(out, u64::from(g.lock.raw()));
        put_varint(out, u64::from(g.thread.raw()));
        put_varint(out, g.event_index as u64);
        put_varint(out, g.at.as_nanos());
    }
}

fn decode_chunk(payload: &[u8]) -> Result<TraceChunk, String> {
    let mut cur = Cur::new(payload);
    let seq = cur.varint()?;
    let window_end = cur.time()?;
    let span_count = cur.counted("span")?;
    let mut spans = Vec::with_capacity(span_count);
    for _ in 0..span_count {
        let thread = ThreadId::new(cur.u32()?);
        let base_index = cur.usize()?;
        let event_count = cur.counted("event")?;
        let mut events = Vec::with_capacity(event_count);
        for _ in 0..event_count {
            events.push(decode_event(&mut cur)?);
        }
        spans.push(ThreadSpan {
            thread,
            base_index,
            events,
        });
    }
    let grant_count = cur.counted("grant")?;
    let mut grants = Vec::with_capacity(grant_count);
    for _ in 0..grant_count {
        grants.push(LockGrant {
            seq: cur.varint()?,
            lock: LockId::new(cur.u32()?),
            thread: ThreadId::new(cur.u32()?),
            event_index: cur.usize()?,
            at: cur.time()?,
        });
    }
    cur.finish()?;
    Ok(TraceChunk {
        seq,
        window_end,
        spans,
        grants,
    })
}

fn encode_trailer(out: &mut Vec<u8>, t: &ChunkFileTrailer) {
    put_varint(out, t.total_time.as_nanos());
    put_varint(out, t.finish_times.len() as u64);
    for ft in &t.finish_times {
        put_varint(out, ft.as_nanos());
    }
    put_varint(out, t.chunks);
    put_varint(out, t.events);
}

fn decode_trailer(payload: &[u8]) -> Result<ChunkFileTrailer, String> {
    let mut cur = Cur::new(payload);
    let total_time = cur.time()?;
    let count = cur.counted("finish-time")?;
    let mut finish_times = Vec::with_capacity(count);
    for _ in 0..count {
        finish_times.push(cur.time()?);
    }
    let chunks = cur.varint()?;
    let events = cur.varint()?;
    cur.finish()?;
    Ok(ChunkFileTrailer {
        total_time,
        finish_times,
        chunks,
        events,
    })
}

/// Appends one framed record (marker, kind, length, payload, CRC) to `out`.
pub fn encode_frame(record: &ChunkFileRecord, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&FRAME_MARKER);
    let kind = match record {
        ChunkFileRecord::Header(_) => KIND_HEADER,
        ChunkFileRecord::Chunk(_) => KIND_CHUNK,
        ChunkFileRecord::Trailer(_) => KIND_TRAILER,
    };
    out.push(kind);
    out.extend_from_slice(&[0u8; 4]); // length, backfilled below
    let body = out.len();
    match record {
        ChunkFileRecord::Header(h) => encode_header(out, h),
        ChunkFileRecord::Chunk(c) => encode_chunk(out, c),
        ChunkFileRecord::Trailer(t) => encode_trailer(out, t),
    }
    let len = (out.len() - body) as u32;
    out[start + 5..start + 9].copy_from_slice(&len.to_le_bytes());
    let crc = crc32(&out[start + 4..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<ChunkFileRecord, String> {
    match kind {
        KIND_HEADER => decode_header(payload).map(ChunkFileRecord::Header),
        KIND_CHUNK => decode_chunk(payload).map(ChunkFileRecord::Chunk),
        KIND_TRAILER => decode_trailer(payload).map(ChunkFileRecord::Trailer),
        k => Err(format!("unknown record kind {k}")),
    }
}

/// CRC-checks and decodes one framed payload — the decode half of record
/// scanning, shared by the sequential scanner and the pipelined decode
/// workers. The CRC input is rebuilt from `kind` and the payload length,
/// which is byte-identical to the on-disk `kind | len | payload` region the
/// writer checksummed, so the verdict (and the error message) matches the
/// single-threaded scanner exactly.
pub(crate) fn decode_checked_payload(
    kind: u8,
    stored: u32,
    payload: &[u8],
    ordinal: usize,
) -> Result<ChunkFileRecord, StreamError> {
    let len_le = (payload.len() as u32).to_le_bytes();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in std::iter::once(&kind)
        .chain(len_le.iter())
        .chain(payload.iter())
    {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    let computed = !crc;
    if stored != computed {
        return Err(StreamError::Parse {
            line: ordinal,
            message: format!("frame CRC mismatch: stored {stored:08x}, computed {computed:08x}"),
        });
    }
    decode_payload(kind, payload).map_err(|message| StreamError::Parse {
        line: ordinal,
        message,
    })
}

// ---------------------------------------------------------------------------
// Scanner.
// ---------------------------------------------------------------------------

/// Buffered byte reader with pushback, tracking the absolute file offset of
/// the next unread byte.
#[derive(Debug)]
struct ByteReader {
    inner: BufReader<std::fs::File>,
    pushback: Vec<u8>,
    pushback_pos: usize,
    pos: u64,
}

impl ByteReader {
    /// Reads until `buf` is full or EOF; returns the bytes read.
    fn read_up_to(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut n = 0;
        while n < buf.len() && self.pushback_pos < self.pushback.len() {
            buf[n] = self.pushback[self.pushback_pos];
            self.pushback_pos += 1;
            n += 1;
        }
        if self.pushback_pos == self.pushback.len() {
            self.pushback.clear();
            self.pushback_pos = 0;
        }
        while n < buf.len() {
            match self.inner.read(&mut buf[n..]) {
                Ok(0) => break,
                Ok(k) => n += k,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.pos += n as u64;
        Ok(n)
    }

    /// Returns already-read bytes to the front of the stream.
    fn push_back(&mut self, bytes: &[u8]) {
        let mut v = bytes.to_vec();
        v.extend_from_slice(&self.pushback[self.pushback_pos..]);
        self.pushback = v;
        self.pushback_pos = 0;
        self.pos -= bytes.len() as u64;
    }
}

/// One raw frame surfaced by [`PbinScanner::next_frame`]: the framing-stage
/// view of a record — exact file coordinates plus either an undecoded
/// payload (CRC not yet checked) or the framing-level failure. This is the
/// unit of work the pipelined reader hands to its decode workers.
#[derive(Debug)]
pub(crate) struct PbinFrame {
    /// 1-based record ordinal.
    pub ordinal: usize,
    /// Byte offset of the record's start (the file prelude is accounted to
    /// the first record).
    pub offset: u64,
    /// Total byte extent of the record.
    pub bytes: u64,
    /// What the framing walk found.
    pub body: PbinFrameBody,
}

/// Outcome of walking one frame without decoding it.
#[derive(Debug)]
pub(crate) enum PbinFrameBody {
    /// A structurally complete frame: the caller's buffer holds the payload
    /// bytes; CRC verification and payload decoding are still pending
    /// ([`decode_checked_payload`]).
    Payload {
        /// Record kind byte from the frame header.
        kind: u8,
        /// CRC stored in the frame, to be checked against the payload.
        stored_crc: u32,
    },
    /// A framing-level failure (bad prelude, truncation, I/O error, or a
    /// resynchronization skip), already shaped as the record error the
    /// sequential scanner would report.
    Failed(StreamError),
}

fn failed_frame(ordinal: usize, offset: u64, bytes: u64, error: StreamError) -> PbinFrame {
    PbinFrame {
        ordinal,
        offset,
        bytes,
        body: PbinFrameBody::Failed(error),
    }
}

fn parse_failed(ordinal: usize, offset: u64, bytes: u64, message: String) -> PbinFrame {
    failed_frame(
        ordinal,
        offset,
        bytes,
        StreamError::Parse {
            line: ordinal,
            message,
        },
    )
}

/// Frame-by-frame scanner of a PBIN chunk file: the binary counterpart of
/// the JSON-lines scanner. Decode failures are data, not stream terminators
/// — the scanner resynchronizes on the next frame marker and keeps going.
/// Only I/O errors end the scan (the stream position is unknowable past a
/// failed read), mirroring the JSON behaviour.
#[derive(Debug)]
pub struct PbinScanner {
    input: ByteReader,
    ordinal: usize,
    prelude_pending: bool,
    scratch: Vec<u8>,
    done: bool,
}

impl PbinScanner {
    /// Opens a PBIN file for scanning.
    ///
    /// # Errors
    ///
    /// Fails only if the file cannot be opened; everything else — a bad
    /// prelude included — is reported through [`next_record`](Self::next_record).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StreamError> {
        let file = std::fs::File::open(&path).map_err(StreamError::from)?;
        Ok(PbinScanner {
            input: ByteReader {
                inner: BufReader::new(file),
                pushback: Vec::new(),
                pushback_pos: 0,
                pos: 0,
            },
            ordinal: 0,
            prelude_pending: true,
            scratch: Vec::new(),
            done: false,
        })
    }

    /// Whether the last frame ended the scan (I/O error, truncation, bad
    /// prelude, or EOF during resynchronization) — the framing-stage view of
    /// the sequential scanner's stop condition.
    pub(crate) fn is_done(&self) -> bool {
        self.done
    }

    /// Consumes bytes until the next frame marker (pushed back for the next
    /// call) or EOF, and reports the skipped region as one parse-error
    /// frame.
    fn resync(&mut self, ordinal: usize, start: u64, reason: String) -> PbinFrame {
        let mut window = [0u8; 4];
        let mut filled = 0usize;
        loop {
            let mut b = [0u8; 1];
            match self.input.read_up_to(&mut b) {
                Err(e) => {
                    self.done = true;
                    let bytes = self.input.pos - start;
                    return failed_frame(ordinal, start, bytes, StreamError::Io(e.to_string()));
                }
                Ok(0) => {
                    self.done = true;
                    break;
                }
                Ok(_) => {
                    window.rotate_left(1);
                    window[3] = b[0];
                    filled += 1;
                    if filled >= 4 && window == FRAME_MARKER {
                        self.input.push_back(&FRAME_MARKER);
                        break;
                    }
                }
            }
        }
        let bytes = self.input.pos - start;
        parse_failed(ordinal, start, bytes, reason)
    }

    /// Walks to the next frame boundary without CRC-checking or decoding the
    /// payload — the framing stage of the pipelined reader. On a
    /// [`PbinFrameBody::Payload`] outcome the payload bytes are left in
    /// `payload` (resized to exactly the payload length); resynchronization,
    /// truncation and I/O handling are identical to the sequential scanner,
    /// so frame coordinates and framing errors cannot diverge between the
    /// two paths. Returns `None` at a clean end of file.
    pub(crate) fn next_frame(&mut self, payload: &mut Vec<u8>) -> Option<PbinFrame> {
        if self.done {
            return None;
        }
        // The prelude is validated lazily and accounted to the first record,
        // so a clean file's record extents tile the whole file.
        let mut prelude_bytes = 0u64;
        if self.prelude_pending {
            self.prelude_pending = false;
            let mut prelude = [0u8; PRELUDE_LEN];
            match self.input.read_up_to(&mut prelude) {
                Err(e) => {
                    self.done = true;
                    return Some(failed_frame(1, 0, 0, StreamError::Io(e.to_string())));
                }
                Ok(n) if n < PRELUDE_LEN => {
                    self.done = true;
                    return Some(parse_failed(
                        1,
                        0,
                        n as u64,
                        format!("truncated PBIN prelude: {n} of {PRELUDE_LEN} bytes"),
                    ));
                }
                Ok(_) => {}
            }
            if prelude[0..4] != MAGIC {
                self.done = true;
                return Some(failed_frame(
                    1,
                    0,
                    PRELUDE_LEN as u64,
                    StreamError::Format("not a PBIN chunk file: bad magic".into()),
                ));
            }
            let version = u16::from_le_bytes([prelude[4], prelude[5]]);
            if version != FORMAT_VERSION {
                self.done = true;
                return Some(failed_frame(
                    1,
                    0,
                    PRELUDE_LEN as u64,
                    StreamError::Format(format!(
                        "unsupported PBIN version {version} (supported: {FORMAT_VERSION})"
                    )),
                ));
            }
            prelude_bytes = PRELUDE_LEN as u64;
        }
        let frame_start = self.input.pos;
        let start = frame_start - prelude_bytes;
        let ordinal = self.ordinal + 1;
        let mut head = [0u8; FRAME_HEAD_LEN];
        let n = match self.input.read_up_to(&mut head) {
            Err(e) => {
                self.done = true;
                return Some(failed_frame(
                    ordinal,
                    start,
                    prelude_bytes,
                    StreamError::Io(e.to_string()),
                ));
            }
            Ok(n) => n,
        };
        if n == 0 && prelude_bytes == 0 {
            self.done = true;
            return None; // clean EOF at a frame boundary
        }
        self.ordinal = ordinal;
        if n < FRAME_HEAD_LEN {
            self.done = true;
            return Some(parse_failed(
                ordinal,
                start,
                prelude_bytes + n as u64,
                format!("truncated frame header: {n} of {FRAME_HEAD_LEN} bytes"),
            ));
        }
        let len = u32::from_le_bytes([head[5], head[6], head[7], head[8]]) as usize;
        let kind = head[4];
        if head[0..4] != FRAME_MARKER || kind > KIND_TRAILER || len > MAX_PAYLOAD {
            // The frame header cannot be trusted (the length may be the
            // corrupt field); rescan from the next byte for the marker.
            self.input.push_back(&head[1..]);
            let reason = if head[0..4] != FRAME_MARKER {
                "bad frame marker".to_string()
            } else if kind > KIND_TRAILER {
                format!("bad record kind {kind} in frame header")
            } else {
                format!("implausible frame length {len}")
            };
            return Some(self.resync(ordinal, start, reason));
        }
        payload.resize(len + 4, 0);
        let got = match self.input.read_up_to(payload) {
            Err(e) => {
                self.done = true;
                return Some(failed_frame(
                    ordinal,
                    start,
                    prelude_bytes + FRAME_HEAD_LEN as u64,
                    StreamError::Io(e.to_string()),
                ));
            }
            Ok(g) => g,
        };
        if got < len + 4 {
            self.done = true;
            return Some(parse_failed(
                ordinal,
                start,
                prelude_bytes + (FRAME_HEAD_LEN + got) as u64,
                format!("truncated frame: {got} of {} payload bytes", len + 4),
            ));
        }
        let total = prelude_bytes + (FRAME_HEAD_LEN + len + 4) as u64;
        let stored_crc = u32::from_le_bytes([
            payload[len],
            payload[len + 1],
            payload[len + 2],
            payload[len + 3],
        ]);
        payload.truncate(len);
        Some(PbinFrame {
            ordinal,
            offset: start,
            bytes: total,
            body: PbinFrameBody::Payload { kind, stored_crc },
        })
    }

    /// Pulls the next record, or `None` at a clean end of file: the framing
    /// walk ([`next_frame`](Self::next_frame)) plus the CRC check and
    /// payload decode, out of one reused buffer.
    pub fn next_record(&mut self) -> Option<RawRecord> {
        let mut payload = std::mem::take(&mut self.scratch);
        let frame = self.next_frame(&mut payload);
        self.scratch = payload;
        let frame = frame?;
        let record = match frame.body {
            PbinFrameBody::Failed(e) => Err(e),
            PbinFrameBody::Payload { kind, stored_crc } => {
                decode_checked_payload(kind, stored_crc, &self.scratch, frame.ordinal)
            }
        };
        Some(RawRecord {
            line: frame.ordinal,
            offset: frame.offset,
            bytes: frame.bytes,
            record,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varint_roundtrips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut cur = Cur::new(&buf);
            assert_eq!(cur.varint().unwrap(), v);
            cur.finish().unwrap();
        }
    }

    #[test]
    fn zigzag_roundtrips_signed_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_i64(&mut buf, v);
            let mut cur = Cur::new(&buf);
            assert_eq!(cur.i64().unwrap(), v);
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let buf = [0x80u8; 11];
        let mut cur = Cur::new(&buf);
        assert!(cur.varint().is_err());
    }

    #[test]
    fn every_event_variant_roundtrips() {
        let events = [
            Event::Compute {
                cost: Time::from_nanos(400),
            },
            Event::LockAcquire {
                lock: LockId::new(3),
                site: CodeSiteId::new(7),
            },
            Event::LockRelease {
                lock: LockId::new(3),
            },
            Event::Read {
                obj: ObjectId::new(u64::MAX),
                value: i64::MIN,
            },
            Event::Write {
                obj: ObjectId::new(9),
                op: WriteOp::Set(-5),
                value: -5,
            },
            Event::Write {
                obj: ObjectId::new(9),
                op: WriteOp::Add(i64::MAX),
                value: 12,
            },
            Event::CondWait {
                cond: CondId::new(1),
                lock: LockId::new(0),
            },
            Event::CondSignal {
                cond: CondId::new(1),
                broadcast: true,
            },
            Event::BarrierWait {
                barrier: BarrierId::new(2),
            },
            Event::SkipRegion {
                site: CodeSiteId::new(0),
                saved_cost: Time::MAX,
            },
            Event::Checkpoint { id: u32::MAX },
            Event::ThreadExit,
        ];
        for event in events {
            let te = TimedEvent::new(Time::MAX, event);
            let mut buf = Vec::new();
            encode_event(&mut buf, &te);
            let mut cur = Cur::new(&buf);
            assert_eq!(decode_event(&mut cur).unwrap(), te);
            cur.finish().unwrap();
        }
    }

    #[test]
    fn frames_roundtrip_all_record_kinds() {
        let mut sites = SiteTable::new();
        sites.intern(CodeSite::new("fil0fil.cc", "fil_flush", 5473));
        let header = ChunkFileRecord::Header(ChunkFileHeader {
            meta: TraceMeta {
                program: "pbzip2".into(),
                num_threads: 4,
                num_locks: 2,
                num_objects: 8,
                input: "simlarge".into(),
            },
            num_threads: 4,
            sites,
        });
        let chunk = ChunkFileRecord::Chunk(TraceChunk {
            seq: 0,
            window_end: Time::from_nanos(1000),
            spans: vec![ThreadSpan {
                thread: ThreadId::new(1),
                base_index: 42,
                events: vec![TimedEvent::new(
                    Time::from_nanos(999),
                    Event::Read {
                        obj: ObjectId::new(3),
                        value: -7,
                    },
                )],
            }],
            grants: vec![LockGrant {
                seq: 5,
                lock: LockId::new(1),
                thread: ThreadId::new(1),
                event_index: 42,
                at: Time::from_nanos(998),
            }],
        });
        let trailer = ChunkFileRecord::Trailer(ChunkFileTrailer {
            total_time: Time::from_nanos(12345),
            finish_times: vec![Time::from_nanos(12), Time::MAX],
            chunks: 1,
            events: 1,
        });
        for record in [header, chunk, trailer] {
            let mut buf = Vec::new();
            encode_frame(&record, &mut buf);
            assert_eq!(&buf[0..4], &FRAME_MARKER);
            let kind = buf[4];
            let len = u32::from_le_bytes([buf[5], buf[6], buf[7], buf[8]]) as usize;
            assert_eq!(buf.len(), FRAME_HEAD_LEN + len + 4);
            let payload = &buf[FRAME_HEAD_LEN..FRAME_HEAD_LEN + len];
            assert_eq!(decode_payload(kind, payload).unwrap(), record);
            let stored = u32::from_le_bytes([
                buf[FRAME_HEAD_LEN + len],
                buf[FRAME_HEAD_LEN + len + 1],
                buf[FRAME_HEAD_LEN + len + 2],
                buf[FRAME_HEAD_LEN + len + 3],
            ]);
            assert_eq!(stored, crc32(&buf[4..FRAME_HEAD_LEN + len]));
        }
    }

    #[test]
    fn any_single_bit_flip_in_a_frame_is_detected() {
        let record = ChunkFileRecord::Trailer(ChunkFileTrailer {
            total_time: Time::from_nanos(7),
            finish_times: vec![Time::from_nanos(7)],
            chunks: 0,
            events: 0,
        });
        let mut clean = Vec::new();
        encode_frame(&record, &mut clean);
        // Flipping any payload/kind/len bit must change the CRC; flipping a
        // CRC bit must mismatch the computed one.
        for byte in 4..clean.len() {
            for bit in 0..8 {
                let mut corrupt = clean.clone();
                corrupt[byte] ^= 1 << bit;
                let len = u32::from_le_bytes([corrupt[5], corrupt[6], corrupt[7], corrupt[8]]);
                if len as usize != clean.len() - FRAME_HEAD_LEN - 4 {
                    continue; // length field flip: caught by framing instead
                }
                let body_end = clean.len() - 4;
                let stored = u32::from_le_bytes([
                    corrupt[body_end],
                    corrupt[body_end + 1],
                    corrupt[body_end + 2],
                    corrupt[body_end + 3],
                ]);
                assert_ne!(
                    stored,
                    crc32(&corrupt[4..body_end]),
                    "flip of bit {bit} in byte {byte} went undetected"
                );
            }
        }
    }
}
